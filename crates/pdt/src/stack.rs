//! Stacked PDTs: differences on differences.
//!
//! Vectorwise keeps three PDT layers per table (Section 2.1): a large
//! *read-optimized* PDT shared by all transactions, a smaller *shared* PDT,
//! and a tiny *trans-private* PDT per snapshot. Only the top-most layer is
//! private; the lower layers are shared, which keeps the memory cost of
//! snapshot isolation low.
//!
//! The positions stored in layer `k` refer to the output (RID space) of layer
//! `k-1`, so reads *compose* the layers: translation goes through every layer
//! and the merged stream of layer `k-1` acts as the "stable" input of layer
//! `k`. [`PdtStack::propagate`] flattens the top layer into the one below it
//! (the operation performed when a transaction commits its private PDT into
//! the shared one).

use scanshare_common::{Result, Rid, Sid, TupleRange};
use scanshare_storage::datagen::Value;

use crate::merge::{MergeCursor, StableSource};
use crate::pdt::Pdt;

/// A stack of PDT layers. `layers[0]` is closest to stable storage; the last
/// layer is the top (most recent, typically transaction-private) one.
#[derive(Debug, Clone)]
pub struct PdtStack {
    column_count: usize,
    layers: Vec<Pdt>,
}

impl PdtStack {
    /// Creates a stack of `depth` empty layers (Vectorwise uses three).
    pub fn new(column_count: usize, depth: usize) -> Self {
        assert!(depth >= 1, "a stack needs at least one layer");
        Self {
            column_count,
            layers: (0..depth).map(|_| Pdt::new(column_count)).collect(),
        }
    }

    /// Number of table columns.
    pub fn column_count(&self) -> usize {
        self.column_count
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Immutable access to a layer (0 = closest to stable storage).
    pub fn layer(&self, i: usize) -> &Pdt {
        &self.layers[i]
    }

    /// Mutable access to the top (private) layer, where new updates land.
    pub fn top_mut(&mut self) -> &mut Pdt {
        self.layers.last_mut().expect("depth >= 1")
    }

    /// Immutable access to the top layer.
    pub fn top(&self) -> &Pdt {
        self.layers.last().expect("depth >= 1")
    }

    /// Number of rows visible after all layers are applied.
    pub fn visible_count(&self, stable_tuples: u64) -> u64 {
        self.layers
            .iter()
            .fold(stable_tuples, |acc, layer| layer.visible_count(acc))
    }

    /// Visible count after applying only the first `upto` layers.
    fn visible_below(&self, stable_tuples: u64, upto: usize) -> u64 {
        self.layers[..upto]
            .iter()
            .fold(stable_tuples, |acc, layer| layer.visible_count(acc))
    }

    /// Translates a top-level RID down to the stable SID it is anchored at,
    /// going through every layer.
    pub fn rid_to_sid(&self, rid: Rid, stable_tuples: u64) -> Sid {
        let mut pos = rid.raw();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let below = self.visible_below(stable_tuples, i);
            pos = layer.rid_to_sid(Rid::new(pos), below).raw();
        }
        Sid::new(pos)
    }

    /// Lowest top-level RID anchored at stable position `sid`.
    pub fn sid_to_rid_low(&self, sid: Sid) -> Rid {
        let mut pos = sid.raw();
        for layer in &self.layers {
            pos = layer.sid_to_rid_low(Sid::new(pos)).raw();
        }
        Rid::new(pos)
    }

    /// Highest top-level RID anchored at stable position `sid`.
    pub fn sid_to_rid_high(&self, sid: Sid) -> Rid {
        let mut pos = sid.raw();
        for layer in &self.layers {
            pos = layer.sid_to_rid_high(Sid::new(pos)).raw();
        }
        Rid::new(pos)
    }

    /// Inserts a row at top-level position `rid`.
    pub fn insert(&mut self, rid: Rid, row: Vec<Value>, stable_tuples: u64) -> Result<()> {
        let below = self.visible_below(stable_tuples, self.layers.len() - 1);
        self.top_mut().insert(rid, row, below)
    }

    /// Deletes the visible row at top-level position `rid`.
    pub fn delete(&mut self, rid: Rid, stable_tuples: u64) -> Result<()> {
        let below = self.visible_below(stable_tuples, self.layers.len() - 1);
        self.top_mut().delete(rid, below)
    }

    /// Modifies column `col` of the visible row at top-level position `rid`.
    pub fn modify(&mut self, rid: Rid, col: usize, value: Value, stable_tuples: u64) -> Result<()> {
        let below = self.visible_below(stable_tuples, self.layers.len() - 1);
        self.top_mut().modify(rid, col, value, below)
    }

    /// Merges the whole stack over `source` for a top-level RID range,
    /// projecting `columns`.
    pub fn merge_range<S: StableSource + Clone>(
        &self,
        source: S,
        columns: &[usize],
        rid_range: TupleRange,
    ) -> Vec<Vec<Value>> {
        self.merge_layer(self.layers.len(), source, columns, rid_range)
    }

    /// Merges layers `0..upto` for a range in layer `upto`'s input space.
    fn merge_layer<S: StableSource + Clone>(
        &self,
        upto: usize,
        source: S,
        columns: &[usize],
        range: TupleRange,
    ) -> Vec<Vec<Value>> {
        if upto == 0 {
            let mut source = source;
            let stable = source.stable_tuples();
            let clamped = range.intersect(&TupleRange::new(0, stable));
            return (clamped.start..clamped.end)
                .map(|sid| columns.iter().map(|&c| source.value(c, sid)).collect())
                .collect();
        }
        let layer = &self.layers[upto - 1];
        // The layer needs *all* columns of its input rows because inserted
        // rows store every column; we materialize the input lazily through a
        // recursive source.
        let lower = StackSource {
            stack: self,
            upto: upto - 1,
            source,
            cache: None,
        };
        let mut cursor = MergeCursor::new(layer, lower, columns.to_vec(), range);
        cursor.collect_rows()
    }

    /// Whether every layer is empty (no pending differences at all).
    pub fn is_empty(&self) -> bool {
        self.layers.iter().all(Pdt::is_empty)
    }

    /// The layers, bottom (closest to stable storage) first.
    pub fn layers(&self) -> &[Pdt] {
        &self.layers
    }

    /// Pushes `layer` as the new top (most private) layer. Its positions must
    /// refer to the output stream of the current stack.
    ///
    /// # Panics
    /// Panics when `layer` was built for a different column count.
    pub fn push_layer(&mut self, layer: Pdt) {
        assert_eq!(
            layer.column_count(),
            self.column_count,
            "layer column count must match the stack"
        );
        self.layers.push(layer);
    }

    /// Pops and returns the top layer. Returns `None` when only one layer is
    /// left (a stack never goes below depth 1).
    pub fn pop_layer(&mut self) -> Option<Pdt> {
        if self.layers.len() <= 1 {
            return None;
        }
        self.layers.pop()
    }

    /// Folds `upper` — whose positions refer to the output stream of this
    /// stack — into the top layer, so the stack alone now produces the
    /// stream `self` followed by `upper` would. This is the commit operation
    /// of a snapshot-isolated transaction: the transaction's private PDT is
    /// absorbed into the shared top layer.
    pub fn absorb_top(&mut self, upper: &Pdt, stable_tuples: u64) -> Result<()> {
        let below = self.visible_below(stable_tuples, self.layers.len() - 1);
        let top = self.layers.last_mut().expect("depth >= 1");
        compose_into(top, upper, below)
    }

    /// Clones the layers above index `at` (exclusive of the bottom `at`
    /// layers) into a new stack. Used after a checkpoint: the bottom layers
    /// were materialized into a new stable image, and the layers above them
    /// — anchored on exactly that image's visible stream — carry on as the
    /// table's live differences. Returns a single empty layer when `at`
    /// covers the whole stack.
    pub fn split_upper(&self, at: usize) -> PdtStack {
        let layers: Vec<Pdt> = self.layers[at.min(self.layers.len())..].to_vec();
        if layers.is_empty() {
            return PdtStack::new(self.column_count, 1);
        }
        Self {
            column_count: self.column_count,
            layers,
        }
    }

    /// Flattens the top layer into the layer below it, leaving a fresh empty
    /// top layer. The observable merged stream is unchanged.
    pub fn propagate(&mut self, stable_tuples: u64) -> Result<()> {
        if self.layers.len() < 2 {
            return Ok(());
        }
        let top = self.layers.pop().expect("len >= 2");
        let below_tuples = self.visible_below(stable_tuples, self.layers.len() - 1);
        {
            let lower = self.layers.last_mut().expect("len >= 1");
            compose_into(lower, &top, below_tuples)?;
        }
        self.layers.push(Pdt::new(self.column_count));
        Ok(())
    }

    /// Flattens every layer into a single equivalent PDT (used by
    /// checkpointing and by tests).
    ///
    /// The combined PDT stays anchored directly on stable storage, so every
    /// composition step passes the same `stable_tuples` count.
    pub fn flatten(&self, stable_tuples: u64) -> Result<Pdt> {
        let mut combined = self.layers[0].clone();
        for layer in &self.layers[1..] {
            compose_into(&mut combined, layer, stable_tuples)?;
        }
        Ok(combined)
    }
}

/// Applies every update of `upper` (whose positions live in the output space
/// of `lower`) onto `lower`, so that `lower` alone produces the same visible
/// stream as `lower` followed by `upper`.
///
/// Updates are replayed in descending position order: edits at a position
/// never disturb the meaning of positions smaller than it, so later (smaller)
/// replays still refer to the correct rows.
fn compose_into(lower: &mut Pdt, upper: &Pdt, lower_stable: u64) -> Result<()> {
    let lower_visible = lower.visible_count(lower_stable);
    let anchors: Vec<u64> = upper.anchors_in(0, u64::MAX).collect();
    for &anchor in anchors.iter().rev() {
        // 1. Delete / modify of the row at position `anchor` (a position in
        //    lower's output space).
        if upper.node_deleted(anchor) {
            lower.delete(Rid::new(anchor), lower_stable)?;
        } else {
            for col in 0..upper.column_count() {
                if let Some(v) = upper.node_modify(anchor, col) {
                    lower.modify(Rid::new(anchor), col, v, lower_stable)?;
                }
            }
        }
        // 2. Rows inserted before position `anchor`, preserving their order.
        let inserts = upper.node_inserts(anchor);
        for i in 0..inserts {
            let row = upper
                .node_insert_row(anchor, i)
                .expect("i < inserts")
                .clone();
            let pos = (anchor + i as u64).min(lower_visible + i as u64);
            lower.insert(Rid::new(pos), row, lower_stable)?;
        }
    }
    Ok(())
}

/// A [`StableSource`] that materializes the merged output of the lower layers
/// of a stack, used as the input of the layer above them.
struct StackSource<'a, S> {
    stack: &'a PdtStack,
    upto: usize,
    source: S,
    cache: Option<(u64, Vec<Value>)>,
}

impl<'a, S: StableSource + Clone> StableSource for StackSource<'a, S> {
    fn stable_tuples(&self) -> u64 {
        let mut count = self.source.stable_tuples();
        for layer in &self.stack.layers[..self.upto] {
            count = layer.visible_count(count);
        }
        count
    }

    fn value(&mut self, col: usize, sid: u64) -> Value {
        if let Some((cached_sid, row)) = &self.cache {
            if *cached_sid == sid {
                return row[col];
            }
        }
        let all_columns: Vec<usize> = (0..self.stack.column_count).collect();
        let rows = self.stack.merge_layer(
            self.upto,
            self.source.clone(),
            &all_columns,
            TupleRange::new(sid, sid + 1),
        );
        let row = rows
            .into_iter()
            .next()
            .unwrap_or_else(|| vec![0; self.stack.column_count]);
        let v = row[col];
        self.cache = Some((sid, row));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{merge_range, SliceSource};

    fn source(n: u64) -> SliceSource {
        SliceSource::generate(2, n, |c, s| (s * 10 + c as u64) as Value)
    }

    #[test]
    fn single_layer_stack_behaves_like_a_pdt() {
        let n = 10;
        let mut stack = PdtStack::new(2, 1);
        stack.insert(Rid::new(2), vec![-1, -2], n).unwrap();
        stack.delete(Rid::new(5), n).unwrap();
        let mut pdt = Pdt::new(2);
        pdt.insert(Rid::new(2), vec![-1, -2], n).unwrap();
        pdt.delete(Rid::new(5), n).unwrap();
        assert_eq!(
            stack.merge_range(source(n), &[0, 1], TupleRange::new(0, 100)),
            merge_range(&pdt, source(n), &[0, 1], TupleRange::new(0, 100))
        );
        assert_eq!(stack.visible_count(n), pdt.visible_count(n));
    }

    #[test]
    fn updates_land_in_the_top_layer_only() {
        let n = 10;
        let mut stack = PdtStack::new(2, 3);
        stack.insert(Rid::new(0), vec![1, 1], n).unwrap();
        assert!(stack.layer(0).is_empty());
        assert!(stack.layer(1).is_empty());
        assert_eq!(stack.top().stats().inserts, 1);
    }

    #[test]
    fn stacked_layers_compose_for_reads() {
        let n = 10;
        let mut stack = PdtStack::new(2, 2);
        // Layer 0 (shared): delete stable row 0.
        stack.top_mut().delete(Rid::new(0), n).unwrap();
        stack.propagate(n).unwrap(); // move it into layer 0
        assert_eq!(stack.layer(0).stats().deletes, 1);
        // Layer 1 (private): insert at the new position 0.
        stack.insert(Rid::new(0), vec![-5, -6], n).unwrap();
        let rows = stack.merge_range(source(n), &[0, 1], TupleRange::new(0, 3));
        assert_eq!(rows, vec![vec![-5, -6], vec![10, 11], vec![20, 21]]);
        assert_eq!(stack.visible_count(n), 10);
    }

    #[test]
    fn translation_composes_through_layers() {
        let n = 10;
        let mut stack = PdtStack::new(2, 2);
        stack.top_mut().insert(Rid::new(3), vec![0, 0], n).unwrap();
        stack.propagate(n).unwrap();
        stack.insert(Rid::new(0), vec![1, 1], n).unwrap();
        // Visible: [ins(1,1)], s0, s1, s2, [ins(0,0)], s3, ...
        assert_eq!(stack.rid_to_sid(Rid::new(0), n), Sid::new(0));
        assert_eq!(stack.rid_to_sid(Rid::new(1), n), Sid::new(0));
        assert_eq!(stack.rid_to_sid(Rid::new(4), n), Sid::new(3));
        assert_eq!(stack.rid_to_sid(Rid::new(5), n), Sid::new(3));
        assert_eq!(stack.sid_to_rid_low(Sid::new(0)), Rid::new(0));
        assert_eq!(stack.sid_to_rid_high(Sid::new(0)), Rid::new(1));
        assert_eq!(stack.sid_to_rid_low(Sid::new(3)), Rid::new(4));
        assert_eq!(stack.sid_to_rid_high(Sid::new(3)), Rid::new(5));
    }

    #[test]
    fn propagate_preserves_the_visible_stream() {
        let n = 20;
        let mut stack = PdtStack::new(2, 3);
        // A batch of updates in the private layer.
        stack.insert(Rid::new(5), vec![-1, -1], n).unwrap();
        stack.delete(Rid::new(10), n).unwrap();
        stack.modify(Rid::new(0), 1, 77, n).unwrap();
        let before = stack.merge_range(source(n), &[0, 1], TupleRange::new(0, 100));
        stack.propagate(n).unwrap();
        // More updates in the fresh private layer.
        stack.insert(Rid::new(0), vec![-9, -9], n).unwrap();
        stack.propagate(n).unwrap();
        let after = stack.merge_range(source(n), &[0, 1], TupleRange::new(0, 100));
        assert_eq!(after.len(), before.len() + 1);
        assert_eq!(&after[1..], &before[..]);
        assert!(stack.top().is_empty());
        assert!(stack.layer(2).is_empty());
    }

    #[test]
    fn flatten_produces_equivalent_single_pdt() {
        let n = 15;
        let mut stack = PdtStack::new(2, 3);
        stack.insert(Rid::new(3), vec![-1, -2], n).unwrap();
        stack.propagate(n).unwrap();
        stack.delete(Rid::new(0), n).unwrap();
        stack.modify(Rid::new(5), 0, 500, n).unwrap();
        stack.propagate(n).unwrap();
        stack.insert(Rid::new(7), vec![-3, -4], n).unwrap();

        let flat = stack.flatten(n).unwrap();
        assert_eq!(
            merge_range(&flat, source(n), &[0, 1], TupleRange::new(0, 100)),
            stack.merge_range(source(n), &[0, 1], TupleRange::new(0, 100))
        );
        assert_eq!(flat.visible_count(n), stack.visible_count(n));
    }

    #[test]
    fn partial_range_merge_through_stack_matches_slice_of_full() {
        let n = 25;
        let mut stack = PdtStack::new(2, 2);
        for i in 0..5 {
            stack
                .insert(Rid::new(i * 5), vec![-(i as Value), 0], n)
                .unwrap();
        }
        stack.propagate(n).unwrap();
        stack.delete(Rid::new(3), n).unwrap();
        let full = stack.merge_range(source(n), &[0], TupleRange::new(0, 1000));
        let part = stack.merge_range(source(n), &[0], TupleRange::new(10, 20));
        assert_eq!(part.as_slice(), &full[10..20]);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_depth_stack_is_rejected() {
        let _ = PdtStack::new(1, 0);
    }

    #[test]
    fn absorb_top_matches_a_transactions_private_layer() {
        // A transaction works on base + private; committing via absorb_top
        // must produce the same stream the layered stack showed.
        let n = 20;
        let mut base = PdtStack::new(2, 1);
        base.insert(Rid::new(3), vec![-1, -1], n).unwrap();
        base.delete(Rid::new(10), n).unwrap();

        let mut work = base.clone();
        work.push_layer(Pdt::new(2));
        work.insert(Rid::new(0), vec![-9, -9], n).unwrap();
        work.modify(Rid::new(5), 1, 42, n).unwrap();
        let expected = work.merge_range(source(n), &[0, 1], TupleRange::new(0, 100));

        let private = work.pop_layer().expect("depth 2");
        base.absorb_top(&private, n).unwrap();
        assert_eq!(base.depth(), 1);
        assert_eq!(
            base.merge_range(source(n), &[0, 1], TupleRange::new(0, 100)),
            expected
        );
        assert_eq!(base.visible_count(n), expected.len() as u64);
    }

    #[test]
    fn pop_layer_never_empties_the_stack() {
        let mut stack = PdtStack::new(1, 1);
        assert!(stack.pop_layer().is_none());
        stack.push_layer(Pdt::new(1));
        assert!(stack.pop_layer().is_some());
        assert_eq!(stack.depth(), 1);
    }

    #[test]
    fn split_upper_keeps_the_during_checkpoint_layers() {
        let n = 10;
        let mut stack = PdtStack::new(2, 1);
        stack.delete(Rid::new(0), n).unwrap(); // frozen by the checkpoint
        stack.push_layer(Pdt::new(2)); // pushed at checkpoint begin
        stack.insert(Rid::new(0), vec![7, 7], n).unwrap(); // committed mid-checkpoint
        let upper = stack.split_upper(1);
        assert_eq!(upper.depth(), 1);
        assert_eq!(upper.top().stats().inserts, 1);
        assert_eq!(upper.top().stats().deletes, 0);
        // Splitting past the end yields a fresh empty stack.
        assert!(stack.split_upper(99).is_empty());
        assert!(!stack.is_empty());
        assert!(PdtStack::new(2, 3).is_empty());
        assert_eq!(stack.layers().len(), 2);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn push_layer_rejects_mismatched_columns() {
        let mut stack = PdtStack::new(2, 1);
        stack.push_layer(Pdt::new(3));
    }
}
