//! WAL codec for committed write sets.
//!
//! A transaction commit is logged as the *serialized private PDT* of every
//! table it wrote, not as an operation list: the private layer is the exact
//! delta `PdtStack::absorb_top` folds into the shared stack, so replaying a
//! commit record is literally `absorb_top(decoded_pdt, stable_tuples)` —
//! the same code path a live commit takes. First-committer-wins guarantees
//! the visible stream beneath each commit is identical at replay time, so
//! anchors and insert offsets resolve to the same rows.
//!
//! # Record body layout (all integers little-endian)
//!
//! ```text
//! commit  := table_count:u32, table_entry*
//! entry   := table_id:u64, commit_seq:u64, visible_before:u64,
//!            pdt_len:u32, pdt
//! pdt     := column_count:u32, node_count:u32, node*
//! node    := sid:u64, flags:u8 (bit0 = deleted),
//!            modify_count:u32, (col:u32, value:i64)*,
//!            insert_count:u32, (value:i64 × column_count)*
//! ```
//!
//! `visible_before` is the visible row count of the table at the moment the
//! commit applied; recovery validates it against the rebuilt stack before
//! replaying, which catches a stale durable image, a missing bulk append or
//! record misordering as a typed [`Error::WalCorrupt`] instead of silently
//! diverging.

use scanshare_common::{Error, Result, TableId};

use crate::pdt::{Node, Pdt};

/// One table's share of a commit record.
#[derive(Debug, Clone)]
pub struct CommitTableRecord {
    /// The table the write set applies to.
    pub table: TableId,
    /// The table's commit sequence number after this commit.
    pub commit_seq: u64,
    /// Visible rows of the table immediately before this commit applied.
    pub visible_before: u64,
    /// The committed private PDT (the delta `absorb_top` folds in).
    pub pdt: Pdt,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| {
                Error::WalCorrupt(format!(
                    "commit record truncated: wanted {n} bytes at offset {}",
                    self.pos
                ))
            })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn encode_pdt_into(buf: &mut Vec<u8>, pdt: &Pdt) {
    put_u32(buf, pdt.column_count() as u32);
    let nodes: Vec<_> = pdt.nodes_iter().collect();
    put_u32(buf, nodes.len() as u32);
    for (sid, node) in nodes {
        put_u64(buf, sid);
        buf.push(u8::from(node.deleted));
        put_u32(buf, node.modifies.len() as u32);
        for (&col, &value) in &node.modifies {
            put_u32(buf, col as u32);
            put_i64(buf, value);
        }
        put_u32(buf, node.inserts.len() as u32);
        for row in &node.inserts {
            for &value in row {
                put_i64(buf, value);
            }
        }
    }
}

fn decode_pdt_from(r: &mut Reader<'_>) -> Result<Pdt> {
    let column_count = r.u32()? as usize;
    let node_count = r.u32()?;
    let mut pdt = Pdt::new(column_count);
    let mut last_sid = None;
    for _ in 0..node_count {
        let sid = r.u64()?;
        if last_sid.is_some_and(|last| sid <= last) {
            return Err(Error::WalCorrupt(format!(
                "commit record nodes out of order at sid {sid}"
            )));
        }
        last_sid = Some(sid);
        let flags = r.u8()?;
        if flags > 1 {
            return Err(Error::WalCorrupt(format!(
                "commit record node flags {flags:#x} unknown"
            )));
        }
        let mut node = Node {
            deleted: flags & 1 == 1,
            ..Node::default()
        };
        let modify_count = r.u32()?;
        for _ in 0..modify_count {
            let col = r.u32()? as usize;
            if col >= column_count {
                return Err(Error::WalCorrupt(format!(
                    "commit record modifies column {col} of a {column_count}-column table"
                )));
            }
            let value = r.i64()?;
            node.modifies.insert(col, value);
        }
        let insert_count = r.u32()?;
        for _ in 0..insert_count {
            let mut row = Vec::with_capacity(column_count);
            for _ in 0..column_count {
                row.push(r.i64()?);
            }
            node.inserts.push(row);
        }
        pdt.set_node(sid, node);
    }
    Ok(pdt)
}

/// Serializes one commit's per-table write sets into a WAL record body.
pub fn encode_commit(tables: &[CommitTableRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, tables.len() as u32);
    for entry in tables {
        put_u64(&mut buf, entry.table.raw() as u64);
        put_u64(&mut buf, entry.commit_seq);
        put_u64(&mut buf, entry.visible_before);
        let mut pdt_buf = Vec::new();
        encode_pdt_into(&mut pdt_buf, &entry.pdt);
        put_u32(&mut buf, pdt_buf.len() as u32);
        buf.extend_from_slice(&pdt_buf);
    }
    buf
}

/// Deserializes a commit record body. The frame checksum already verified
/// the bytes; errors here mean the record contradicts its own structure and
/// surface as [`Error::WalCorrupt`].
pub fn decode_commit(body: &[u8]) -> Result<Vec<CommitTableRecord>> {
    let mut r = Reader::new(body);
    let table_count = r.u32()?;
    let mut out = Vec::with_capacity(table_count as usize);
    for _ in 0..table_count {
        let raw = r.u64()?;
        let table = u32::try_from(raw)
            .map_err(|_| Error::WalCorrupt(format!("commit record table id {raw} overflows")))?;
        let commit_seq = r.u64()?;
        let visible_before = r.u64()?;
        let pdt_len = r.u32()? as usize;
        let pdt_bytes = r.take(pdt_len)?;
        let mut pr = Reader::new(pdt_bytes);
        let pdt = decode_pdt_from(&mut pr)?;
        if !pr.done() {
            return Err(Error::WalCorrupt(format!(
                "commit record pdt has {} trailing bytes",
                pdt_bytes.len() - pr.pos
            )));
        }
        out.push(CommitTableRecord {
            table: TableId::new(table),
            commit_seq,
            visible_before,
            pdt,
        });
    }
    if !r.done() {
        return Err(Error::WalCorrupt(format!(
            "commit record has {} trailing bytes",
            body.len() - r.pos
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::Rid;
    use scanshare_storage::datagen::{splitmix64, Value};

    /// Merge a PDT over explicit stable rows (independent reference).
    fn merged(pdt: &Pdt, stable_rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        for sid in 0..=stable_rows.len() as u64 {
            for i in 0..pdt.node_inserts(sid) {
                out.push(pdt.node_insert_row(sid, i).unwrap().clone());
            }
            if sid < stable_rows.len() as u64 && !pdt.node_deleted(sid) {
                let mut row = stable_rows[sid as usize].clone();
                for (col, value) in row.iter_mut().enumerate() {
                    if let Some(v) = pdt.node_modify(sid, col) {
                        *value = v;
                    }
                }
                out.push(row);
            }
        }
        out
    }

    fn random_pdt(seed: u64, stable: u64, ops: u64) -> Pdt {
        let mut pdt = Pdt::new(2);
        let mut s = seed;
        for step in 0..ops {
            s = splitmix64(s ^ step);
            let visible = pdt.visible_count(stable);
            match s % 3 {
                0 => {
                    let pos = s.rotate_left(17) % (visible + 1);
                    pdt.insert(Rid::new(pos), vec![step as Value, -(step as Value)], stable)
                        .unwrap();
                }
                1 if visible > 0 => {
                    let pos = s.rotate_left(23) % visible;
                    pdt.delete(Rid::new(pos), stable).unwrap();
                }
                2 if visible > 0 => {
                    let pos = s.rotate_left(31) % visible;
                    pdt.modify(Rid::new(pos), (s >> 9) as usize % 2, 7, stable)
                        .unwrap();
                }
                _ => {}
            }
        }
        pdt
    }

    fn stable_rows(n: u64) -> Vec<Vec<Value>> {
        (0..n).map(|i| vec![i as Value, (i * 3) as Value]).collect()
    }

    #[test]
    fn empty_commit_round_trips() {
        let body = encode_commit(&[]);
        assert!(decode_commit(&body).unwrap().is_empty());
    }

    #[test]
    fn random_pdts_round_trip_byte_exactly() {
        let stable = 40u64;
        let rows = stable_rows(stable);
        for seed in 0..8u64 {
            let pdt = random_pdt(0xDEC0 + seed, stable, 60);
            let record = CommitTableRecord {
                table: TableId::new(5),
                commit_seq: seed + 1,
                visible_before: pdt.visible_count(stable),
                pdt: pdt.clone(),
            };
            let body = encode_commit(&[record]);
            let decoded = decode_commit(&body).unwrap();
            assert_eq!(decoded.len(), 1);
            assert_eq!(decoded[0].table, TableId::new(5));
            assert_eq!(decoded[0].commit_seq, seed + 1);
            assert_eq!(
                merged(&decoded[0].pdt, &rows),
                merged(&pdt, &rows),
                "decoded PDT merges to the same visible stream (seed {seed})"
            );
            assert_eq!(
                decoded[0].pdt.visible_count(stable),
                pdt.visible_count(stable)
            );
        }
    }

    #[test]
    fn multi_table_commits_round_trip() {
        let a = random_pdt(1, 20, 15);
        let b = random_pdt(2, 30, 15);
        let body = encode_commit(&[
            CommitTableRecord {
                table: TableId::new(1),
                commit_seq: 4,
                visible_before: a.visible_count(20),
                pdt: a,
            },
            CommitTableRecord {
                table: TableId::new(2),
                commit_seq: 9,
                visible_before: b.visible_count(30),
                pdt: b,
            },
        ]);
        let decoded = decode_commit(&body).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].table, TableId::new(1));
        assert_eq!(decoded[1].table, TableId::new(2));
        assert_eq!(decoded[1].commit_seq, 9);
    }

    #[test]
    fn truncated_and_trailing_bytes_are_rejected() {
        let pdt = random_pdt(3, 10, 10);
        let body = encode_commit(&[CommitTableRecord {
            table: TableId::new(1),
            commit_seq: 1,
            visible_before: pdt.visible_count(10),
            pdt,
        }]);
        for cut in [1, body.len() / 2, body.len() - 1] {
            assert!(
                matches!(decode_commit(&body[..cut]), Err(Error::WalCorrupt(_))),
                "cut at {cut} must be rejected"
            );
        }
        let mut long = body.clone();
        long.push(0);
        assert!(matches!(decode_commit(&long), Err(Error::WalCorrupt(_))));
    }

    #[test]
    fn out_of_range_modify_column_is_rejected() {
        let mut pdt = Pdt::new(2);
        pdt.modify(Rid::new(0), 1, 5, 10).unwrap();
        let mut body = encode_commit(&[CommitTableRecord {
            table: TableId::new(1),
            commit_seq: 1,
            visible_before: 10,
            pdt,
        }]);
        // Patch the modify column index (u32 right after the node header) to
        // an out-of-range value. Layout: 4 (count) + 8+8+8 (entry header) +
        // 4 (pdt_len) + 4 (column_count) + 4 (node_count) + 8 (sid) + 1
        // (flags) + 4 (modify_count) = 53 bytes before the column index.
        body[53] = 9;
        assert!(matches!(decode_commit(&body), Err(Error::WalCorrupt(_))));
    }
}
