//! PDT checkpoints: migrating in-memory differences to a new stable image.
//!
//! When PDT memory grows too large, its contents are migrated to disk by
//! scanning the table, merging the PDT changes and writing the result as a
//! brand-new version of the table (Figure 7 of the paper). The new master
//! snapshot shares **no** pages with the old one; transactions still running
//! on the old snapshot keep reading the old pages until they finish.

use std::sync::Arc;

use scanshare_common::{Result, TableId, TupleRange};
use scanshare_storage::snapshot::Snapshot;
use scanshare_storage::storage::Storage;

use crate::merge::{merge_range, SliceSource};
use crate::pdt::Pdt;
use crate::stack::PdtStack;

/// Scans `snapshot` of `table`, merges `pdt`, and installs the merged result
/// as a new checkpointed master snapshot. Returns the new snapshot.
///
/// The installation is a compare-and-swap against `snapshot`: if the
/// table's master changed while the merge ran (a concurrent bulk append
/// committed), the checkpoint fails with
/// [`Error::TransactionConflict`](scanshare_common::Error::TransactionConflict)
/// instead of silently discarding the appended rows; retry against the new
/// master.
pub fn checkpoint_table(
    storage: &Arc<Storage>,
    table: TableId,
    snapshot: &Snapshot,
    pdt: &Pdt,
) -> Result<Arc<Snapshot>> {
    let layout = storage.layout(table)?;
    let stable = snapshot.stable_tuples();
    let column_count = layout.column_count();

    // Read the stable image (per column) and merge the PDT over it.
    let columns: Vec<Vec<i64>> = (0..column_count)
        .map(|col| storage.read_range(&layout, snapshot, col, TupleRange::new(0, stable)))
        .collect::<Result<_>>()?;
    let all_columns: Vec<usize> = (0..column_count).collect();
    let visible = pdt.visible_count(stable);
    let rows = merge_range(
        pdt,
        SliceSource::new(columns),
        &all_columns,
        TupleRange::new(0, visible),
    );

    // Transpose back to column-major for installation.
    let mut new_values: Vec<Vec<i64>> = vec![Vec::with_capacity(rows.len()); column_count];
    for row in &rows {
        for (col, &v) in row.iter().enumerate() {
            new_values[col].push(v);
        }
    }
    storage.install_checkpoint_from(table, snapshot.id(), visible, Some(new_values))
}

/// Checkpoints a full [`PdtStack`] by flattening it into a single PDT first.
/// After the checkpoint the caller should replace its stack with a fresh,
/// empty one anchored on the returned snapshot.
pub fn checkpoint_stack(
    storage: &Arc<Storage>,
    table: TableId,
    snapshot: &Snapshot,
    stack: &PdtStack,
) -> Result<Arc<Snapshot>> {
    let flat = stack.flatten(snapshot.stable_tuples())?;
    checkpoint_table(storage, table, snapshot, &flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::Rid;
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::datagen::DataGen;
    use scanshare_storage::table::TableSpec;

    fn setup(base: u64) -> (Arc<Storage>, TableId) {
        let storage = Storage::with_seed(1024, 500, 3);
        let spec = TableSpec::new(
            "t",
            vec![
                ColumnSpec::with_width("a", ColumnType::Int64, 8.0),
                ColumnSpec::with_width("b", ColumnType::Int64, 4.0),
            ],
            base,
        );
        let id = storage
            .create_table_with_data(
                spec,
                vec![
                    DataGen::Sequential { start: 0, step: 1 },
                    DataGen::Constant(7),
                ],
            )
            .unwrap();
        (storage, id)
    }

    #[test]
    fn checkpoint_materializes_merged_data_in_new_pages() {
        let (storage, table) = setup(1000);
        let layout = storage.layout(table).unwrap();
        let old = storage.master_snapshot(table).unwrap();

        let mut pdt = Pdt::new(2);
        pdt.delete(Rid::new(0), 1000).unwrap();
        pdt.insert(Rid::new(10), vec![-5, -6], 1000).unwrap();
        pdt.modify(Rid::new(500), 1, 999, 1000).unwrap();

        let new = checkpoint_table(&storage, table, &old, &pdt).unwrap();
        assert_eq!(new.stable_tuples(), 1000); // -1 delete +1 insert
        assert_eq!(old.common_prefix_pages(&new).iter().sum::<usize>(), 0);
        assert_eq!(storage.master_snapshot(table).unwrap().id(), new.id());

        // Row 0 of the new image is old stable tuple 1 (tuple 0 was deleted).
        let head = storage
            .read_range(&layout, &new, 0, TupleRange::new(0, 3))
            .unwrap();
        assert_eq!(head, vec![1, 2, 3]);
        // The inserted row shows up at position 10.
        let ins = storage
            .read_range(&layout, &new, 0, TupleRange::new(10, 11))
            .unwrap();
        assert_eq!(ins, vec![-5]);
        // The modification is applied (old RID 500 shifted: delete at 0 and
        // insert at 10 cancel out for positions past 10, so it is still 500).
        let modified = storage
            .read_range(&layout, &new, 1, TupleRange::new(500, 501))
            .unwrap();
        assert_eq!(modified, vec![999]);

        // The old snapshot still reads pre-checkpoint data.
        let old_head = storage
            .read_range(&layout, &old, 0, TupleRange::new(0, 3))
            .unwrap();
        assert_eq!(old_head, vec![0, 1, 2]);
    }

    #[test]
    fn checkpoint_of_empty_pdt_copies_the_table() {
        let (storage, table) = setup(300);
        let layout = storage.layout(table).unwrap();
        let old = storage.master_snapshot(table).unwrap();
        let new = checkpoint_table(&storage, table, &old, &Pdt::new(2)).unwrap();
        assert_eq!(new.stable_tuples(), 300);
        let a = storage
            .read_range(&layout, &new, 0, TupleRange::new(0, 300))
            .unwrap();
        let b = storage
            .read_range(&layout, &old, 0, TupleRange::new(0, 300))
            .unwrap();
        assert_eq!(a, b);
        assert!(!new.same_pages(&old));
    }

    #[test]
    fn checkpoint_stack_flattens_layers() {
        let (storage, table) = setup(200);
        let layout = storage.layout(table).unwrap();
        let old = storage.master_snapshot(table).unwrap();

        let mut stack = PdtStack::new(2, 3);
        stack.insert(Rid::new(0), vec![-1, -1], 200).unwrap();
        stack.propagate(200).unwrap();
        stack.delete(Rid::new(5), 200).unwrap();

        let new = checkpoint_stack(&storage, table, &old, &stack).unwrap();
        assert_eq!(new.stable_tuples(), 200);
        let head = storage
            .read_range(&layout, &new, 0, TupleRange::new(0, 6))
            .unwrap();
        // Visible stream: [-1], 0, 1, 2, 3, (4 deleted at visible pos 5), 5...
        assert_eq!(head, vec![-1, 0, 1, 2, 3, 5]);
    }
}
