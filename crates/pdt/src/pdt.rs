//! The Positional Delta Tree structure and SID/RID translation.
//!
//! A PDT stores Delete, Insert and Modification actions organised by **SID**
//! (stable position). Updates are *applied* by callers in **RID** space (the
//! positions of the visible, update-merged stream), so the structure supports
//! translation in both directions:
//!
//! * [`Pdt::rid_to_sid`] maps a visible row back to the stable position it is
//!   anchored at (inserted rows map to the SID of the first stable tuple that
//!   follows them);
//! * [`Pdt::sid_to_rid_low`] / [`Pdt::sid_to_rid_high`] map a stable position
//!   to the lowest / highest visible position anchored at it (they differ
//!   when rows were inserted before a stable tuple).
//!
//! Internally the PDT is an ordered map from SID to an update node plus a
//! lazily rebuilt cumulative index that provides the "running delta" of the
//! paper in `O(log n)`.

use std::collections::BTreeMap;
use std::sync::Mutex;

use scanshare_common::{Error, Result, Rid, Sid};
use scanshare_storage::datagen::Value;

/// Updates anchored at one stable position.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Node {
    /// Rows inserted *before* stable tuple `sid`, in visible order. Each row
    /// carries one value per table column.
    pub inserts: Vec<Vec<Value>>,
    /// Whether stable tuple `sid` is deleted.
    pub deleted: bool,
    /// Per-column new values for stable tuple `sid`.
    pub modifies: BTreeMap<usize, Value>,
}

impl Node {
    fn is_empty(&self) -> bool {
        self.inserts.is_empty() && !self.deleted && self.modifies.is_empty()
    }
}

/// Cumulative counters at (and including) one PDT node, used to compute the
/// running delta between RID and SID.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    sid: u64,
    /// Inserted rows anchored at keys `<= sid`.
    inserts_incl: u64,
    /// Deleted stable tuples with position `<= sid`.
    deletes_incl: u64,
}

/// Summary statistics of a PDT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Total inserted rows.
    pub inserts: u64,
    /// Total deleted stable tuples.
    pub deletes: u64,
    /// Total per-column modifications.
    pub modifies: u64,
    /// Number of distinct anchor positions.
    pub nodes: u64,
}

/// A Positional Delta Tree over a table with `column_count` columns.
#[derive(Debug, Default)]
pub struct Pdt {
    column_count: usize,
    nodes: BTreeMap<u64, Node>,
    /// Lazily rebuilt cumulative index (interior mutability so that read-only
    /// translation calls can build it; a `Mutex` keeps the structure `Sync`).
    index: Mutex<Option<Vec<IndexEntry>>>,
    total_inserts: u64,
    total_deletes: u64,
    total_modifies: u64,
}

impl Clone for Pdt {
    fn clone(&self) -> Self {
        Self {
            column_count: self.column_count,
            nodes: self.nodes.clone(),
            index: Mutex::new(None),
            total_inserts: self.total_inserts,
            total_deletes: self.total_deletes,
            total_modifies: self.total_modifies,
        }
    }
}

impl Pdt {
    /// Creates an empty PDT for a table with `column_count` columns.
    pub fn new(column_count: usize) -> Self {
        Self {
            column_count,
            ..Default::default()
        }
    }

    /// Number of table columns each inserted row must provide.
    pub fn column_count(&self) -> usize {
        self.column_count
    }

    /// Whether the PDT holds no updates (merging is the identity).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Summary statistics.
    pub fn stats(&self) -> UpdateStats {
        UpdateStats {
            inserts: self.total_inserts,
            deletes: self.total_deletes,
            modifies: self.total_modifies,
            nodes: self.nodes.len() as u64,
        }
    }

    /// Number of rows visible after merging, for a stable image of
    /// `stable_tuples` tuples.
    pub fn visible_count(&self, stable_tuples: u64) -> u64 {
        stable_tuples + self.total_inserts - self.total_deletes
    }

    // ------------------------------------------------------------------
    // Running-delta index
    // ------------------------------------------------------------------

    fn invalidate(&self) {
        *self.index.lock().expect("index lock poisoned") = None;
    }

    fn with_index<R>(&self, f: impl FnOnce(&[IndexEntry]) -> R) -> R {
        let mut borrow = self.index.lock().expect("index lock poisoned");
        if borrow.is_none() {
            let mut entries = Vec::with_capacity(self.nodes.len());
            let mut inserts = 0u64;
            let mut deletes = 0u64;
            for (&sid, node) in &self.nodes {
                inserts += node.inserts.len() as u64;
                deletes += u64::from(node.deleted);
                entries.push(IndexEntry {
                    sid,
                    inserts_incl: inserts,
                    deletes_incl: deletes,
                });
            }
            *borrow = Some(entries);
        }
        f(borrow.as_ref().expect("index built above"))
    }

    /// Inserted rows anchored strictly before `sid` / deletes strictly before
    /// `sid`.
    fn deltas_before(&self, sid: u64) -> (u64, u64) {
        self.with_index(|idx| {
            // Last entry with entry.sid < sid.
            match idx.binary_search_by(|e| e.sid.cmp(&sid)) {
                Ok(pos) => {
                    if pos == 0 {
                        (0, 0)
                    } else {
                        (idx[pos - 1].inserts_incl, idx[pos - 1].deletes_incl)
                    }
                }
                Err(pos) => {
                    if pos == 0 {
                        (0, 0)
                    } else {
                        (idx[pos - 1].inserts_incl, idx[pos - 1].deletes_incl)
                    }
                }
            }
        })
    }

    fn node(&self, sid: u64) -> Option<&Node> {
        self.nodes.get(&sid)
    }

    pub(crate) fn node_inserts(&self, sid: u64) -> usize {
        self.node(sid).map(|n| n.inserts.len()).unwrap_or(0)
    }

    pub(crate) fn node_deleted(&self, sid: u64) -> bool {
        self.node(sid).map(|n| n.deleted).unwrap_or(false)
    }

    pub(crate) fn node_insert_row(&self, sid: u64, offset: usize) -> Option<&Vec<Value>> {
        self.node(sid).and_then(|n| n.inserts.get(offset))
    }

    pub(crate) fn node_modify(&self, sid: u64, col: usize) -> Option<Value> {
        self.node(sid).and_then(|n| n.modifies.get(&col).copied())
    }

    /// Iterates the anchor SIDs present in the PDT within `[from, to)`.
    pub(crate) fn anchors_in(&self, from: u64, to: u64) -> impl Iterator<Item = u64> + '_ {
        self.nodes.range(from..to).map(|(&sid, _)| sid)
    }

    /// Iterates every node with its anchor SID (WAL encoding).
    pub(crate) fn nodes_iter(&self) -> impl Iterator<Item = (u64, &Node)> + '_ {
        self.nodes.iter().map(|(&sid, node)| (sid, node))
    }

    /// Installs a fully-formed node at `sid` (WAL replay decoding). The
    /// insert/delete totals are recomputed exactly from the node contents;
    /// `total_modifies` counts one per modified column, which can undercount
    /// a live PDT that modified the same column twice — a statistics-only
    /// difference, since positional translation never reads it.
    pub(crate) fn set_node(&mut self, sid: u64, node: Node) {
        if node.is_empty() {
            return;
        }
        self.total_inserts += node.inserts.len() as u64;
        self.total_deletes += u64::from(node.deleted);
        self.total_modifies += node.modifies.len() as u64;
        self.nodes.insert(sid, node);
        self.invalidate();
    }

    // ------------------------------------------------------------------
    // Positional translation (Figure 4)
    // ------------------------------------------------------------------

    /// RID of the first visible row anchored at `sid` (the "low" variant of
    /// SID-to-RID conversion). For a deleted stable tuple with no inserts the
    /// result is the RID of the first following visible row, exactly as the
    /// paper describes.
    pub fn sid_to_rid_low(&self, sid: Sid) -> Rid {
        let (ins, del) = self.deltas_before(sid.raw());
        Rid::new(sid.raw() - del + ins)
    }

    /// RID of the last visible row anchored at `sid` (the "high" variant).
    pub fn sid_to_rid_high(&self, sid: Sid) -> Rid {
        let low = self.sid_to_rid_low(sid).raw();
        let rows = self.rows_at(sid.raw());
        Rid::new(low + rows.saturating_sub(1))
    }

    /// Number of visible rows anchored at `sid`: its inserts plus the stable
    /// tuple itself when not deleted.
    fn rows_at(&self, sid: u64) -> u64 {
        match self.node(sid) {
            Some(n) => n.inserts.len() as u64 + u64::from(!n.deleted),
            None => 1,
        }
    }

    /// Maps a visible row position back to the stable position it is anchored
    /// at. Inserted rows translate to the SID of the first stable tuple that
    /// follows them; positions at or past the end of the visible stream
    /// translate to `stable_tuples`.
    pub fn rid_to_sid(&self, rid: Rid, stable_tuples: u64) -> Sid {
        let rid = rid.raw();
        // Binary search the largest sid in [0, stable_tuples] whose first
        // anchored row is at or before `rid`.
        let mut lo = 0u64;
        let mut hi = stable_tuples;
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if self.sid_to_rid_low(Sid::new(mid)).raw() <= rid {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Sid::new(lo)
    }

    /// Describes the visible row at `rid`: `(sid, offset)` where `offset <
    /// inserts_at(sid)` means the row is the `offset`-th insert anchored at
    /// `sid`, and `offset == inserts_at(sid)` means it is stable tuple `sid`
    /// itself.
    pub(crate) fn locate(&self, rid: Rid, stable_tuples: u64) -> (u64, usize) {
        let sid = self.rid_to_sid(rid, stable_tuples).raw();
        let low = self.sid_to_rid_low(Sid::new(sid)).raw();
        (sid, (rid.raw() - low) as usize)
    }

    // ------------------------------------------------------------------
    // Updates (positions given in RID space of the current visible stream)
    // ------------------------------------------------------------------

    fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.column_count {
            return Err(Error::config(format!(
                "inserted row has {} values but the table has {} columns",
                row.len(),
                self.column_count
            )));
        }
        Ok(())
    }

    /// Inserts `row` so that it becomes the row at position `rid` in the new
    /// visible stream (rows at `rid` and beyond shift right by one).
    pub fn insert(&mut self, rid: Rid, row: Vec<Value>, stable_tuples: u64) -> Result<()> {
        self.check_row(&row)?;
        let visible = self.visible_count(stable_tuples);
        if rid.raw() > visible {
            return Err(Error::PositionOutOfBounds {
                position: rid.raw(),
                visible,
            });
        }
        let (sid, offset) = if rid.raw() == visible {
            // Append at the very end: anchor at the end-of-table position.
            (stable_tuples, self.node_inserts(stable_tuples))
        } else {
            self.locate(rid, stable_tuples)
        };
        let node = self.nodes.entry(sid).or_default();
        let offset = offset.min(node.inserts.len());
        node.inserts.insert(offset, row);
        self.total_inserts += 1;
        self.invalidate();
        Ok(())
    }

    /// Deletes the visible row at `rid`.
    pub fn delete(&mut self, rid: Rid, stable_tuples: u64) -> Result<()> {
        let visible = self.visible_count(stable_tuples);
        if rid.raw() >= visible {
            return Err(Error::PositionOutOfBounds {
                position: rid.raw(),
                visible,
            });
        }
        let (sid, offset) = self.locate(rid, stable_tuples);
        let node = self.nodes.entry(sid).or_default();
        if offset < node.inserts.len() {
            node.inserts.remove(offset);
            self.total_inserts -= 1;
        } else {
            debug_assert!(
                !node.deleted,
                "visible row cannot be an already deleted tuple"
            );
            node.deleted = true;
            node.modifies.clear();
            self.total_deletes += 1;
        }
        if node.is_empty() {
            self.nodes.remove(&sid);
        }
        self.invalidate();
        Ok(())
    }

    /// Changes column `col` of the visible row at `rid` to `value`.
    pub fn modify(&mut self, rid: Rid, col: usize, value: Value, stable_tuples: u64) -> Result<()> {
        if col >= self.column_count {
            return Err(Error::config(format!(
                "column index {col} out of range for {} columns",
                self.column_count
            )));
        }
        let visible = self.visible_count(stable_tuples);
        if rid.raw() >= visible {
            return Err(Error::PositionOutOfBounds {
                position: rid.raw(),
                visible,
            });
        }
        let (sid, offset) = self.locate(rid, stable_tuples);
        let node = self.nodes.entry(sid).or_default();
        if offset < node.inserts.len() {
            node.inserts[offset][col] = value;
        } else {
            debug_assert!(!node.deleted);
            node.modifies.insert(col, value);
            self.total_modifies += 1;
        }
        self.invalidate();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: the visible stream as an explicit vector of rows,
    /// where a row is `(origin_sid_or_none, values)`.
    #[derive(Debug, Clone)]
    struct Model {
        rows: Vec<Vec<Value>>,
    }

    impl Model {
        fn new(stable: &[Vec<Value>]) -> Self {
            Self {
                rows: stable.to_vec(),
            }
        }
        fn insert(&mut self, rid: usize, row: Vec<Value>) {
            self.rows.insert(rid, row);
        }
        fn delete(&mut self, rid: usize) {
            self.rows.remove(rid);
        }
        fn modify(&mut self, rid: usize, col: usize, v: Value) {
            self.rows[rid][col] = v;
        }
    }

    fn stable(n: u64) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| vec![i as Value, (i * 10) as Value])
            .collect()
    }

    /// Merge `pdt` over the given stable rows (test helper mirroring what the
    /// merge cursor does, but written independently for cross-checking).
    fn merged(pdt: &Pdt, stable_rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        for sid in 0..=stable_rows.len() as u64 {
            for i in 0..pdt.node_inserts(sid) {
                out.push(pdt.node_insert_row(sid, i).unwrap().clone());
            }
            if sid < stable_rows.len() as u64 && !pdt.node_deleted(sid) {
                let mut row = stable_rows[sid as usize].clone();
                for (col, value) in row.iter_mut().enumerate() {
                    if let Some(v) = pdt.node_modify(sid, col) {
                        *value = v;
                    }
                }
                out.push(row);
            }
        }
        out
    }

    #[test]
    fn empty_pdt_is_identity() {
        let pdt = Pdt::new(2);
        assert!(pdt.is_empty());
        assert_eq!(pdt.visible_count(10), 10);
        assert_eq!(pdt.rid_to_sid(Rid::new(7), 10), Sid::new(7));
        assert_eq!(pdt.sid_to_rid_low(Sid::new(7)), Rid::new(7));
        assert_eq!(pdt.sid_to_rid_high(Sid::new(7)), Rid::new(7));
    }

    #[test]
    fn insert_shifts_following_rids() {
        let n = 10;
        let mut pdt = Pdt::new(2);
        pdt.insert(Rid::new(3), vec![100, 200], n).unwrap();
        assert_eq!(pdt.visible_count(n), 11);
        // The inserted row is anchored at stable tuple 3.
        assert_eq!(pdt.rid_to_sid(Rid::new(3), n), Sid::new(3));
        // Stable tuple 3 now lives at RID 4.
        assert_eq!(pdt.sid_to_rid_low(Sid::new(3)), Rid::new(3));
        assert_eq!(pdt.sid_to_rid_high(Sid::new(3)), Rid::new(4));
        // Stable tuple 4 shifted to RID 5.
        assert_eq!(pdt.sid_to_rid_low(Sid::new(4)), Rid::new(5));
        // Positions before the insert are unaffected.
        assert_eq!(pdt.rid_to_sid(Rid::new(2), n), Sid::new(2));
    }

    #[test]
    fn delete_makes_sid_unreachable_from_rid() {
        let n = 10;
        let mut pdt = Pdt::new(2);
        pdt.delete(Rid::new(4), n).unwrap();
        assert_eq!(pdt.visible_count(n), 9);
        // No RID maps to SID 4 any more: RID 4 now belongs to stable tuple 5.
        assert_eq!(pdt.rid_to_sid(Rid::new(4), n), Sid::new(5));
        // But SID 4 still translates to a RID (that of the next visible row).
        assert_eq!(pdt.sid_to_rid_low(Sid::new(4)), Rid::new(4));
        assert_eq!(pdt.sid_to_rid_high(Sid::new(4)), Rid::new(4));
        assert_eq!(pdt.rid_to_sid(Rid::new(8), n), Sid::new(9));
    }

    #[test]
    fn delete_of_inserted_row_cancels_out() {
        let n = 5;
        let mut pdt = Pdt::new(1);
        pdt.insert(Rid::new(2), vec![42], n).unwrap();
        assert_eq!(pdt.visible_count(n), 6);
        pdt.delete(Rid::new(2), n).unwrap();
        assert_eq!(pdt.visible_count(n), 5);
        assert!(
            pdt.is_empty(),
            "insert followed by delete of it leaves no state"
        );
    }

    #[test]
    fn modify_stable_and_inserted_rows() {
        let n = 4;
        let rows = stable(n);
        let mut pdt = Pdt::new(2);
        pdt.modify(Rid::new(1), 1, 999, n).unwrap();
        pdt.insert(Rid::new(0), vec![7, 8], n).unwrap();
        pdt.modify(Rid::new(0), 0, 70, n).unwrap(); // modifies the inserted row
        let out = merged(&pdt, &rows);
        assert_eq!(out[0], vec![70, 8]);
        assert_eq!(out[2], vec![1, 999]);
        // Modifying an inserted row does not create a Modify node.
        assert_eq!(pdt.stats().modifies, 1);
    }

    #[test]
    fn out_of_bounds_positions_are_rejected() {
        let n = 3;
        let mut pdt = Pdt::new(1);
        assert!(pdt.insert(Rid::new(5), vec![1], n).is_err());
        assert!(pdt.delete(Rid::new(3), n).is_err());
        assert!(pdt.modify(Rid::new(3), 0, 1, n).is_err());
        assert!(
            pdt.insert(Rid::new(3), vec![1], n).is_ok(),
            "append at end is allowed"
        );
        assert!(
            pdt.modify(Rid::new(0), 5, 1, n).is_err(),
            "column bound checked"
        );
        assert!(
            pdt.insert(Rid::new(0), vec![1, 2], n).is_err(),
            "row arity checked"
        );
    }

    #[test]
    fn figure_4_style_mixed_updates() {
        // Build a scenario similar to Figure 4: deletes and inserts mixed.
        let n = 8;
        let rows = stable(n);
        let mut pdt = Pdt::new(2);
        // Delete stable tuples 1 and 2 (visible positions 1 and then 1 again).
        pdt.delete(Rid::new(1), n).unwrap();
        pdt.delete(Rid::new(1), n).unwrap();
        // Insert two rows before (what is now) position 3.
        pdt.insert(Rid::new(3), vec![100, 100], n).unwrap();
        pdt.insert(Rid::new(4), vec![101, 101], n).unwrap();
        let out = merged(&pdt, &rows);
        assert_eq!(pdt.visible_count(n), out.len() as u64);
        assert_eq!(out.len(), 8);
        assert_eq!(out[0], vec![0, 0]);
        assert_eq!(out[1], vec![3, 30]);
        assert_eq!(out[2], vec![4, 40]);
        assert_eq!(out[3], vec![100, 100]);
        assert_eq!(out[4], vec![101, 101]);
        assert_eq!(out[5], vec![5, 50]);

        // Deleted tuples: sid_to_rid is still defined but no RID maps back to
        // them — the RID they translate to belongs to the first following
        // visible stable tuple (SID 3).
        for deleted_sid in [1u64, 2] {
            let rid = pdt.sid_to_rid_low(Sid::new(deleted_sid));
            assert_eq!(rid, Rid::new(1));
            assert_eq!(pdt.rid_to_sid(rid, n), Sid::new(3));
        }
        // Inserted rows map to the SID of the first following stable tuple (5).
        assert_eq!(pdt.rid_to_sid(Rid::new(3), n), Sid::new(5));
        assert_eq!(pdt.rid_to_sid(Rid::new(4), n), Sid::new(5));
        // Low/high conversions bracket the insert block + stable tuple 5.
        assert_eq!(pdt.sid_to_rid_low(Sid::new(5)), Rid::new(3));
        assert_eq!(pdt.sid_to_rid_high(Sid::new(5)), Rid::new(5));
    }

    #[test]
    fn random_operations_match_reference_model() {
        use scanshare_storage::datagen::splitmix64;
        let n = 50u64;
        let base = stable(n);
        let mut model = Model::new(&base);
        let mut pdt = Pdt::new(2);
        let mut seed = 0xfeed_f00d_u64;
        for step in 0..400 {
            seed = splitmix64(seed ^ step);
            let visible = pdt.visible_count(n);
            assert_eq!(visible as usize, model.rows.len());
            let op = seed % 3;
            match op {
                0 => {
                    let pos = seed.rotate_left(17) % (visible + 1);
                    let row = vec![step as Value, (step * 2) as Value];
                    pdt.insert(Rid::new(pos), row.clone(), n).unwrap();
                    model.insert(pos as usize, row);
                }
                1 if visible > 0 => {
                    let pos = seed.rotate_left(23) % visible;
                    pdt.delete(Rid::new(pos), n).unwrap();
                    model.delete(pos as usize);
                }
                2 if visible > 0 => {
                    let pos = seed.rotate_left(31) % visible;
                    let col = (seed >> 7) as usize % 2;
                    pdt.modify(Rid::new(pos), col, -(step as Value), n).unwrap();
                    model.modify(pos as usize, col, -(step as Value));
                }
                _ => {}
            }
        }
        assert_eq!(merged(&pdt, &base), model.rows);
    }

    #[test]
    fn translation_round_trips_for_visible_rows() {
        let n = 30u64;
        let mut pdt = Pdt::new(1);
        for i in 0..10 {
            pdt.insert(Rid::new(i * 2), vec![i as Value], n).unwrap();
        }
        for _ in 0..5 {
            pdt.delete(Rid::new(7), n).unwrap();
        }
        let visible = pdt.visible_count(n);
        for rid in 0..visible {
            let sid = pdt.rid_to_sid(Rid::new(rid), n);
            let low = pdt.sid_to_rid_low(sid).raw();
            let high = pdt.sid_to_rid_high(sid).raw();
            assert!(
                (low..=high).contains(&rid),
                "rid {rid} -> sid {sid} but [{low},{high}] does not contain it"
            );
        }
    }

    #[test]
    fn stats_track_totals() {
        let n = 10;
        let mut pdt = Pdt::new(1);
        pdt.insert(Rid::new(0), vec![1], n).unwrap();
        pdt.delete(Rid::new(5), n).unwrap();
        pdt.modify(Rid::new(2), 0, 9, n).unwrap();
        let s = pdt.stats();
        assert_eq!(s.inserts, 1);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.modifies, 1);
        assert!(s.nodes >= 2);
    }
}
