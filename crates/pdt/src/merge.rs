//! PDT merging: applying differential updates to a stable tuple stream.
//!
//! Every scan (classical `Scan` or `CScan`) reads *stale* columnar data and
//! merges the PDT on the fly so that its output corresponds to the latest
//! visible database state. The merge is driven by RID ranges: the scan knows
//! which visible rows it must produce, and pulls the stable tuples it needs
//! from the buffer manager.
//!
//! Out-of-order chunk delivery (Cooperative Scans) means the merge must be
//! **re-initializable at an arbitrary position**: whenever a new chunk
//! arrives, the proper starting position inside the PDT has to be found
//! again. [`MergeCursor::seek`] implements exactly that.

use scanshare_common::{Rid, TupleRange};
use scanshare_storage::datagen::Value;

use crate::pdt::Pdt;

/// A source of stable (on-disk, pre-update) tuple values.
pub trait StableSource {
    /// Number of stable tuples available.
    fn stable_tuples(&self) -> u64;
    /// The value of column `col` for stable tuple `sid`.
    fn value(&mut self, col: usize, sid: u64) -> Value;
}

impl<S: StableSource + ?Sized> StableSource for &mut S {
    fn stable_tuples(&self) -> u64 {
        (**self).stable_tuples()
    }
    fn value(&mut self, col: usize, sid: u64) -> Value {
        (**self).value(col, sid)
    }
}

/// A [`StableSource`] backed by in-memory column slices (column-major).
#[derive(Debug, Clone)]
pub struct SliceSource {
    columns: Vec<Vec<Value>>,
}

impl SliceSource {
    /// Creates a source from column-major data. All columns must have equal
    /// length.
    pub fn new(columns: Vec<Vec<Value>>) -> Self {
        if let Some(first) = columns.first() {
            assert!(
                columns.iter().all(|c| c.len() == first.len()),
                "column lengths must match"
            );
        }
        Self { columns }
    }

    /// Builds a source with `columns` generated as `f(col, sid)`.
    pub fn generate(column_count: usize, tuples: u64, f: impl Fn(usize, u64) -> Value) -> Self {
        Self::new(
            (0..column_count)
                .map(|c| (0..tuples).map(|s| f(c, s)).collect())
                .collect(),
        )
    }
}

impl StableSource for SliceSource {
    fn stable_tuples(&self) -> u64 {
        self.columns.first().map(|c| c.len() as u64).unwrap_or(0)
    }

    fn value(&mut self, col: usize, sid: u64) -> Value {
        self.columns[col][sid as usize]
    }
}

/// A restartable cursor producing the merged (visible) tuple stream for a
/// RID range, projected onto a set of columns.
#[derive(Debug)]
pub struct MergeCursor<'a, S> {
    pdt: &'a Pdt,
    source: S,
    columns: Vec<usize>,
    next_rid: u64,
    end_rid: u64,
    current_sid: u64,
    offset: usize,
}

impl<'a, S: StableSource> MergeCursor<'a, S> {
    /// Creates a cursor over the visible rows in `rid_range`.
    pub fn new(pdt: &'a Pdt, source: S, columns: Vec<usize>, rid_range: TupleRange) -> Self {
        let mut cursor = Self {
            pdt,
            source,
            columns,
            next_rid: 0,
            end_rid: 0,
            current_sid: 0,
            offset: 0,
        };
        cursor.seek_range(rid_range);
        cursor
    }

    /// Re-initializes the cursor at a new RID range. This is the operation a
    /// CScan performs whenever ABM delivers the next (out-of-order) chunk.
    pub fn seek_range(&mut self, rid_range: TupleRange) {
        let visible = self.pdt.visible_count(self.source.stable_tuples());
        let clamped = rid_range.intersect(&TupleRange::new(0, visible));
        self.next_rid = clamped.start;
        self.end_rid = clamped.end;
        self.seek(Rid::new(clamped.start));
    }

    /// Positions the internal PDT state at `rid` (without changing the end of
    /// the current range).
    pub fn seek(&mut self, rid: Rid) {
        let stable = self.source.stable_tuples();
        let (sid, offset) = if rid.raw() >= self.pdt.visible_count(stable) {
            (stable, self.pdt.node_inserts(stable))
        } else {
            self.pdt_locate(rid)
        };
        self.next_rid = rid.raw();
        self.current_sid = sid;
        self.offset = offset;
    }

    fn pdt_locate(&self, rid: Rid) -> (u64, usize) {
        // `locate` is crate-private on Pdt; re-derive it from the public API
        // to keep the cursor independent of internals.
        let stable = self.source.stable_tuples();
        let sid = self.pdt.rid_to_sid(rid, stable);
        let low = self.pdt.sid_to_rid_low(sid);
        (sid.raw(), (rid.raw() - low.raw()) as usize)
    }

    /// The RID the next produced row will have.
    pub fn position(&self) -> Rid {
        Rid::new(self.next_rid)
    }

    /// Whether the cursor has produced every row of its range.
    pub fn is_exhausted(&self) -> bool {
        self.next_rid >= self.end_rid
    }

    /// Produces the next visible row (projected on the cursor's columns), or
    /// `None` when the range is exhausted.
    pub fn next_row(&mut self) -> Option<Vec<Value>> {
        if self.is_exhausted() {
            return None;
        }
        let stable = self.source.stable_tuples();
        loop {
            let inserts = self.pdt.node_inserts(self.current_sid);
            if self.offset < inserts {
                let row = self
                    .pdt
                    .node_insert_row(self.current_sid, self.offset)
                    .expect("offset < inserts");
                let projected = self.columns.iter().map(|&c| row[c]).collect();
                self.offset += 1;
                self.next_rid += 1;
                return Some(projected);
            }
            let deleted = self.pdt.node_deleted(self.current_sid);
            if self.offset == inserts && !deleted && self.current_sid < stable {
                let sid = self.current_sid;
                let projected = self
                    .columns
                    .iter()
                    .map(|&c| {
                        self.pdt
                            .node_modify(sid, c)
                            .unwrap_or_else(|| self.source.value(c, sid))
                    })
                    .collect();
                self.offset += 1;
                self.next_rid += 1;
                return Some(projected);
            }
            // Move to the next anchor position.
            if self.current_sid >= stable {
                // Past the end: nothing left (should not happen when the
                // range was clamped, but guard anyway).
                self.next_rid = self.end_rid;
                return None;
            }
            self.current_sid += 1;
            self.offset = 0;
        }
    }

    /// Produces every remaining row of the range.
    pub fn collect_rows(&mut self) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        while let Some(row) = self.next_row() {
            out.push(row);
        }
        out
    }
}

/// Convenience: merges `pdt` over `source` for `rid_range`, projecting
/// `columns`, and returns all rows.
pub fn merge_range<S: StableSource>(
    pdt: &Pdt,
    source: S,
    columns: &[usize],
    rid_range: TupleRange,
) -> Vec<Vec<Value>> {
    MergeCursor::new(pdt, source, columns.to_vec(), rid_range).collect_rows()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::Sid;

    fn source(n: u64) -> SliceSource {
        SliceSource::generate(2, n, |c, s| (s * 10 + c as u64) as Value)
    }

    #[test]
    fn identity_merge_returns_stable_rows() {
        let pdt = Pdt::new(2);
        let rows = merge_range(&pdt, source(5), &[0, 1], TupleRange::new(0, 5));
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[3], vec![30, 31]);
    }

    #[test]
    fn projection_selects_columns_in_order() {
        let pdt = Pdt::new(2);
        let rows = merge_range(&pdt, source(3), &[1], TupleRange::new(1, 3));
        assert_eq!(rows, vec![vec![11], vec![21]]);
        let rows = merge_range(&pdt, source(3), &[1, 0], TupleRange::new(0, 1));
        assert_eq!(rows, vec![vec![1, 0]]);
    }

    #[test]
    fn merge_applies_inserts_deletes_modifies() {
        let n = 6;
        let mut pdt = Pdt::new(2);
        pdt.delete(Rid::new(0), n).unwrap();
        pdt.insert(Rid::new(2), vec![-1, -2], n).unwrap();
        pdt.modify(Rid::new(0), 1, 999, n).unwrap();
        // Visible stream: [10,999], [20,21], [-1,-2], [30,31], [40,41], [50,51]
        let rows = merge_range(&pdt, source(n), &[0, 1], TupleRange::new(0, 6));
        assert_eq!(
            rows,
            vec![
                vec![10, 999],
                vec![20, 21],
                vec![-1, -2],
                vec![30, 31],
                vec![40, 41],
                vec![50, 51]
            ]
        );
    }

    #[test]
    fn range_is_clamped_to_visible_count() {
        let mut pdt = Pdt::new(2);
        pdt.delete(Rid::new(0), 4).unwrap();
        let rows = merge_range(&pdt, source(4), &[0], TupleRange::new(0, 100));
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn partial_ranges_match_full_merge() {
        let n = 20;
        let mut pdt = Pdt::new(2);
        for i in 0..5 {
            pdt.insert(Rid::new(i * 3), vec![-(i as Value), 0], n)
                .unwrap();
        }
        pdt.delete(Rid::new(10), n).unwrap();
        pdt.modify(Rid::new(7), 0, 777, n).unwrap();

        let full = merge_range(&pdt, source(n), &[0, 1], TupleRange::new(0, 100));
        let visible = pdt.visible_count(n);
        assert_eq!(full.len() as u64, visible);

        // Any split into sub-ranges must reproduce the same stream.
        for split in 1..visible {
            let mut parts = merge_range(&pdt, source(n), &[0, 1], TupleRange::new(0, split));
            parts.extend(merge_range(
                &pdt,
                source(n),
                &[0, 1],
                TupleRange::new(split, visible),
            ));
            assert_eq!(parts, full, "split at {split}");
        }
    }

    #[test]
    fn cursor_can_be_reused_across_chunks_out_of_order() {
        let n = 12;
        let mut pdt = Pdt::new(2);
        pdt.insert(Rid::new(4), vec![100, 200], n).unwrap();
        pdt.delete(Rid::new(9), n).unwrap();
        let full = merge_range(&pdt, source(n), &[0], TupleRange::new(0, 12));

        // Deliver "chunks" out of order: [8,12), [0,4), [4,8).
        let mut cursor = MergeCursor::new(&pdt, source(n), vec![0], TupleRange::new(8, 12));
        let mut c3 = cursor.collect_rows();
        cursor.seek_range(TupleRange::new(0, 4));
        let c1 = cursor.collect_rows();
        cursor.seek_range(TupleRange::new(4, 8));
        let c2 = cursor.collect_rows();

        let mut reassembled = c1;
        reassembled.extend(c2);
        reassembled.append(&mut c3);
        assert_eq!(reassembled, full);
    }

    #[test]
    fn seek_tracks_position() {
        let n = 5;
        let pdt = Pdt::new(2);
        let mut cursor = MergeCursor::new(&pdt, source(n), vec![0], TupleRange::new(0, 5));
        assert_eq!(cursor.position(), Rid::new(0));
        cursor.next_row().unwrap();
        assert_eq!(cursor.position(), Rid::new(1));
        assert!(!cursor.is_exhausted());
        cursor.collect_rows();
        assert!(cursor.is_exhausted());
        assert!(cursor.next_row().is_none());
    }

    #[test]
    fn translation_and_merge_are_consistent_for_chunk_boundaries() {
        // Mimic what a CScan does: translate a SID chunk boundary to a RID
        // range (low/high) and merge that range.
        let n = 30;
        let mut pdt = Pdt::new(2);
        for i in 0..6 {
            pdt.insert(Rid::new(i * 4 + 1), vec![1000 + i as Value, 0], n)
                .unwrap();
        }
        for _ in 0..3 {
            pdt.delete(Rid::new(12), n).unwrap();
        }
        let chunk = TupleRange::new(10, 20); // SID space
        let lo = pdt.sid_to_rid_low(Sid::new(chunk.start)).raw();
        let hi = pdt.sid_to_rid_high(Sid::new(chunk.end - 1)).raw() + 1;
        let rows = merge_range(&pdt, source(n), &[0], TupleRange::new(lo, hi));
        // The produced rows must be exactly the slice [lo, hi) of the full
        // visible stream.
        let full = merge_range(&pdt, source(n), &[0], TupleRange::new(0, 100));
        assert_eq!(rows.as_slice(), &full[lo as usize..hi as usize]);
    }

    #[test]
    fn generate_and_slice_source_agree() {
        let mut s = SliceSource::new(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(s.stable_tuples(), 3);
        assert_eq!(s.value(1, 2), 6);
        let empty = SliceSource::new(vec![]);
        assert_eq!(empty.stable_tuples(), 0);
    }

    #[test]
    #[should_panic(expected = "column lengths")]
    fn slice_source_rejects_ragged_columns() {
        let _ = SliceSource::new(vec![vec![1], vec![2, 3]]);
    }
}
