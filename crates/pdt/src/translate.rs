//! RID ↔ SID range translation shared by every executor.
//!
//! A scan is planned in visible-row (RID) space but reads stable storage in
//! SID space; the two are related through a table's PDT (Figure 4 of the
//! paper). Both the execution engine's `ScanOperator` and the discrete-event
//! simulator translate with **these** functions, so the page sets the two
//! executors touch for the same visible range are identical — the property
//! the engine==simulator I/O-parity tests and the `fig_updates` bench gate
//! rely on once tables carry differential updates.

use scanshare_common::{RangeList, Rid, Sid, TupleRange};

use crate::pdt::Pdt;

/// Converts a visible-row (RID) range into the stable (SID) ranges that must
/// be read from storage, using the PDT's positional translation. The result
/// is empty when the range covers no stable data (an empty range, or rows
/// that exist only as PDT inserts).
pub fn rid_range_to_sid_ranges(pdt: &Pdt, rid_range: &TupleRange, stable_tuples: u64) -> RangeList {
    if rid_range.is_empty() {
        return RangeList::new();
    }
    let lo = pdt.rid_to_sid(Rid::new(rid_range.start), stable_tuples);
    let hi = pdt.rid_to_sid(Rid::new(rid_range.end - 1), stable_tuples);
    let hi_sid = (hi.raw() + 1).min(stable_tuples);
    RangeList::single(lo.raw().min(stable_tuples), hi_sid.max(lo.raw()))
}

/// Translates a chunk's SID range into the widest RID range it can produce,
/// using `SIDtoRIDlow` for the lower bound and `SIDtoRIDhigh` for the upper
/// bound (Section 2.1).
pub fn sid_range_to_rid_range(pdt: &Pdt, sid_range: &TupleRange) -> TupleRange {
    if sid_range.is_empty() {
        return TupleRange::new(0, 0);
    }
    let lo = pdt.sid_to_rid_low(Sid::new(sid_range.start)).raw();
    let hi = pdt.sid_to_rid_high(Sid::new(sid_range.end - 1)).raw() + 1;
    TupleRange::new(lo, hi.max(lo))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rid_sid_translation_round_trips_through_a_pdt() {
        let mut pdt = Pdt::new(1);
        pdt.delete(Rid::new(0), 100).unwrap();
        pdt.insert(Rid::new(10), vec![1], 100).unwrap();
        // Visible rows 0..99 map to stable tuples 1..99 (tuple 0 is deleted,
        // the inserted row is anchored inside the range).
        let sids = rid_range_to_sid_ranges(&pdt, &TupleRange::new(0, 99), 100);
        assert_eq!(sids.ranges(), &[TupleRange::new(1, 99)]);
        let rids = sid_range_to_rid_range(&pdt, &TupleRange::new(0, 100));
        assert_eq!(rids, TupleRange::new(0, 100));
        assert!(rid_range_to_sid_ranges(&pdt, &TupleRange::new(5, 5), 100).is_empty());
        assert!(sid_range_to_rid_range(&pdt, &TupleRange::new(5, 5)).is_empty());
    }

    #[test]
    fn empty_pdt_translation_is_the_identity() {
        let pdt = Pdt::new(2);
        let sids = rid_range_to_sid_ranges(&pdt, &TupleRange::new(10, 40), 100);
        assert_eq!(sids.ranges(), &[TupleRange::new(10, 40)]);
        assert_eq!(
            sid_range_to_rid_range(&pdt, &TupleRange::new(10, 40)),
            TupleRange::new(10, 40)
        );
    }

    #[test]
    fn trailing_inserts_map_to_no_stable_data() {
        let mut pdt = Pdt::new(1);
        pdt.insert(Rid::new(10), vec![7], 10).unwrap();
        // The trailing insert occupies RID 10 but is anchored past the last
        // stable tuple: the translated range is clamped to the stable count.
        let sids = rid_range_to_sid_ranges(&pdt, &TupleRange::new(10, 11), 10);
        assert!(sids.ranges().iter().all(|r| r.end <= 10));
    }
}
