//! Positional Delta Trees (PDTs): in-memory differential updates.
//!
//! Vectorwise never updates columnar data in place: modifications are kept in
//! memory in *Positional Delta Trees* and merged into the stable tuple stream
//! on the fly during scans (Héman et al., SIGMOD 2010; Section 2.1 of the
//! reproduced paper). This crate implements:
//!
//! * the [`Pdt`] structure itself — insert / delete / modify actions keyed by
//!   stable position, with the running-delta bookkeeping needed for
//!   positional translation;
//! * the translation functions of Figure 4: [`Pdt::rid_to_sid`],
//!   [`Pdt::sid_to_rid_low`] and [`Pdt::sid_to_rid_high`];
//! * [`merge`]: a re-initializable merge cursor that applies PDT changes to a
//!   stable tuple stream for an arbitrary RID range — the operation a CScan
//!   must restart for every out-of-order chunk it receives;
//! * [`stack`]: stacked PDTs ("differences on differences") used for snapshot
//!   isolation, with composition (propagation) of layers and the
//!   transaction primitives the engine's snapshot-isolated update path is
//!   built on ([`PdtStack::absorb_top`], [`PdtStack::split_upper`]);
//! * [`translate`]: RID ↔ SID range translation shared by the execution
//!   engine and the discrete-event simulator, so both executors read the
//!   same pages for the same visible range;
//! * [`checkpoint`]: materializing stable storage + PDT into a brand-new
//!   table image, as performed by a PDT checkpoint (Figure 7);
//! * [`wal`]: the write-ahead-log codec for committed write sets — a
//!   commit is logged as the serialized private PDT per table, so replay
//!   is the same [`PdtStack::absorb_top`] a live commit performs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod merge;
pub mod pdt;
pub mod stack;
pub mod translate;
pub mod wal;

pub use crate::pdt::{Pdt, UpdateStats};
pub use checkpoint::{checkpoint_stack, checkpoint_table};
pub use merge::{MergeCursor, SliceSource, StableSource};
pub use stack::PdtStack;
pub use translate::{rid_range_to_sid_ranges, sid_range_to_rid_range};
pub use wal::{decode_commit, encode_commit, CommitTableRecord};
