//! Strongly-typed identifiers used across the workspace.
//!
//! Every entity that flows between the storage layer, the buffer manager and
//! the execution engine gets its own newtype so that, e.g., a [`PageId`]
//! can never be confused with a [`ChunkId`]. All identifiers are cheap
//! `Copy` types ordered by their numeric value.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $repr:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// Wraps a raw numeric value.
            #[inline]
            pub const fn new(raw: $repr) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric value.
            #[inline]
            pub const fn raw(self) -> $repr {
                self.0
            }

            /// Returns the identifier as a `usize`, convenient for indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $repr {
            fn from(id: $name) -> $repr {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifies a table in the catalog.
    TableId, "T", u32
);
define_id!(
    /// Identifies a column within the catalog (globally unique, not per-table).
    ColumnId, "C", u32
);
define_id!(
    /// Identifies a physical page of stable storage (globally unique).
    PageId, "P", u64
);
define_id!(
    /// Identifies a logical chunk: a fixed-size range of stable tuple ids
    /// (SIDs) of one table version. Chunks are the scheduling granularity of
    /// the Active Buffer Manager.
    ChunkId, "K", u32
);
define_id!(
    /// Identifies a registered scan (either a traditional `Scan` registered
    /// with PBM or a `CScan` registered with ABM).
    ScanId, "S", u64
);
define_id!(
    /// Identifies a query in a workload.
    QueryId, "Q", u64
);
define_id!(
    /// Identifies a storage snapshot (a versioned set of page references).
    SnapshotId, "V", u64
);
define_id!(
    /// Identifies a workload stream (a sequence of queries run back-to-back).
    StreamId, "W", u32
);

/// A monotonically increasing id generator usable for any of the identifier
/// types defined in this module.
#[derive(Debug, Default)]
pub struct IdGenerator {
    next: u64,
}

impl IdGenerator {
    /// Creates a generator that will hand out ids starting from zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a generator that starts from `first`.
    pub fn starting_at(first: u64) -> Self {
        Self { next: first }
    }

    /// Returns the next raw id.
    pub fn next_raw(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Returns the next id converted into the requested identifier type.
    pub fn next_id<T: From<u64>>(&mut self) -> T {
        T::from(self.next_raw())
    }

    /// Number of ids handed out so far.
    pub fn issued(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(TableId::new(3).to_string(), "T3");
        assert_eq!(PageId::new(42).to_string(), "P42");
        assert_eq!(ChunkId::new(7).to_string(), "K7");
        assert_eq!(ScanId::new(0).to_string(), "S0");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(PageId::new(1) < PageId::new(2));
        assert!(ChunkId::new(10) > ChunkId::new(9));
    }

    #[test]
    fn conversions_round_trip() {
        let id = ColumnId::from(9u32);
        let raw: u32 = id.into();
        assert_eq!(raw, 9);
        assert_eq!(id.index(), 9usize);
        assert_eq!(id.raw(), 9);
    }

    #[test]
    fn generator_is_monotonic() {
        let mut g = IdGenerator::new();
        let a: ScanId = g.next_id();
        let b: ScanId = g.next_id();
        assert_eq!(a, ScanId::new(0));
        assert_eq!(b, ScanId::new(1));
        assert_eq!(g.issued(), 2);
    }

    #[test]
    fn generator_starting_at_offset() {
        let mut g = IdGenerator::starting_at(100);
        let a: QueryId = g.next_id();
        assert_eq!(a, QueryId::new(100));
    }

    #[test]
    fn ids_are_hashable_and_usable_as_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(PageId::new(1), "one");
        m.insert(PageId::new(2), "two");
        assert_eq!(m[&PageId::new(1)], "one");
        assert_eq!(m.len(), 2);
    }
}
