//! Positional tuple identifiers: SIDs and RIDs.
//!
//! The paper (Section 2.1, Figure 4) distinguishes two positional spaces:
//!
//! * **SID** (*Stable ID*): a 0-based dense sequence enumerating tuples as
//!   they are stored in stable storage, i.e. *before* any differential
//!   updates are applied.
//! * **RID** (*Row ID*): a 0-based dense sequence enumerating the tuple
//!   stream visible to the query layer, i.e. *after* the Positional Delta
//!   Trees (PDTs) are merged in.
//!
//! SIDs and RIDs are deliberately different types so that the translation
//! functions in `scanshare-pdt` (`rid_to_sid`, `sid_to_rid_low`,
//! `sid_to_rid_high`) are the only way to move between the two spaces.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

macro_rules! define_pos {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// The zero position.
            pub const ZERO: Self = Self(0);
            /// The maximum representable position.
            pub const MAX: Self = Self(u64::MAX);

            /// Wraps a raw position.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw position.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the position as a `usize` (for indexing in-memory data).
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Saturating addition of a tuple count.
            #[inline]
            pub fn saturating_add(self, n: u64) -> Self {
                Self(self.0.saturating_add(n))
            }

            /// Checked subtraction, returning `None` on underflow.
            #[inline]
            pub fn checked_sub(self, n: u64) -> Option<Self> {
                self.0.checked_sub(n).map(Self)
            }

            /// Distance in tuples between `self` and an earlier position.
            ///
            /// # Panics
            /// Panics if `earlier > self`.
            #[inline]
            pub fn distance_from(self, earlier: Self) -> u64 {
                self.0
                    .checked_sub(earlier.0)
                    .expect("distance_from: earlier position is greater than self")
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(v: $name) -> u64 {
                v.0
            }
        }

        impl Add<u64> for $name {
            type Output = Self;
            fn add(self, rhs: u64) -> Self {
                Self(self.0 + rhs)
            }
        }

        impl AddAssign<u64> for $name {
            fn add_assign(&mut self, rhs: u64) {
                self.0 += rhs;
            }
        }

        impl Sub<u64> for $name {
            type Output = Self;
            fn sub(self, rhs: u64) -> Self {
                Self(self.0 - rhs)
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;
            fn sub(self, rhs: $name) -> u64 {
                self.0 - rhs.0
            }
        }
    };
}

define_pos!(
    /// Stable ID: position of a tuple in stable (on-disk) storage, before
    /// differential updates are applied.
    Sid, "sid:"
);
define_pos!(
    /// Row ID: position of a tuple in the update-merged stream visible to
    /// the query processing layer.
    Rid, "rid:"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_u64() {
        let s = Sid::new(10);
        assert_eq!(s + 5, Sid::new(15));
        assert_eq!(s - 3, Sid::new(7));
        assert_eq!(Sid::new(15) - Sid::new(10), 5);
        let mut r = Rid::new(0);
        r += 4;
        assert_eq!(r, Rid::new(4));
    }

    #[test]
    fn distance_from_counts_tuples() {
        assert_eq!(Rid::new(100).distance_from(Rid::new(40)), 60);
        assert_eq!(Sid::new(7).distance_from(Sid::new(7)), 0);
    }

    #[test]
    #[should_panic(expected = "distance_from")]
    fn distance_from_panics_on_inverted_order() {
        let _ = Sid::new(1).distance_from(Sid::new(2));
    }

    #[test]
    fn saturating_and_checked_ops() {
        assert_eq!(Sid::MAX.saturating_add(1), Sid::MAX);
        assert_eq!(Sid::ZERO.checked_sub(1), None);
        assert_eq!(Sid::new(5).checked_sub(2), Some(Sid::new(3)));
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(Sid::new(3).to_string(), "sid:3");
        assert_eq!(Rid::new(9).to_string(), "rid:9");
    }

    #[test]
    fn sid_and_rid_are_distinct_types() {
        // This is a compile-time property; here we just make sure conversions
        // go through u64 explicitly.
        let s = Sid::new(12);
        let r = Rid::new(u64::from(s));
        assert_eq!(r.raw(), 12);
    }
}
