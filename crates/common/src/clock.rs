//! Virtual time, bandwidth and the shared clock.
//!
//! Both the discrete-event simulator (`scanshare-sim`) and the execution
//! engine's cost accounting (`scanshare-exec`) run on *virtual time*: a
//! nanosecond counter that is advanced explicitly. This makes experiments
//! deterministic, independent of the host machine, and lets the benchmark
//! harness sweep I/O bandwidth from 200 MB/s to 2 GB/s exactly like the
//! paper does by throttling the storage layer.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A duration in virtual nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualDuration(pub u64);

impl VirtualDuration {
    /// Zero-length duration.
    pub const ZERO: Self = Self(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "duration must be finite and non-negative"
        );
        Self((s * 1e9).round() as u64)
    }

    /// Nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Millisecond count (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: Self) -> Self {
        Self(self.0.saturating_add(other.0))
    }

    /// Scales the duration by a factor.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor >= 0.0 && factor.is_finite());
        Self((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl std::ops::Add for VirtualDuration {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for VirtualDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for VirtualDuration {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl std::ops::Mul<u64> for VirtualDuration {
    type Output = Self;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl std::iter::Sum for VirtualDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

/// A point in virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualInstant(pub u64);

impl VirtualInstant {
    /// The simulation epoch.
    pub const EPOCH: Self = Self(0);

    /// Creates an instant from nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Instant advanced by `d`.
    pub fn after(self, d: VirtualDuration) -> Self {
        Self(self.0.saturating_add(d.0))
    }

    /// Duration elapsed since `earlier` (saturating at zero).
    pub fn since(self, earlier: VirtualInstant) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for VirtualInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", VirtualDuration(self.0))
    }
}

impl std::ops::Add<VirtualDuration> for VirtualInstant {
    type Output = Self;
    fn add(self, rhs: VirtualDuration) -> Self {
        self.after(rhs)
    }
}

/// I/O bandwidth, stored as bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// Creates a bandwidth from megabytes per second (decimal MB, as in the
    /// paper's "200MB/s to 2GB/s" sweep).
    pub fn from_mb_per_sec(mb: f64) -> Self {
        assert!(mb > 0.0 && mb.is_finite(), "bandwidth must be positive");
        Self {
            bytes_per_sec: mb * 1_000_000.0,
        }
    }

    /// Creates a bandwidth from gigabytes per second.
    pub fn from_gb_per_sec(gb: f64) -> Self {
        Self::from_mb_per_sec(gb * 1_000.0)
    }

    /// Creates a bandwidth from raw bytes per second.
    pub fn from_bytes_per_sec(bytes: f64) -> Self {
        assert!(
            bytes > 0.0 && bytes.is_finite(),
            "bandwidth must be positive"
        );
        Self {
            bytes_per_sec: bytes,
        }
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }

    /// Megabytes per second.
    pub fn mb_per_sec(self) -> f64 {
        self.bytes_per_sec / 1_000_000.0
    }

    /// Virtual time needed to transfer `bytes` at this bandwidth.
    pub fn transfer_time(self, bytes: u64) -> VirtualDuration {
        VirtualDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}MB/s", self.mb_per_sec())
    }
}

/// A shared, thread-safe virtual clock.
///
/// The clock only moves forward. The simulator advances it from its event
/// loop; the execution engine advances it as cost accounting for CPU work
/// and I/O waits.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_nanos: AtomicU64,
}

impl VirtualClock {
    /// Creates a clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a shared handle to a fresh clock.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualInstant {
        VirtualInstant(self.now_nanos.load(Ordering::Acquire))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: VirtualDuration) -> VirtualInstant {
        let new = self.now_nanos.fetch_add(d.0, Ordering::AcqRel) + d.0;
        VirtualInstant(new)
    }

    /// Moves the clock forward to `target` if it is in the future; the clock
    /// never moves backwards. Returns the resulting time.
    pub fn advance_to(&self, target: VirtualInstant) -> VirtualInstant {
        let mut cur = self.now_nanos.load(Ordering::Acquire);
        while cur < target.0 {
            match self.now_nanos.compare_exchange_weak(
                cur,
                target.0,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return target,
                Err(actual) => cur = actual,
            }
        }
        VirtualInstant(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_and_accessors() {
        assert_eq!(VirtualDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(VirtualDuration::from_secs(2).as_millis(), 2_000);
        assert!((VirtualDuration::from_secs_f64(0.5).as_secs_f64() - 0.5).abs() < 1e-9);
        assert_eq!(VirtualDuration::from_micros(5).as_nanos(), 5_000);
    }

    #[test]
    fn duration_arithmetic() {
        let a = VirtualDuration::from_millis(10);
        let b = VirtualDuration::from_millis(5);
        assert_eq!((a + b).as_millis(), 15);
        assert_eq!((a - b).as_millis(), 5);
        assert_eq!((b * 3).as_millis(), 15);
        assert_eq!(a.mul_f64(0.5).as_millis(), 5);
        let total: VirtualDuration = [a, b].into_iter().sum();
        assert_eq!(total.as_millis(), 15);
    }

    #[test]
    fn instant_ordering_and_since() {
        let t0 = VirtualInstant::EPOCH;
        let t1 = t0.after(VirtualDuration::from_secs(1));
        assert!(t1 > t0);
        assert_eq!(t1.since(t0), VirtualDuration::from_secs(1));
        assert_eq!(t0.since(t1), VirtualDuration::ZERO);
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::from_mb_per_sec(700.0);
        // 700 MB at 700 MB/s takes one second.
        let t = bw.transfer_time(700_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
        assert_eq!(Bandwidth::from_gb_per_sec(2.0).mb_per_sec(), 2_000.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bandwidth_rejects_zero() {
        let _ = Bandwidth::from_mb_per_sec(0.0);
    }

    #[test]
    fn clock_advances_monotonically() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), VirtualInstant::EPOCH);
        clock.advance(VirtualDuration::from_millis(5));
        assert_eq!(clock.now().as_nanos(), 5_000_000);
        // advance_to in the past is a no-op
        clock.advance_to(VirtualInstant::from_nanos(1));
        assert_eq!(clock.now().as_nanos(), 5_000_000);
        clock.advance_to(VirtualInstant::from_nanos(9_000_000));
        assert_eq!(clock.now().as_nanos(), 9_000_000);
    }

    #[test]
    fn clock_is_shareable_across_threads() {
        let clock = VirtualClock::shared();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = clock.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(VirtualDuration::from_nanos(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(clock.now().as_nanos(), 4_000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(VirtualDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(VirtualDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(VirtualDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(VirtualDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(Bandwidth::from_mb_per_sec(700.0).to_string(), "700MB/s");
    }
}
