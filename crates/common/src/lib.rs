//! Shared vocabulary types for the `scanshare` workspace.
//!
//! This crate defines the identifiers, positional types (SID/RID), tuple
//! ranges, the virtual clock used by the simulator and the execution engine,
//! bandwidth/latency modelling helpers, error types and the configuration
//! structs that are shared by every other crate in the workspace.
//!
//! The workspace reproduces the VLDB 2012 paper *"From Cooperative Scans to
//! Predictive Buffer Management"* (Świtakowski, Boncz, Żukowski). See the
//! repository-level `DESIGN.md` for the full system inventory.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod config;
pub mod error;
pub mod ids;
pub mod quantile;
pub mod range;
pub mod rid;
pub mod sync;

pub use clock::{Bandwidth, VirtualClock, VirtualDuration, VirtualInstant};
pub use config::{DeviceKind, PolicyKind, ScanShareConfig};
pub use error::{Error, Result};
pub use ids::{ChunkId, ColumnId, PageId, QueryId, ScanId, SnapshotId, StreamId, TableId};
pub use quantile::{nearest_rank, nearest_rank_unsorted};
pub use range::{RangeList, TupleRange};
pub use rid::{Rid, Sid};
