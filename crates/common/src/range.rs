//! Half-open tuple ranges and normalized range lists.
//!
//! Scans in the paper are *range scans*: a query registers the list of tuple
//! ranges it is going to read (either in RID space, at the query plan level,
//! or in SID space, at the storage level). [`TupleRange`] is a half-open
//! `[start, end)` interval over raw `u64` positions and [`RangeList`] is a
//! normalized (sorted, non-overlapping, non-adjacent) list of such ranges.
//!
//! [`TupleRange::split_even`] implements Equation (1) of the paper: the
//! static partitioning of a scanned range over `n` parallel threads.

use std::fmt;

/// A half-open interval `[start, end)` of tuple positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleRange {
    /// Inclusive start position.
    pub start: u64,
    /// Exclusive end position.
    pub end: u64,
}

impl TupleRange {
    /// Creates a new range. `start > end` is normalized to an empty range at
    /// `start`.
    pub fn new(start: u64, end: u64) -> Self {
        if end < start {
            Self { start, end: start }
        } else {
            Self { start, end }
        }
    }

    /// A range covering `[0, len)`.
    pub fn from_len(len: u64) -> Self {
        Self::new(0, len)
    }

    /// Number of tuples in the range.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range contains no tuples.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether `pos` falls inside the range.
    pub fn contains(&self, pos: u64) -> bool {
        pos >= self.start && pos < self.end
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains_range(&self, other: &TupleRange) -> bool {
        other.is_empty() || (other.start >= self.start && other.end <= self.end)
    }

    /// Intersection of two ranges (possibly empty).
    pub fn intersect(&self, other: &TupleRange) -> TupleRange {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        TupleRange::new(start, end.max(start))
    }

    /// Whether the two ranges share at least one tuple.
    pub fn overlaps(&self, other: &TupleRange) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Whether the two ranges are adjacent or overlapping (i.e. their union
    /// is a single range).
    pub fn touches(&self, other: &TupleRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Removes the part of `self` that lies before `cutoff`, returning the
    /// remainder (used to trim already-produced RID ranges, Section 2.1).
    pub fn trim_below(&self, cutoff: u64) -> TupleRange {
        TupleRange::new(self.start.max(cutoff), self.end.max(cutoff))
    }

    /// Splits the range into `n` near-equal contiguous sub-ranges following
    /// Equation (1) of the paper:
    ///
    /// `range [a..b)` becomes `range [a + (b-a)*i/n .. a + (b-a)*(i+1)/n)` for
    /// `i` in `0..n`.
    ///
    /// All sub-ranges are returned, including empty ones when `n > len`.
    pub fn split_even(&self, n: usize) -> Vec<TupleRange> {
        assert!(n > 0, "split_even requires at least one partition");
        let a = self.start;
        let len = self.len();
        (0..n as u64)
            .map(|i| {
                let lo = a + len * i / n as u64;
                let hi = a + len * (i + 1) / n as u64;
                TupleRange::new(lo, hi)
            })
            .collect()
    }
}

impl fmt::Display for TupleRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A normalized list of tuple ranges: sorted by start, non-overlapping and
/// non-adjacent (touching ranges are coalesced).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RangeList {
    ranges: Vec<TupleRange>,
}

impl RangeList {
    /// An empty range list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a normalized list from arbitrary ranges.
    pub fn from_ranges<I: IntoIterator<Item = TupleRange>>(ranges: I) -> Self {
        let mut list = Self::new();
        for r in ranges {
            list.add(r);
        }
        list
    }

    /// A list containing the single range `[start, end)`.
    pub fn single(start: u64, end: u64) -> Self {
        Self::from_ranges([TupleRange::new(start, end)])
    }

    /// Adds a range, keeping the list normalized.
    pub fn add(&mut self, range: TupleRange) {
        if range.is_empty() {
            return;
        }
        // Find insertion window of all ranges that touch the new one.
        let mut merged = range;
        let mut out = Vec::with_capacity(self.ranges.len() + 1);
        let mut inserted = false;
        for r in &self.ranges {
            if r.touches(&merged) {
                merged = TupleRange::new(merged.start.min(r.start), merged.end.max(r.end));
            } else if r.end < merged.start {
                out.push(*r);
            } else {
                if !inserted {
                    out.push(merged);
                    inserted = true;
                }
                out.push(*r);
            }
        }
        if !inserted {
            out.push(merged);
        }
        self.ranges = out;
    }

    /// Number of distinct ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the list contains no tuples.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total number of tuples covered.
    pub fn total_tuples(&self) -> u64 {
        self.ranges.iter().map(TupleRange::len).sum()
    }

    /// The ranges, sorted and non-overlapping.
    pub fn ranges(&self) -> &[TupleRange] {
        &self.ranges
    }

    /// Whether `pos` falls in any range of the list.
    pub fn contains(&self, pos: u64) -> bool {
        // Binary search on the start positions.
        self.ranges
            .binary_search_by(|r| {
                use std::cmp::Ordering;
                if pos < r.start {
                    Ordering::Greater
                } else if pos >= r.end {
                    Ordering::Less
                } else {
                    Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Intersects the list with a single range.
    pub fn intersect_range(&self, range: &TupleRange) -> RangeList {
        RangeList {
            ranges: self
                .ranges
                .iter()
                .map(|r| r.intersect(range))
                .filter(|r| !r.is_empty())
                .collect(),
        }
    }

    /// Intersects two range lists.
    pub fn intersect(&self, other: &RangeList) -> RangeList {
        let mut out = RangeList::new();
        for r in &other.ranges {
            for i in self.intersect_range(r).ranges {
                out.add(i);
            }
        }
        out
    }

    /// Union of two range lists.
    pub fn union(&self, other: &RangeList) -> RangeList {
        let mut out = self.clone();
        for r in &other.ranges {
            out.add(*r);
        }
        out
    }

    /// Removes every position covered by `other`, returning the remainder.
    /// Used to trim chunk-derived RID ranges against the rows a CScan has
    /// already produced (Section 2.1 of the paper).
    pub fn subtract(&self, other: &RangeList) -> RangeList {
        let mut out = RangeList::new();
        for r in &self.ranges {
            let mut start = r.start;
            for cut in &other.ranges {
                if cut.end <= start {
                    continue;
                }
                if cut.start >= r.end {
                    break;
                }
                if cut.start > start {
                    out.add(TupleRange::new(start, cut.start.min(r.end)));
                }
                start = start.max(cut.end);
                if start >= r.end {
                    break;
                }
            }
            if start < r.end {
                out.add(TupleRange::new(start, r.end));
            }
        }
        out
    }

    /// Iterates over every position covered by the list (use only for small
    /// lists, e.g. in tests).
    pub fn iter_positions(&self) -> impl Iterator<Item = u64> + '_ {
        self.ranges.iter().flat_map(|r| r.start..r.end)
    }

    /// Splits the covered tuples into `n` partitions of contiguous work,
    /// applying Equation (1) *per range* (this mirrors how Vectorwise splits
    /// the RID ranges handed to each parallel scan).
    pub fn split_even(&self, n: usize) -> Vec<RangeList> {
        assert!(n > 0);
        let mut parts = vec![RangeList::new(); n];
        for r in &self.ranges {
            for (i, sub) in r.split_even(n).into_iter().enumerate() {
                parts[i].add(sub);
            }
        }
        parts
    }
}

impl fmt::Display for RangeList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<TupleRange> for RangeList {
    fn from_iter<T: IntoIterator<Item = TupleRange>>(iter: T) -> Self {
        Self::from_ranges(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_len() {
        assert!(TupleRange::new(5, 5).is_empty());
        assert!(TupleRange::new(7, 3).is_empty());
        assert_eq!(TupleRange::new(2, 10).len(), 8);
    }

    #[test]
    fn contains_and_intersect() {
        let r = TupleRange::new(10, 20);
        assert!(r.contains(10));
        assert!(!r.contains(20));
        assert_eq!(
            r.intersect(&TupleRange::new(15, 30)),
            TupleRange::new(15, 20)
        );
        assert!(r.intersect(&TupleRange::new(20, 30)).is_empty());
        assert!(r.overlaps(&TupleRange::new(19, 21)));
        assert!(!r.overlaps(&TupleRange::new(20, 21)));
    }

    #[test]
    fn trim_below_cuts_prefix() {
        let r = TupleRange::new(10, 20);
        assert_eq!(r.trim_below(15), TupleRange::new(15, 20));
        assert_eq!(r.trim_below(5), r);
        assert!(r.trim_below(25).is_empty());
    }

    #[test]
    fn split_even_matches_equation_1() {
        // range [0, 1000) over 2 threads -> [0,500) and [500,1000)
        let parts = TupleRange::new(0, 1000).split_even(2);
        assert_eq!(
            parts,
            vec![TupleRange::new(0, 500), TupleRange::new(500, 1000)]
        );

        // Uneven split keeps full coverage without overlap.
        let parts = TupleRange::new(0, 10).split_even(3);
        assert_eq!(parts.iter().map(TupleRange::len).sum::<u64>(), 10);
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn split_even_with_more_parts_than_tuples() {
        let parts = TupleRange::new(0, 2).split_even(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(TupleRange::len).sum::<u64>(), 2);
    }

    #[test]
    #[should_panic]
    fn split_even_zero_parts_panics() {
        let _ = TupleRange::new(0, 10).split_even(0);
    }

    #[test]
    fn range_list_normalizes_overlaps_and_adjacency() {
        let list = RangeList::from_ranges([
            TupleRange::new(10, 20),
            TupleRange::new(0, 5),
            TupleRange::new(5, 10),
            TupleRange::new(18, 25),
        ]);
        assert_eq!(list.ranges(), &[TupleRange::new(0, 25)]);
        assert_eq!(list.total_tuples(), 25);
    }

    #[test]
    fn range_list_keeps_disjoint_ranges() {
        let list = RangeList::from_ranges([TupleRange::new(0, 5), TupleRange::new(10, 15)]);
        assert_eq!(list.range_count(), 2);
        assert!(list.contains(3));
        assert!(!list.contains(7));
        assert!(list.contains(14));
        assert!(!list.contains(15));
    }

    #[test]
    fn range_list_ignores_empty_ranges() {
        let mut list = RangeList::new();
        list.add(TupleRange::new(5, 5));
        assert!(list.is_empty());
    }

    #[test]
    fn intersect_and_union() {
        let a = RangeList::from_ranges([TupleRange::new(0, 10), TupleRange::new(20, 30)]);
        let b = RangeList::single(5, 25);
        let i = a.intersect(&b);
        assert_eq!(
            i.ranges(),
            &[TupleRange::new(5, 10), TupleRange::new(20, 25)]
        );
        let u = a.union(&b);
        assert_eq!(u.ranges(), &[TupleRange::new(0, 30)]);
    }

    #[test]
    fn subtract_removes_covered_positions() {
        let a = RangeList::single(0, 100);
        let b = RangeList::from_ranges([TupleRange::new(10, 20), TupleRange::new(50, 60)]);
        let d = a.subtract(&b);
        assert_eq!(
            d.ranges(),
            &[
                TupleRange::new(0, 10),
                TupleRange::new(20, 50),
                TupleRange::new(60, 100)
            ]
        );
        // Subtracting a superset leaves nothing.
        assert!(b.subtract(&a).is_empty());
        // Subtracting something disjoint leaves the original.
        assert_eq!(a.subtract(&RangeList::single(200, 300)), a);
        // Subtracting an empty list is the identity.
        assert_eq!(a.subtract(&RangeList::new()), a);
        // Partial overlap at both ends.
        let c = RangeList::single(40, 80);
        let d = c.subtract(&RangeList::from_ranges([
            TupleRange::new(0, 45),
            TupleRange::new(70, 200),
        ]));
        assert_eq!(d.ranges(), &[TupleRange::new(45, 70)]);
    }

    #[test]
    fn subtract_then_union_restores_whole_when_disjoint_parts() {
        let whole = RangeList::single(0, 1000);
        let part = RangeList::from_ranges([TupleRange::new(100, 300), TupleRange::new(700, 900)]);
        let rest = whole.subtract(&part);
        assert_eq!(rest.total_tuples() + part.total_tuples(), 1000);
        assert_eq!(rest.union(&part), whole);
        assert!(rest.intersect(&part).is_empty());
    }

    #[test]
    fn split_even_list_partitions_each_range() {
        let list = RangeList::from_ranges([TupleRange::new(0, 100), TupleRange::new(200, 300)]);
        let parts = list.split_even(2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].total_tuples(), 100);
        assert_eq!(parts[1].total_tuples(), 100);
        assert!(parts[0].contains(0));
        assert!(parts[0].contains(249));
        assert!(parts[1].contains(50));
        assert!(parts[1].contains(299));
    }

    #[test]
    fn iter_positions_enumerates_all() {
        let list = RangeList::from_ranges([TupleRange::new(0, 3), TupleRange::new(5, 7)]);
        let positions: Vec<u64> = list.iter_positions().collect();
        assert_eq!(positions, vec![0, 1, 2, 5, 6]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TupleRange::new(1, 4).to_string(), "[1, 4)");
        assert_eq!(RangeList::single(1, 4).to_string(), "{[1, 4)}");
    }
}
