//! Workspace-wide error type.
//!
//! The error enum is deliberately small: the storage, buffer-management and
//! execution crates all surface their failure modes through it so that the
//! public API of the facade crate (`scanshare`) exposes a single `Result`.

use std::fmt;

use crate::ids::{ChunkId, PageId, ScanId, SnapshotId, TableId};

/// Convenience alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced by the scanshare crates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A table id was not found in the catalog.
    UnknownTable(TableId),
    /// A column name was not found in a table.
    UnknownColumn {
        /// Table that was searched.
        table: TableId,
        /// The missing column name.
        column: String,
    },
    /// A page id was not present in stable storage.
    UnknownPage(PageId),
    /// A chunk id was not registered with the Active Buffer Manager.
    UnknownChunk(ChunkId),
    /// A scan id was not registered with the buffer manager.
    UnknownScan(ScanId),
    /// A snapshot id was not known to the storage layer.
    UnknownSnapshot(SnapshotId),
    /// The buffer pool cannot fit even the working set of a single operation.
    BufferPoolTooSmall {
        /// Configured capacity in pages.
        capacity_pages: usize,
        /// Pages that were required simultaneously.
        required_pages: usize,
    },
    /// A transaction conflict was detected (concurrent appends to the same
    /// table, only one of which may commit).
    TransactionConflict(String),
    /// A transaction was already committed or aborted.
    TransactionClosed,
    /// An update position was out of bounds for the visible table image.
    PositionOutOfBounds {
        /// The offending position (RID space).
        position: u64,
        /// Number of visible tuples.
        visible: u64,
    },
    /// A query plan was malformed (wrong arity, unknown columns, ...).
    InvalidPlan(String),
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// A Cooperative Scan is starved — nothing it needs is cached — but the
    /// ABM has nothing to load and no load is in flight, so the scan cannot
    /// make progress. A per-stream scheduling outcome (the workload driver
    /// reports it per stream instead of aborting the whole workload), not a
    /// workload-level failure.
    ScanStarved(ScanId),
    /// An operation is not supported in the current mode (e.g. out-of-order
    /// delivery requested from an in-order CScan).
    Unsupported(String),
    /// A real-device I/O operation failed (read error, short read after
    /// retries, worker pool shut down, ...). Carries the rendered OS error so
    /// the enum keeps its `Clone`/`Eq` derives. Stream-local: the workload
    /// driver reports it in `stream_errors` instead of aborting the workload.
    Io(String),
    /// The write-ahead log (or a recovery input derived from it) is
    /// corrupt beyond the torn tail that recovery silently truncates:
    /// a record whose checksum verifies but whose contents contradict
    /// the durable snapshot it would replay over.
    WalCorrupt(String),
    /// A verified WAL record references a table id that is absent from
    /// the recovered catalog. Surfaced as a typed error by
    /// `Engine::recover` instead of panicking during replay.
    WalUnknownTable(TableId),
    /// A wire-protocol violation on a serving-layer connection: a frame
    /// that cannot be decoded, an oversized length prefix, an unknown
    /// message kind, or a message arriving out of protocol order (e.g. a
    /// query before the handshake). The connection that produced it is
    /// closed; other connections and sessions are unaffected.
    Protocol(String),
    /// A typed error frame received from a serving-layer peer: the
    /// numeric protocol error code (see `scanshare-serve`'s `ErrorCode`)
    /// plus the human-readable message the server attached.
    Remote {
        /// The protocol error code from the wire.
        code: u16,
        /// The server's diagnostic message.
        message: String,
    },
    /// Internal invariant violation; indicates a bug in this library.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownTable(t) => write!(f, "unknown table {t}"),
            Error::UnknownColumn { table, column } => {
                write!(f, "unknown column {column:?} in table {table}")
            }
            Error::UnknownPage(p) => write!(f, "unknown page {p}"),
            Error::UnknownChunk(c) => write!(f, "unknown chunk {c}"),
            Error::UnknownScan(s) => write!(f, "unknown scan {s}"),
            Error::UnknownSnapshot(v) => write!(f, "unknown snapshot {v}"),
            Error::BufferPoolTooSmall {
                capacity_pages,
                required_pages,
            } => write!(
                f,
                "buffer pool of {capacity_pages} pages cannot hold the {required_pages} pages \
                 required by a single operation"
            ),
            Error::TransactionConflict(msg) => write!(f, "transaction conflict: {msg}"),
            Error::TransactionClosed => write!(f, "transaction is already committed or aborted"),
            Error::PositionOutOfBounds { position, visible } => write!(
                f,
                "position {position} is out of bounds for a table with {visible} visible tuples"
            ),
            Error::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::ScanStarved(s) => write!(
                f,
                "cooperative scan {s} is starved but the ABM has nothing to load"
            ),
            Error::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            Error::Io(msg) => write!(f, "I/O error: {msg}"),
            Error::WalCorrupt(msg) => write!(f, "write-ahead log corrupt: {msg}"),
            Error::WalUnknownTable(t) => write!(
                f,
                "write-ahead log references table {t} absent from the recovered catalog"
            ),
            Error::Protocol(msg) => write!(f, "wire protocol violation: {msg}"),
            Error::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Helper constructing an [`Error::Internal`] from anything printable.
    pub fn internal(msg: impl fmt::Display) -> Self {
        Error::Internal(msg.to_string())
    }

    /// Helper constructing an [`Error::InvalidConfig`].
    pub fn config(msg: impl fmt::Display) -> Self {
        Error::InvalidConfig(msg.to_string())
    }

    /// Helper constructing an [`Error::InvalidPlan`].
    pub fn plan(msg: impl fmt::Display) -> Self {
        Error::InvalidPlan(msg.to_string())
    }

    /// Helper constructing an [`Error::Io`] from anything printable
    /// (typically a `std::io::Error`).
    pub fn io(msg: impl fmt::Display) -> Self {
        Error::Io(msg.to_string())
    }

    /// Helper constructing an [`Error::Protocol`].
    pub fn protocol(msg: impl fmt::Display) -> Self {
        Error::Protocol(msg.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = Error::UnknownColumn {
            table: TableId::new(1),
            column: "l_extendedprice".into(),
        };
        assert!(e.to_string().contains("l_extendedprice"));
        assert!(e.to_string().contains("T1"));

        let e = Error::BufferPoolTooSmall {
            capacity_pages: 4,
            required_pages: 9,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn helpers_build_expected_variants() {
        assert!(matches!(Error::internal("x"), Error::Internal(_)));
        assert!(matches!(Error::config("x"), Error::InvalidConfig(_)));
        assert!(matches!(Error::plan("x"), Error::InvalidPlan(_)));
        assert!(matches!(Error::io("x"), Error::Io(_)));
    }

    #[test]
    fn io_errors_convert_and_render() {
        let os = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "short read");
        let e: Error = os.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("short read"));
    }

    #[test]
    fn scan_starved_names_the_scan() {
        let e = Error::ScanStarved(ScanId::new(3));
        assert!(e.to_string().contains("starved"));
        assert!(e.to_string().contains("S3"));
    }

    #[test]
    fn wal_errors_render() {
        let e = Error::WalCorrupt("record 3 body truncated".into());
        assert!(e.to_string().contains("write-ahead log"));
        assert!(e.to_string().contains("record 3"));

        let e = Error::WalUnknownTable(TableId::new(9));
        assert!(e.to_string().contains("T9"));
        assert!(e.to_string().contains("recovered catalog"));
    }

    #[test]
    fn serving_errors_render() {
        let e = Error::protocol("frame of 9 GiB exceeds the limit");
        assert!(e.to_string().contains("wire protocol"));
        assert!(e.to_string().contains("9 GiB"));

        let e = Error::Remote {
            code: 5,
            message: "admission queue full".into(),
        };
        assert!(e.to_string().contains("server error 5"));
        assert!(e.to_string().contains("admission queue full"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&Error::TransactionClosed);
    }
}
