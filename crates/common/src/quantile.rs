//! Nearest-rank quantiles — the one percentile implementation every report
//! in the workspace shares.
//!
//! Latency percentiles appear in three places: the workload driver's
//! `WorkloadReport` per-query latencies, the serving layer's load-generator
//! report, and the I/O device statistics.
//! They must agree on the math, and the math must be *pooled*: percentiles
//! are computed over the combined sample population, never by averaging
//! per-stream percentiles (averaging the p95 of each stream systematically
//! underestimates the tail whenever streams are skewed — the regression
//! test below demonstrates the failure mode).

/// The nearest-rank `q`-quantile (`0.0..=1.0`) of `sorted` ascending
/// samples: the smallest element such that at least `⌈q·n⌉` samples are
/// `<=` it. `None` when there are no samples; `q` is clamped to `0.0..=1.0`
/// and `q = 0.0` returns the smallest sample.
pub fn nearest_rank<T: Copy>(sorted: &[T], q: f64) -> Option<T> {
    let n = sorted.len();
    if n == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
    Some(sorted[rank - 1])
}

/// [`nearest_rank`] over unsorted samples (sorts a copy).
pub fn nearest_rank_unsorted<T: Copy + Ord>(samples: &[T], q: f64) -> Option<T> {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    nearest_rank(&sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_quantiles() {
        assert_eq!(nearest_rank::<u64>(&[], 0.5), None);
    }

    #[test]
    fn nearest_rank_basics() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&samples, 0.0), Some(1));
        assert_eq!(nearest_rank(&samples, 0.01), Some(1));
        assert_eq!(nearest_rank(&samples, 0.50), Some(50));
        assert_eq!(nearest_rank(&samples, 0.95), Some(95));
        assert_eq!(nearest_rank(&samples, 0.99), Some(99));
        assert_eq!(nearest_rank(&samples, 1.0), Some(100));
        // Out-of-range q is clamped, not an error.
        assert_eq!(nearest_rank(&samples, 7.0), Some(100));
        assert_eq!(nearest_rank(&samples, -1.0), Some(1));
    }

    #[test]
    fn single_sample_is_every_quantile() {
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(nearest_rank(&[42u64], q), Some(42));
        }
    }

    #[test]
    fn ceil_rank_matches_the_definition() {
        // 4 samples: p95 needs ⌈0.95·4⌉ = 4 samples ≤ it → the maximum.
        assert_eq!(nearest_rank(&[10u64, 20, 30, 40], 0.95), Some(40));
        // 20 samples: ⌈0.95·20⌉ = 19 → the 19th.
        let samples: Vec<u64> = (1..=20).collect();
        assert_eq!(nearest_rank(&samples, 0.95), Some(19));
    }

    #[test]
    fn unsorted_agrees_with_sorted() {
        let mut samples = vec![5u64, 1, 9, 3, 7, 2, 8, 4, 6, 10];
        assert_eq!(nearest_rank_unsorted(&samples, 0.9), Some(9));
        samples.sort_unstable();
        assert_eq!(nearest_rank(&samples, 0.9), Some(9));
    }

    /// The regression the shared helper guards against: percentiles must be
    /// pooled over all streams' samples, because averaging per-stream
    /// percentiles underestimates the tail. Ten streams, one of which is
    /// slow: the averaged p95 misses the real tail by an order of
    /// magnitude.
    #[test]
    fn pooled_tail_is_not_the_average_of_per_stream_tails() {
        // Nine fast streams (all samples 10ms) and one slow stream (all
        // samples 1000ms), 20 samples each.
        let fast = vec![10u64; 20];
        let slow = vec![1000u64; 20];
        let streams: Vec<&[u64]> = vec![
            &fast, &fast, &fast, &fast, &fast, &fast, &fast, &fast, &fast, &slow,
        ];

        let averaged_p95 = streams
            .iter()
            .map(|s| nearest_rank(s, 0.95).unwrap())
            .sum::<u64>() as f64
            / streams.len() as f64;

        let mut pooled: Vec<u64> = streams.iter().flat_map(|s| s.iter().copied()).collect();
        pooled.sort_unstable();
        let pooled_p95 = nearest_rank(&pooled, 0.95).unwrap();

        // 10% of all queries took 1000ms, so the true pooled p95 IS 1000ms.
        assert_eq!(pooled_p95, 1000);
        // The per-stream average says ~109ms — off by 9×.
        assert!((averaged_p95 - 109.0).abs() < 1e-9);
        assert!(pooled_p95 as f64 > 5.0 * averaged_p95);
    }
}
