//! Workspace-level configuration.
//!
//! [`ScanShareConfig`] captures the knobs that the paper's evaluation section
//! sweeps: buffer pool size, I/O bandwidth, chunk granularity and the CPU
//! processing rate that determines when a workload turns CPU-bound. Policy
//! specific tuning (PBM bucket layout, ABM relevance weights) lives next to
//! the policies in `scanshare-core`.

use std::path::PathBuf;

use crate::clock::Bandwidth;
use crate::error::{Error, Result};

/// Which concurrent-scan buffer-management policy to run.
///
/// These are exactly the four lines in every figure of the paper's
/// evaluation: traditional LRU buffering, Cooperative Scans, Predictive
/// Buffer Management and the OPT oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Traditional buffer management: scans issue page requests in order and
    /// the pool evicts the least-recently-used page.
    Lru,
    /// Cooperative Scans: an Active Buffer Manager takes over load/evict and
    /// chunk-dispatch decisions; CScan operators accept data out of order.
    CScan,
    /// Predictive Buffer Management: scans report progress, the pool evicts
    /// the page whose estimated next consumption is furthest in the future.
    Pbm,
    /// Belady's OPT replayed over a previously recorded page-reference trace;
    /// the theoretical lower bound for order-preserving policies.
    Opt,
}

impl PolicyKind {
    /// All policies, in the order the paper's figures list them.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Lru,
        PolicyKind::CScan,
        PolicyKind::Pbm,
        PolicyKind::Opt,
    ];

    /// Short lowercase name used in reports and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::CScan => "cscan",
            PolicyKind::Pbm => "pbm",
            PolicyKind::Opt => "opt",
        }
    }

    /// Parses a policy name (case-insensitive).
    pub fn parse(name: &str) -> Result<Self> {
        match name.to_ascii_lowercase().as_str() {
            "lru" => Ok(PolicyKind::Lru),
            "cscan" | "cscans" | "abm" => Ok(PolicyKind::CScan),
            "pbm" => Ok(PolicyKind::Pbm),
            "opt" | "belady" | "min" => Ok(PolicyKind::Opt),
            other => Err(Error::config(format!("unknown policy {other:?}"))),
        }
    }

    /// Whether the policy preserves the order of page references issued by
    /// scans (true for everything except Cooperative Scans).
    pub fn is_order_preserving(self) -> bool {
        !matches!(self, PolicyKind::CScan)
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        Self::parse(s)
    }
}

/// Which I/O device backs the engine's scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeviceKind {
    /// The discrete-event simulated device: bandwidth-limited FIFO in virtual
    /// time, perfectly deterministic. The default, and what every paper
    /// figure runs on.
    #[default]
    Sim,
    /// A real file-backed device: positional reads against on-disk column
    /// segment files off a fixed worker pool, measuring wall-clock latency.
    /// Requires the engine's `Storage` to have a file store attached (tables
    /// materialized to, or reopened from, a directory).
    File,
}

impl DeviceKind {
    /// Short lowercase name used in reports and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Sim => "sim",
            DeviceKind::File => "file",
        }
    }

    /// Parses a device name (case-insensitive).
    pub fn parse(name: &str) -> Result<Self> {
        match name.to_ascii_lowercase().as_str() {
            "sim" | "simulated" | "iosim" => Ok(DeviceKind::Sim),
            "file" | "disk" => Ok(DeviceKind::File),
            other => Err(Error::config(format!("unknown device {other:?}"))),
        }
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DeviceKind {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        Self::parse(s)
    }
}

/// Top-level configuration shared by the storage layer, the buffer manager,
/// the execution engine and the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanShareConfig {
    /// Size of a storage page in bytes. Vectorwise uses large pages; the
    /// default here is 256 KiB.
    pub page_size_bytes: u64,
    /// Number of consecutive tuples (SIDs) forming one chunk, the scheduling
    /// granularity of the Active Buffer Manager ("at least a few hundreds of
    /// thousands of tuples").
    pub chunk_tuples: u64,
    /// Capacity of the buffer pool in bytes.
    pub buffer_pool_bytes: u64,
    /// Simulated sequential bandwidth of the I/O subsystem.
    pub io_bandwidth: Bandwidth,
    /// Fixed per-request latency of the I/O subsystem (seek/queueing cost).
    pub io_latency_nanos: u64,
    /// How many tuples one core processes per second of CPU work for a
    /// typical scan-select-aggregate query. Determines when a configuration
    /// becomes CPU-bound.
    pub cpu_tuples_per_sec: u64,
    /// Maximum number of threads used per query by the parallel plans
    /// (the paper's experiments use 8).
    pub threads_per_query: usize,
    /// Which buffer-management policy to run.
    pub policy: PolicyKind,
    /// Size of the asynchronous prefetch window, in pages, maintained by the
    /// page-level backends: up to this many predicted-next pages are kept in
    /// flight on the I/O device ahead of the scan cursors, so transfers
    /// overlap with computation. `0` (the default) disables prefetching and
    /// reproduces the fully synchronous model of the paper's figures. Which
    /// pages get prefetched is decided by the replacement policy's
    /// `prefetch_hints` (PBM ranks by predicted next-consumption time, LRU
    /// falls back to sequential readahead).
    pub prefetch_pages: usize,
    /// Number of independently-locked shards the execution engine's buffer
    /// management is partitioned into. For the page-level policies this
    /// shards the pool's page table (residency, pinning, statistics); under
    /// Cooperative Scans it shards the ABM's chunk directory (per-scan
    /// progress and delivery) the same way. In both cases decisions stay
    /// *globally exact*: the replacement policy / relevance core observes
    /// the same event sequence it would see with a single shard, so hit
    /// counts and the total I/O volume are identical for every shard
    /// count — sharding changes contention, never decisions. `1` (the
    /// default) reproduces the fully serialized structures. The
    /// discrete-event simulator is single-threaded and ignores this knob.
    pub pool_shards: usize,
    /// Maximum number of ABM chunk loads the Cooperative Scans backend
    /// keeps in flight on the I/O device at once (the load scheduler's
    /// window). `1` (the default) reproduces the paper-faithful
    /// one-load-at-a-time model — load decisions are then byte-identical
    /// to the monolithic ABM's, which the simulator-parity tests rely on;
    /// larger windows pipeline several chunk transfers behind concurrent
    /// streams' consumption. Ignored by the page-level policies.
    pub cscan_load_window: usize,
    /// Name of a custom replacement policy registered with a
    /// `PolicyRegistry`, overriding the page-level policy that `policy`
    /// would select. The engine keeps `policy`'s family semantics (OPT trace
    /// recording stays on under `PolicyKind::Opt`); combining a custom
    /// policy with `PolicyKind::CScan` is rejected, as Cooperative Scans
    /// replace the page-level pool wholesale.
    pub custom_policy: Option<String>,
    /// Which I/O device backs the engine ([`DeviceKind::Sim`] by default).
    /// With [`DeviceKind::File`] the engine reads on-disk column segments
    /// through a worker pool and `io_bandwidth`/`io_latency_nanos` only seed
    /// the virtual-time mirror of measured wall latencies.
    pub device: DeviceKind,
    /// Number of worker threads the file device uses for positional reads.
    /// Ignored by the simulated device.
    pub io_workers: usize,
    /// Capacity of the file device's bounded submission queue; submitters
    /// block once this many requests are waiting. Ignored by the simulated
    /// device.
    pub io_queue_depth: usize,
    /// Ask the file device to open segments with `O_DIRECT`, bypassing the
    /// OS page cache (Linux only; falls back to buffered reads when the
    /// platform or alignment does not permit it). Ignored by the simulated
    /// device.
    pub o_direct: bool,
    /// Directory holding the engine's durable state: on-disk column
    /// segments, per-table manifests and the `wal.log` write-ahead log.
    /// `None` (the default) keeps commits memory-only, reproducing the
    /// pre-durability behaviour. When set, the engine materializes any
    /// table that has no durable image yet, logs every `Txn::commit`
    /// (and autocommit) to the WAL before acknowledging it, and brackets
    /// checkpoints with begin/end markers so `Engine::recover` can
    /// rebuild exactly the committed state after a crash.
    pub wal_dir: Option<PathBuf>,
    /// Group-commit window for the WAL: a commit's `fsync` is deferred
    /// until this many commit records have accumulated since the last
    /// sync (checkpoint markers always sync immediately). `1` (the
    /// default) makes every commit individually durable; larger values
    /// amortize the fsync over the window at the cost of losing up to
    /// `wal_group_commit - 1` most-recent commits on a crash — always a
    /// consistent prefix, never a torn state. Ignored without `wal_dir`.
    pub wal_group_commit: usize,
    /// Whether scans consult per-chunk min/max zone metadata to skip chunks
    /// their predicate disqualifies (data skipping). Pruning happens before
    /// the buffer-management backend sees the chunk list, so skipped chunks
    /// never register with the ABM's relevance machinery or PBM's
    /// consumption predictions. `true` (the default) is safe: a query
    /// without a predicate, or a scan over a table whose pending updates
    /// could change predicate outcomes, prunes nothing and behaves exactly
    /// as before.
    pub zone_maps: bool,
    /// Number of OS worker threads in the morsel-driven task scheduler that
    /// executes query sessions (the `WorkloadDriver` and the serving layer
    /// both run on it). Each logical session is a cooperative task that
    /// yields at scan batch boundaries, so thousands of concurrent sessions
    /// multiplex onto this many threads; per-query work is queued per task
    /// and idle workers steal from busy ones. The default (8) matches the
    /// paper's 8-thread evaluation host; `1` serializes every session onto
    /// one thread (useful for deterministic debugging — results are
    /// identical at any worker count).
    pub scheduler_workers: usize,
}

impl Default for ScanShareConfig {
    fn default() -> Self {
        Self {
            page_size_bytes: 256 * 1024,
            chunk_tuples: 262_144,
            buffer_pool_bytes: 512 * 1024 * 1024,
            io_bandwidth: Bandwidth::from_mb_per_sec(700.0),
            io_latency_nanos: 100_000, // 0.1 ms per request
            cpu_tuples_per_sec: 250_000_000,
            threads_per_query: 8,
            policy: PolicyKind::Pbm,
            prefetch_pages: 0,
            pool_shards: 1,
            cscan_load_window: 1,
            custom_policy: None,
            device: DeviceKind::Sim,
            io_workers: 4,
            io_queue_depth: 64,
            o_direct: false,
            wal_dir: None,
            wal_group_commit: 1,
            zone_maps: true,
            scheduler_workers: 8,
        }
    }
}

impl ScanShareConfig {
    /// Validates the configuration, returning a descriptive error for any
    /// nonsensical value.
    pub fn validate(&self) -> Result<()> {
        if self.page_size_bytes == 0 {
            return Err(Error::config("page_size_bytes must be positive"));
        }
        if self.chunk_tuples == 0 {
            return Err(Error::config("chunk_tuples must be positive"));
        }
        if self.buffer_pool_bytes < self.page_size_bytes {
            return Err(Error::config(
                "buffer_pool_bytes must hold at least one page",
            ));
        }
        if self.cpu_tuples_per_sec == 0 {
            return Err(Error::config("cpu_tuples_per_sec must be positive"));
        }
        if self.threads_per_query == 0 {
            return Err(Error::config("threads_per_query must be at least 1"));
        }
        if self.prefetch_pages > 0 && self.prefetch_pages as u64 >= self.buffer_pool_pages() as u64
        {
            return Err(Error::config(
                "prefetch_pages must be smaller than the buffer pool: the window only \
                 fills free capacity (prefetch never evicts), so a window at least as \
                 large as the pool can never be satisfied",
            ));
        }
        if self.pool_shards == 0 {
            return Err(Error::config("pool_shards must be at least 1"));
        }
        if self.cscan_load_window == 0 {
            return Err(Error::config("cscan_load_window must be at least 1"));
        }
        if self.custom_policy.is_some() && self.policy == PolicyKind::CScan {
            return Err(Error::config(
                "custom_policy selects a page-level replacement policy and cannot be \
                 combined with PolicyKind::CScan (the ABM replaces the pool wholesale)",
            ));
        }
        if self.io_workers == 0 {
            return Err(Error::config("io_workers must be at least 1"));
        }
        if self.io_queue_depth == 0 {
            return Err(Error::config("io_queue_depth must be at least 1"));
        }
        if self.wal_group_commit == 0 {
            return Err(Error::config("wal_group_commit must be at least 1"));
        }
        if self.scheduler_workers == 0 {
            return Err(Error::config("scheduler_workers must be at least 1"));
        }
        Ok(())
    }

    /// Buffer pool capacity expressed in whole pages.
    pub fn buffer_pool_pages(&self) -> usize {
        (self.buffer_pool_bytes / self.page_size_bytes) as usize
    }

    /// Returns a copy with a different buffer pool size.
    pub fn with_buffer_pool_bytes(mut self, bytes: u64) -> Self {
        self.buffer_pool_bytes = bytes;
        self
    }

    /// Returns a copy with a different I/O bandwidth.
    pub fn with_bandwidth(mut self, bw: Bandwidth) -> Self {
        self.io_bandwidth = bw;
        self
    }

    /// Returns a copy with a different policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with a different prefetch window (in pages); `0`
    /// disables prefetching.
    pub fn with_prefetch_pages(mut self, pages: usize) -> Self {
        self.prefetch_pages = pages;
        self
    }

    /// Returns a copy with a different buffer shard count (see
    /// [`ScanShareConfig::pool_shards`]); `1` restores the single-lock pool.
    pub fn with_pool_shards(mut self, shards: usize) -> Self {
        self.pool_shards = shards;
        self
    }

    /// Returns a copy with a different Cooperative Scans load window (see
    /// [`ScanShareConfig::cscan_load_window`]); `1` restores the
    /// one-load-at-a-time model.
    pub fn with_cscan_load_window(mut self, window: usize) -> Self {
        self.cscan_load_window = window;
        self
    }

    /// Returns a copy selecting a custom registered replacement policy.
    pub fn with_custom_policy(mut self, name: impl Into<String>) -> Self {
        self.custom_policy = Some(name.into());
        self
    }

    /// Returns a copy selecting a different I/O device (see
    /// [`ScanShareConfig::device`]).
    pub fn with_device(mut self, device: DeviceKind) -> Self {
        self.device = device;
        self
    }

    /// Returns a copy with a different file-device worker count.
    pub fn with_io_workers(mut self, workers: usize) -> Self {
        self.io_workers = workers;
        self
    }

    /// Returns a copy with a different file-device submission queue depth.
    pub fn with_io_queue_depth(mut self, depth: usize) -> Self {
        self.io_queue_depth = depth;
        self
    }

    /// Returns a copy toggling `O_DIRECT` for the file device.
    pub fn with_o_direct(mut self, enabled: bool) -> Self {
        self.o_direct = enabled;
        self
    }

    /// Returns a copy enabling durability: segments, manifests and the
    /// write-ahead log live under `dir` (see
    /// [`ScanShareConfig::wal_dir`]).
    pub fn with_wal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Returns a copy with a different group-commit window (see
    /// [`ScanShareConfig::wal_group_commit`]); `1` makes every commit
    /// individually durable.
    pub fn with_wal_group_commit(mut self, window: usize) -> Self {
        self.wal_group_commit = window;
        self
    }

    /// Returns a copy toggling zone-map data skipping (see
    /// [`ScanShareConfig::zone_maps`]); `false` restores full scans for
    /// every query.
    pub fn with_zone_maps(mut self, enabled: bool) -> Self {
        self.zone_maps = enabled;
        self
    }

    /// Returns a copy with a different task-scheduler worker pool size (see
    /// [`ScanShareConfig::scheduler_workers`]); `1` serializes every session
    /// onto one thread.
    pub fn with_scheduler_workers(mut self, workers: usize) -> Self {
        self.scheduler_workers = workers;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ScanShareConfig::default().validate().unwrap();
    }

    #[test]
    fn validation_rejects_zero_page_size() {
        let cfg = ScanShareConfig {
            page_size_bytes: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_tiny_buffer_pool() {
        let cfg = ScanShareConfig {
            buffer_pool_bytes: 10,
            page_size_bytes: 4096,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn buffer_pool_pages_is_floor_division() {
        let cfg = ScanShareConfig {
            page_size_bytes: 1000,
            buffer_pool_bytes: 2500,
            ..Default::default()
        };
        assert_eq!(cfg.buffer_pool_pages(), 2);
    }

    #[test]
    fn policy_parse_round_trips() {
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(p.name()).unwrap(), p);
        }
        assert_eq!(PolicyKind::parse("CScans").unwrap(), PolicyKind::CScan);
        assert_eq!(PolicyKind::parse("belady").unwrap(), PolicyKind::Opt);
        assert!(PolicyKind::parse("mru").is_err());
    }

    #[test]
    fn only_cscan_reorders_accesses() {
        assert!(PolicyKind::Lru.is_order_preserving());
        assert!(PolicyKind::Pbm.is_order_preserving());
        assert!(PolicyKind::Opt.is_order_preserving());
        assert!(!PolicyKind::CScan.is_order_preserving());
    }

    #[test]
    fn builder_helpers_modify_fields() {
        let cfg = ScanShareConfig::default()
            .with_policy(PolicyKind::Lru)
            .with_bandwidth(Bandwidth::from_mb_per_sec(200.0))
            .with_buffer_pool_bytes(1 << 20)
            .with_prefetch_pages(3)
            .with_pool_shards(4);
        assert_eq!(cfg.policy, PolicyKind::Lru);
        assert_eq!(cfg.buffer_pool_bytes, 1 << 20);
        assert_eq!(cfg.io_bandwidth.mb_per_sec(), 200.0);
        assert_eq!(cfg.prefetch_pages, 3);
        assert_eq!(cfg.pool_shards, 4);
        cfg.validate().unwrap();
    }

    #[test]
    fn cscan_load_window_defaults_to_one_and_zero_is_rejected() {
        assert_eq!(ScanShareConfig::default().cscan_load_window, 1);
        let bad = ScanShareConfig::default().with_cscan_load_window(0);
        assert!(bad.validate().is_err());
        ScanShareConfig::default()
            .with_cscan_load_window(8)
            .validate()
            .unwrap();
    }

    #[test]
    fn pool_shards_default_to_one_and_zero_is_rejected() {
        assert_eq!(ScanShareConfig::default().pool_shards, 1);
        let bad = ScanShareConfig::default().with_pool_shards(0);
        assert!(bad.validate().is_err());
        // Shard counts beyond the page count are pointless but harmless.
        ScanShareConfig::default()
            .with_pool_shards(1024)
            .validate()
            .unwrap();
    }

    #[test]
    fn device_kind_parses_and_defaults_to_sim() {
        assert_eq!(ScanShareConfig::default().device, DeviceKind::Sim);
        assert_eq!(DeviceKind::parse("sim").unwrap(), DeviceKind::Sim);
        assert_eq!(DeviceKind::parse("File").unwrap(), DeviceKind::File);
        assert_eq!(DeviceKind::parse("disk").unwrap(), DeviceKind::File);
        assert!(DeviceKind::parse("tape").is_err());
        assert_eq!(DeviceKind::File.to_string(), "file");
    }

    #[test]
    fn file_device_knobs_validate() {
        let cfg = ScanShareConfig::default()
            .with_device(DeviceKind::File)
            .with_io_workers(2)
            .with_io_queue_depth(8)
            .with_o_direct(true);
        cfg.validate().unwrap();
        assert!(ScanShareConfig::default()
            .with_io_workers(0)
            .validate()
            .is_err());
        assert!(ScanShareConfig::default()
            .with_io_queue_depth(0)
            .validate()
            .is_err());
    }

    #[test]
    fn wal_knobs_validate() {
        let cfg = ScanShareConfig::default();
        assert!(cfg.wal_dir.is_none());
        assert_eq!(cfg.wal_group_commit, 1);
        let cfg = cfg.with_wal_dir("/tmp/waltest").with_wal_group_commit(8);
        assert_eq!(
            cfg.wal_dir.as_deref(),
            Some(std::path::Path::new("/tmp/waltest"))
        );
        assert_eq!(cfg.wal_group_commit, 8);
        cfg.validate().unwrap();
        assert!(ScanShareConfig::default()
            .with_wal_group_commit(0)
            .validate()
            .is_err());
    }

    #[test]
    fn scheduler_workers_default_to_eight_and_zero_is_rejected() {
        assert_eq!(ScanShareConfig::default().scheduler_workers, 8);
        assert!(ScanShareConfig::default()
            .with_scheduler_workers(0)
            .validate()
            .is_err());
        let cfg = ScanShareConfig::default().with_scheduler_workers(2);
        assert_eq!(cfg.scheduler_workers, 2);
        cfg.validate().unwrap();
    }

    #[test]
    fn zone_maps_default_on_and_toggle_off() {
        let cfg = ScanShareConfig::default();
        assert!(cfg.zone_maps);
        let cfg = cfg.with_zone_maps(false);
        assert!(!cfg.zone_maps);
        cfg.validate().unwrap();
    }

    #[test]
    fn prefetch_window_must_fit_inside_the_pool() {
        let cfg = ScanShareConfig {
            page_size_bytes: 1024,
            buffer_pool_bytes: 4 * 1024, // 4 pages
            prefetch_pages: 4,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let ok = ScanShareConfig {
            prefetch_pages: 3,
            ..cfg
        };
        ok.validate().unwrap();
    }
}
