//! Minimal `parking_lot`-style synchronization primitives.
//!
//! Thin wrappers over [`std::sync`] locks whose `lock`/`read`/`write`
//! methods return guards directly instead of a poisoning `Result`. A
//! poisoned lock (a thread panicked while holding it) is recovered rather
//! than propagated: the protected state is plain data whose invariants are
//! re-established on the next operation, and the workspace must stay free of
//! external dependencies.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poisoning error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value without locking
    /// (possible because `&mut self` guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` never return poisoning
/// errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_unwraps() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_locks_are_recovered() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let c = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = c.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
