//! Workload generators for the scanshare experiments.
//!
//! Two workloads reproduce the paper's evaluation section:
//!
//! * [`microbench`] — the scan-sharing microbenchmarks of the original
//!   Cooperative Scans paper: streams of TPC-H Q1/Q6-style range scans over
//!   the `lineitem` table, each covering 1 %, 10 %, 50 % or 100 % of the
//!   table starting at a random position;
//! * [`tpch`] — a TPC-H-like throughput run: eight tables with 61 columns of
//!   realistic relative sizes, and the scan access patterns (tables, columns
//!   and selectivities) of the 22 queries, permuted per stream as `qgen`
//!   does.
//!
//! Workloads are expressed as [`spec::WorkloadSpec`]: a set of streams, each
//! a sequence of [`spec::QuerySpec`]s describing which table ranges and
//! columns a query scans and how CPU-intensive it is. The discrete-event
//! simulator in `scanshare-sim` executes these specs against any of the
//! buffer-management policies.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod microbench;
pub mod skipping;
pub mod spec;
pub mod tpch;

pub use microbench::MicrobenchConfig;
pub use skipping::SkippingConfig;
pub use spec::{
    JoinSpec, QuerySpec, ScanSpec, StreamSpec, UpdateMix, UpdateOp, UpdateOpGen, UpdateStreamSpec,
    WorkloadSpec,
};
pub use tpch::TpchConfig;
