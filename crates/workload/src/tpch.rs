//! A TPC-H-like throughput workload.
//!
//! The paper's second experiment is the TPC-H throughput run at scale factor
//! 30: eight tables, 61 columns, 22 queries of varying complexity executed by
//! several concurrent streams, each stream running its own permutation of the
//! query set (as produced by `qgen`).
//!
//! This module reproduces the *scan footprint* of that workload: the schema
//! (tables, column counts and realistic compressed column widths, realistic
//! relative table sizes) and, for every query, which tables and columns it
//! scans, which fraction of each table it touches and how CPU-intensive it
//! is. Reproducing query *answers* is not needed for buffer-management
//! experiments — only the access pattern matters — but the schema is created
//! with data generators so the execution engine can also run real queries
//! against it at small scale.

use scanshare_common::{RangeList, Result, TableId, TupleRange};
use scanshare_storage::column::{ColumnSpec, ColumnType};
use scanshare_storage::datagen::{splitmix64, DataGen};
use scanshare_storage::storage::Storage;
use scanshare_storage::table::TableSpec;

use crate::spec::{QuerySpec, ScanSpec, StreamSpec, WorkloadSpec};

/// Configuration of the TPC-H-like workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TpchConfig {
    /// Number of concurrent streams (the paper runs up to 24).
    pub streams: usize,
    /// Tuples in the `lineitem` table; all other table sizes are derived with
    /// the TPC-H ratios (SF30 corresponds to 180 M lineitem tuples).
    pub lineitem_tuples: u64,
    /// RNG seed for range placement and stream permutations.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        Self {
            streams: 8,
            lineitem_tuples: 1_200_000,
            seed: 0x7c9,
        }
    }
}

impl TpchConfig {
    /// A reduced configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            streams: 2,
            lineitem_tuples: 60_000,
            seed: 3,
        }
    }

    /// Returns a copy with a different stream count (Figure 16 sweep).
    pub fn with_streams(mut self, streams: usize) -> Self {
        self.streams = streams;
        self
    }
}

/// The eight TPC-H tables in a fixed order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpchTable {
    /// The fact table.
    Lineitem,
    /// Orders.
    Orders,
    /// Part-supplier bridge.
    Partsupp,
    /// Parts.
    Part,
    /// Customers.
    Customer,
    /// Suppliers.
    Supplier,
    /// Nations.
    Nation,
    /// Regions.
    Region,
}

impl TpchTable {
    /// All tables, in creation order.
    pub const ALL: [TpchTable; 8] = [
        TpchTable::Lineitem,
        TpchTable::Orders,
        TpchTable::Partsupp,
        TpchTable::Part,
        TpchTable::Customer,
        TpchTable::Supplier,
        TpchTable::Nation,
        TpchTable::Region,
    ];

    /// Table name.
    pub fn name(self) -> &'static str {
        match self {
            TpchTable::Lineitem => "lineitem",
            TpchTable::Orders => "orders",
            TpchTable::Partsupp => "partsupp",
            TpchTable::Part => "part",
            TpchTable::Customer => "customer",
            TpchTable::Supplier => "supplier",
            TpchTable::Nation => "nation",
            TpchTable::Region => "region",
        }
    }

    /// Tuple count relative to `lineitem` (TPC-H cardinality ratios).
    pub fn tuples(self, lineitem_tuples: u64) -> u64 {
        match self {
            TpchTable::Lineitem => lineitem_tuples,
            TpchTable::Orders => lineitem_tuples / 4,
            TpchTable::Partsupp => lineitem_tuples * 2 / 15,
            TpchTable::Part => lineitem_tuples / 30,
            TpchTable::Customer => lineitem_tuples / 40,
            TpchTable::Supplier => (lineitem_tuples / 600).max(10),
            TpchTable::Nation => 25,
            TpchTable::Region => 5,
        }
    }

    /// Number of columns (sums to 61 across the schema, like TPC-H).
    pub fn column_count(self) -> usize {
        match self {
            TpchTable::Lineitem => 16,
            TpchTable::Orders => 9,
            TpchTable::Partsupp => 5,
            TpchTable::Part => 9,
            TpchTable::Customer => 8,
            TpchTable::Supplier => 7,
            TpchTable::Nation => 4,
            TpchTable::Region => 3,
        }
    }

    /// Builds the table spec with per-column compressed widths that roughly
    /// follow the mix of keys, measures, dates, flags and strings of the real
    /// schema.
    pub fn spec(self, lineitem_tuples: u64) -> TableSpec {
        let tuples = self.tuples(lineitem_tuples);
        let columns = (0..self.column_count())
            .map(|i| {
                // A rough but heterogeneous width model: keys 4 B, measures
                // 2-4 B, dates 2 B, flags < 1 B, comment-like strings wide.
                let (ty, width) = match i % 6 {
                    0 => (ColumnType::Int64, 4.0),
                    1 => (ColumnType::Decimal, 4.0),
                    2 => (ColumnType::Decimal, 2.0),
                    3 => (ColumnType::Date, 2.0),
                    4 => (ColumnType::Dict { cardinality: 8 }, 0.5),
                    _ => (ColumnType::Varchar { avg_len: 12 }, 12.0),
                };
                ColumnSpec::with_width(format!("{}_c{i}", self.name(),), ty, width)
            })
            .collect();
        TableSpec::new(self.name(), columns, tuples)
    }

    /// Data generators for the spec.
    pub fn generators(self) -> Vec<DataGen> {
        (0..self.column_count())
            .map(|i| match i % 6 {
                0 => DataGen::Sequential { start: 0, step: 1 },
                1 => DataGen::Uniform {
                    min: 100,
                    max: 100_000,
                },
                2 => DataGen::Uniform { min: 0, max: 100 },
                3 => DataGen::Cyclic {
                    period: 2526,
                    min: 8000,
                    max: 10_500,
                },
                4 => DataGen::Cyclic {
                    period: 8,
                    min: 0,
                    max: 7,
                },
                _ => DataGen::Uniform {
                    min: 0,
                    max: 1 << 20,
                },
            })
            .collect()
    }
}

/// One table access of a query template.
#[derive(Debug, Clone, Copy)]
struct Access {
    table: TpchTable,
    /// How many of the table's columns the query reads.
    columns: usize,
    /// Fraction of the table scanned (restricted by date ranges / MinMax
    /// indexes in the real system).
    fraction: f64,
}

/// Scan-footprint templates of the 22 TPC-H queries: which tables they scan,
/// how many columns, which fraction of the table, and a CPU-intensity factor
/// relative to a plain scan-aggregate query.
fn query_templates() -> Vec<(&'static str, Vec<Access>, f64)> {
    use TpchTable::*;
    let a = |table, columns, fraction| Access {
        table,
        columns,
        fraction,
    };
    vec![
        ("Q01", vec![a(Lineitem, 7, 0.98)], 2.2),
        (
            "Q02",
            vec![
                a(Part, 5, 1.0),
                a(Partsupp, 4, 1.0),
                a(Supplier, 5, 1.0),
                a(Nation, 2, 1.0),
                a(Region, 2, 1.0),
            ],
            1.6,
        ),
        (
            "Q03",
            vec![a(Customer, 3, 1.0), a(Orders, 5, 0.5), a(Lineitem, 4, 0.55)],
            1.8,
        ),
        ("Q04", vec![a(Orders, 4, 0.1), a(Lineitem, 3, 0.12)], 1.4),
        (
            "Q05",
            vec![
                a(Customer, 3, 1.0),
                a(Orders, 3, 0.15),
                a(Lineitem, 4, 0.3),
                a(Supplier, 3, 1.0),
                a(Nation, 3, 1.0),
                a(Region, 2, 1.0),
            ],
            1.9,
        ),
        ("Q06", vec![a(Lineitem, 4, 0.15)], 1.0),
        (
            "Q07",
            vec![
                a(Supplier, 3, 1.0),
                a(Lineitem, 5, 0.3),
                a(Orders, 2, 1.0),
                a(Customer, 2, 1.0),
                a(Nation, 2, 1.0),
            ],
            2.0,
        ),
        (
            "Q08",
            vec![
                a(Part, 3, 1.0),
                a(Supplier, 2, 1.0),
                a(Lineitem, 5, 0.3),
                a(Orders, 3, 0.3),
                a(Customer, 2, 1.0),
                a(Nation, 2, 1.0),
                a(Region, 2, 1.0),
            ],
            2.1,
        ),
        (
            "Q09",
            vec![
                a(Part, 3, 1.0),
                a(Supplier, 2, 1.0),
                a(Lineitem, 6, 1.0),
                a(Partsupp, 3, 1.0),
                a(Orders, 2, 1.0),
                a(Nation, 2, 1.0),
            ],
            2.5,
        ),
        (
            "Q10",
            vec![
                a(Customer, 6, 1.0),
                a(Orders, 4, 0.04),
                a(Lineitem, 4, 0.06),
                a(Nation, 2, 1.0),
            ],
            1.7,
        ),
        (
            "Q11",
            vec![a(Partsupp, 4, 1.0), a(Supplier, 3, 1.0), a(Nation, 2, 1.0)],
            1.3,
        ),
        ("Q12", vec![a(Orders, 3, 1.0), a(Lineitem, 5, 0.17)], 1.4),
        ("Q13", vec![a(Customer, 2, 1.0), a(Orders, 3, 1.0)], 1.8),
        ("Q14", vec![a(Lineitem, 4, 0.013), a(Part, 3, 1.0)], 1.2),
        ("Q15", vec![a(Lineitem, 4, 0.04), a(Supplier, 4, 1.0)], 1.3),
        (
            "Q16",
            vec![a(Partsupp, 3, 1.0), a(Part, 4, 1.0), a(Supplier, 2, 1.0)],
            1.5,
        ),
        ("Q17", vec![a(Lineitem, 3, 1.0), a(Part, 3, 0.01)], 1.6),
        (
            "Q18",
            vec![a(Customer, 2, 1.0), a(Orders, 4, 1.0), a(Lineitem, 3, 1.0)],
            2.3,
        ),
        ("Q19", vec![a(Lineitem, 6, 0.02), a(Part, 4, 0.02)], 1.2),
        (
            "Q20",
            vec![
                a(Supplier, 3, 1.0),
                a(Nation, 2, 1.0),
                a(Partsupp, 3, 1.0),
                a(Part, 2, 0.01),
                a(Lineitem, 4, 0.04),
            ],
            1.5,
        ),
        (
            "Q21",
            vec![
                a(Supplier, 3, 1.0),
                a(Lineitem, 4, 1.0),
                a(Orders, 2, 1.0),
                a(Nation, 2, 1.0),
            ],
            2.4,
        ),
        ("Q22", vec![a(Customer, 3, 1.0), a(Orders, 2, 1.0)], 1.3),
    ]
}

/// The catalog created by [`setup_tables`].
#[derive(Debug, Clone)]
pub struct TpchTables {
    ids: Vec<TableId>,
}

impl TpchTables {
    /// The id of a table.
    pub fn id(&self, table: TpchTable) -> TableId {
        self.ids[TpchTable::ALL
            .iter()
            .position(|&t| t == table)
            .expect("known table")]
    }

    /// All table ids.
    pub fn all(&self) -> &[TableId] {
        &self.ids
    }
}

/// Creates the eight TPC-H-like tables in `storage`.
pub fn setup_tables(storage: &std::sync::Arc<Storage>, config: &TpchConfig) -> Result<TpchTables> {
    let mut ids = Vec::with_capacity(8);
    for table in TpchTable::ALL {
        let id = storage
            .create_table_with_data(table.spec(config.lineitem_tuples), table.generators())?;
        ids.push(id);
    }
    Ok(TpchTables { ids })
}

/// Generates the throughput workload: `streams` streams, each running its own
/// permutation of the 22 query templates.
pub fn generate(config: &TpchConfig, tables: &TpchTables) -> WorkloadSpec {
    let templates = query_templates();
    let mut rng = config.seed | 1;
    let mut next = |limit: u64| -> u64 {
        rng = splitmix64(rng);
        if limit == 0 {
            0
        } else {
            rng % limit
        }
    };

    let streams = (0..config.streams)
        .map(|s| {
            // Permute the query order per stream, like qgen's throughput run.
            let mut order: Vec<usize> = (0..templates.len()).collect();
            for i in (1..order.len()).rev() {
                let j = next(i as u64 + 1) as usize;
                order.swap(i, j);
            }
            let queries = order
                .iter()
                .map(|&qi| {
                    let (label, accesses, cpu_factor) = &templates[qi];
                    let scans = accesses
                        .iter()
                        .map(|access| {
                            let tuples = access.table.tuples(config.lineitem_tuples);
                            let span = ((tuples as f64 * access.fraction) as u64).clamp(1, tuples);
                            let start = next(tuples.saturating_sub(span).max(1));
                            ScanSpec {
                                table: tables.id(access.table),
                                columns: (0..access.columns.min(access.table.column_count()))
                                    .collect(),
                                ranges: RangeList::from_ranges([TupleRange::new(
                                    start,
                                    (start + span).min(tuples),
                                )]),
                                predicate: None,
                            }
                        })
                        .collect();
                    QuerySpec {
                        label: format!("{label}#{s}"),
                        scans,
                        cpu_factor: *cpu_factor,
                        join: None,
                    }
                })
                .collect();
            StreamSpec {
                label: format!("tpch-stream-{s}"),
                queries,
            }
        })
        .collect();

    WorkloadSpec::read_only(
        format!("tpch-throughput-{}streams", config.streams),
        streams,
    )
}

/// Convenience: creates the storage, the schema and the workload in one call.
pub fn build(
    config: &TpchConfig,
    page_size_bytes: u64,
    chunk_tuples: u64,
) -> Result<(std::sync::Arc<Storage>, TpchTables, WorkloadSpec)> {
    let storage = Storage::with_seed(page_size_bytes, chunk_tuples, config.seed);
    let tables = setup_tables(&storage, config)?;
    let workload = generate(config, &tables);
    Ok((storage, tables, workload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_eight_tables_and_61_columns() {
        let total: usize = TpchTable::ALL.iter().map(|t| t.column_count()).sum();
        assert_eq!(total, 61);
        assert_eq!(TpchTable::ALL.len(), 8);
        for table in TpchTable::ALL {
            let spec = table.spec(600_000);
            spec.validate().unwrap();
            assert_eq!(spec.columns.len(), table.column_count());
            assert_eq!(table.generators().len(), table.column_count());
        }
    }

    #[test]
    fn table_sizes_follow_tpch_ratios() {
        let li = 6_000_000;
        assert_eq!(TpchTable::Orders.tuples(li), 1_500_000);
        assert_eq!(TpchTable::Partsupp.tuples(li), 800_000);
        assert_eq!(TpchTable::Part.tuples(li), 200_000);
        assert_eq!(TpchTable::Customer.tuples(li), 150_000);
        assert_eq!(TpchTable::Supplier.tuples(li), 10_000);
        assert_eq!(TpchTable::Nation.tuples(li), 25);
        assert_eq!(TpchTable::Region.tuples(li), 5);
    }

    #[test]
    fn workload_runs_22_queries_per_stream() {
        let config = TpchConfig::tiny();
        let (_storage, _tables, workload) = build(&config, 64 * 1024, 10_000).unwrap();
        assert_eq!(workload.stream_count(), 2);
        for stream in &workload.streams {
            assert_eq!(stream.queries.len(), 22);
        }
        // Streams run different permutations.
        let order_a: Vec<&str> = workload.streams[0]
            .queries
            .iter()
            .map(|q| q.label.split('#').next().unwrap())
            .collect();
        let order_b: Vec<&str> = workload.streams[1]
            .queries
            .iter()
            .map(|q| q.label.split('#').next().unwrap())
            .collect();
        assert_ne!(order_a, order_b);
        // ... but the same set of queries.
        let mut sa = order_a.clone();
        let mut sb = order_b.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb);
    }

    #[test]
    fn scans_stay_within_their_tables() {
        let config = TpchConfig::tiny();
        let (storage, _tables, workload) = build(&config, 64 * 1024, 10_000).unwrap();
        for stream in &workload.streams {
            for query in &stream.queries {
                assert!(!query.scans.is_empty());
                assert!(query.cpu_factor >= 1.0);
                for scan in &query.scans {
                    let table = storage.table(scan.table).unwrap();
                    let tuples = table.spec.base_tuples;
                    for range in scan.ranges.ranges() {
                        assert!(range.end <= tuples, "{}: range beyond table", query.label);
                    }
                    for &col in &scan.columns {
                        assert!(col < table.spec.columns.len());
                    }
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = TpchConfig::tiny();
        let (_s1, _t1, w1) = build(&config, 64 * 1024, 10_000).unwrap();
        let (_s2, _t2, w2) = build(&config, 64 * 1024, 10_000).unwrap();
        assert_eq!(w1, w2);
    }

    #[test]
    fn lineitem_dominates_the_scanned_volume() {
        let config = TpchConfig::tiny();
        let (_storage, tables, workload) = build(&config, 64 * 1024, 10_000).unwrap();
        let lineitem = tables.id(TpchTable::Lineitem);
        let total = workload.total_tuples();
        let lineitem_tuples: u64 = workload
            .streams
            .iter()
            .flat_map(|s| &s.queries)
            .flat_map(|q| &q.scans)
            .filter(|s| s.table == lineitem)
            .map(|s| s.total_tuples())
            .sum();
        assert!(
            lineitem_tuples * 2 > total,
            "lineitem should dominate the workload"
        );
    }
}
