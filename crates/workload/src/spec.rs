//! Workload specification types.
//!
//! A [`WorkloadSpec`] is a declarative description — concurrent
//! [`StreamSpec`]s of [`QuerySpec`]s, each a sequence of [`ScanSpec`]s,
//! optionally mixed with [`UpdateStreamSpec`]s of differential updates —
//! with **two** executors:
//!
//! * the discrete-event simulator (`scanshare-sim`), which models the
//!   workload in virtual time and regenerates the paper's figures;
//! * the execution engine's `WorkloadDriver` (`scanshare-exec`), which runs
//!   the same spec against a live `Engine` — one real thread per stream,
//!   queries lowered onto the builder `Query` API — and reports wall-clock
//!   throughput, latency percentiles and buffer/I/O statistics.
//!
//! The two agree on I/O volume for the same spec and configuration
//! (`tests/simulator_vs_engine.rs` asserts it), so specs serve both as
//! figure inputs and as engine throughput workloads.
//!
//! # Mixed read/write workloads
//!
//! A workload with a non-empty [`WorkloadSpec::update_streams`] executes in
//! **rounds** in both executors: at each round barrier every update stream
//! applies [`UpdateStreamSpec::ops_per_round`] generated operations as one
//! snapshot-isolated transaction (and optionally checkpoints the table),
//! then every read stream runs its next query concurrently. The barrier
//! makes the sequence of (update batch, checkpoint, scan registration)
//! events identical in the multi-threaded engine and the single-threaded
//! simulator, which is what lets the `fig_updates` bench gate exact
//! engine == simulator I/O parity while updates and checkpoints churn the
//! table underneath the scans. Operations come from the deterministic
//! [`UpdateOpGen`], seeded per stream, so both executors generate the
//! byte-identical operation sequence.

use scanshare_common::{RangeList, TableId};
use scanshare_storage::datagen::splitmix64;
use scanshare_storage::zone::ZonePredicate;

/// One range scan performed by a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanSpec {
    /// The scanned table.
    pub table: TableId,
    /// Column indices (within the table spec) the scan reads.
    pub columns: Vec<usize>,
    /// Tuple ranges (SID space) the scan covers.
    pub ranges: RangeList,
    /// Optional row-level predicate (the column index is **table**-relative,
    /// like [`ScanSpec::columns`], and must name a scanned column). Both
    /// executors apply it to every produced row, and — when zone maps are
    /// enabled — use it to skip chunks whose min/max metadata proves no row
    /// can match.
    pub predicate: Option<ZonePredicate>,
}

impl ScanSpec {
    /// Total tuples the scan covers (before any predicate filtering).
    pub fn total_tuples(&self) -> u64 {
        self.ranges.total_tuples()
    }
}

/// A broadcast hash join between the first two scans of a query.
///
/// By convention `scans[0]` is the **build** side: it is scanned in full
/// and hashed before any probe I/O starts. `scans[1]` is the **probe**
/// side, streamed through the normal shared-scan machinery (so the probe
/// scan still registers with the buffer manager, shares pages and prunes
/// via zone maps). Column indices are projection-relative: they index into
/// the respective scan's `columns` list, not the table spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinSpec {
    /// Probe-side join key: index into `scans[1].columns`.
    pub left_col: usize,
    /// Build-side join key: index into `scans[0].columns`.
    pub right_col: usize,
}

/// One query of a workload stream.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Human-readable label ("Q01", "micro-q6-50%", ...).
    pub label: String,
    /// The scans the query performs (executed one after another; for join
    /// queries `scans[0]` is the build side and `scans[1]` the probe side).
    pub scans: Vec<ScanSpec>,
    /// CPU cost multiplier relative to the baseline tuple-processing rate
    /// (1.0 = a simple scan-select-aggregate; complex TPC-H queries are
    /// higher).
    pub cpu_factor: f64,
    /// Optional broadcast hash join between `scans[0]` (build) and
    /// `scans[1]` (probe). `None` keeps the query a plain multi-scan
    /// aggregation.
    pub join: Option<JoinSpec>,
}

impl QuerySpec {
    /// Total tuples the query scans across all of its scans.
    pub fn total_tuples(&self) -> u64 {
        self.scans.iter().map(ScanSpec::total_tuples).sum()
    }
}

/// A stream: a sequence of queries executed back to back by one client.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// Stream label.
    pub label: String,
    /// Queries in execution order.
    pub queries: Vec<QuerySpec>,
}

/// Relative weights of the three update kinds in an update stream's mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateMix {
    /// Weight of row inserts.
    pub inserts: u32,
    /// Weight of row deletes.
    pub deletes: u32,
    /// Weight of single-column modifications.
    pub modifies: u32,
}

impl UpdateMix {
    /// Equal parts inserts, deletes and modifications.
    pub fn balanced() -> Self {
        Self {
            inserts: 1,
            deletes: 1,
            modifies: 1,
        }
    }

    /// Modification-heavy mix (the common OLTP-on-OLAP trickle pattern).
    pub fn mostly_modifies() -> Self {
        Self {
            inserts: 1,
            deletes: 1,
            modifies: 6,
        }
    }

    fn total(&self) -> u64 {
        (self.inserts as u64 + self.deletes as u64 + self.modifies as u64).max(1)
    }
}

/// One update stream of a mixed read/write workload: a client that applies
/// batches of differential updates to a table between query rounds,
/// optionally checkpointing periodically. See the [module docs](self) for
/// the round-barrier execution model shared by the engine and the
/// simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStreamSpec {
    /// Stream label used in reports.
    pub label: String,
    /// The updated table.
    pub table: TableId,
    /// Update operations applied (as one transaction) at every round
    /// barrier — the workload's "update rate" knob. `0` makes the stream a
    /// checkpoint-only stream.
    pub ops_per_round: u64,
    /// Relative weights of inserts / deletes / modifications.
    pub mix: UpdateMix,
    /// Checkpoint the table after every `n`-th round's updates (`None`
    /// never checkpoints; the PDTs then grow for the whole run).
    pub checkpoint_every: Option<u64>,
    /// Seed of the deterministic operation generator.
    pub seed: u64,
}

impl UpdateStreamSpec {
    /// The stream's deterministic operation generator, positioned at the
    /// first operation. Both executors create one per stream and pull
    /// exactly [`UpdateStreamSpec::ops_per_round`] operations per round, so
    /// they apply the byte-identical update sequence.
    pub fn ops(&self) -> UpdateOpGen {
        UpdateOpGen {
            state: self.seed | 1,
            mix: self.mix,
        }
    }

    /// Whether the stream checkpoints its table at the end of (0-based)
    /// round `round`'s update batch.
    pub fn checkpoint_due(&self, round: usize) -> bool {
        matches!(self.checkpoint_every, Some(n) if n > 0 && (round as u64 + 1) % n == 0)
    }
}

/// One generated update operation. Positions are in the table's visible-row
/// (RID) space at the time the operation is applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert a full row at visible position `rid`.
    Insert {
        /// Insert position (`0..=visible_rows`).
        rid: u64,
        /// One value per table column.
        row: Vec<i64>,
    },
    /// Delete the visible row at `rid`.
    Delete {
        /// Deleted position (`0..visible_rows`).
        rid: u64,
    },
    /// Overwrite one column of the visible row at `rid`.
    Modify {
        /// Modified position (`0..visible_rows`).
        rid: u64,
        /// Column index within the table spec.
        col: usize,
        /// The new value.
        value: i64,
    },
}

/// Deterministic update-operation generator (a `splitmix64` stream seeded
/// from the [`UpdateStreamSpec`]). The generator is fed the table's current
/// visible row count per operation, so positions are always valid for the
/// state the operation is applied to.
#[derive(Debug, Clone)]
pub struct UpdateOpGen {
    state: u64,
    mix: UpdateMix,
}

impl UpdateOpGen {
    fn next_raw(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// Generates the next operation against a table with `visible_rows`
    /// visible rows and `columns` columns. An empty table always receives
    /// an insert (deletes and modifications would have no target).
    pub fn next_op(&mut self, visible_rows: u64, columns: usize) -> UpdateOp {
        let columns = columns.max(1);
        let pick = self.next_raw() % self.mix.total();
        let value = (self.next_raw() % 1_000_000) as i64;
        if visible_rows == 0 || pick < self.mix.inserts as u64 {
            let rid = self.next_raw() % (visible_rows + 1);
            return UpdateOp::Insert {
                rid,
                row: (0..columns).map(|c| value + c as i64).collect(),
            };
        }
        let rid = self.next_raw() % visible_rows;
        if pick < self.mix.inserts as u64 + self.mix.deletes as u64 {
            UpdateOp::Delete { rid }
        } else {
            UpdateOp::Modify {
                rid,
                col: (self.next_raw() % columns as u64) as usize,
                value,
            }
        }
    }
}

/// A complete workload: several concurrent read streams, optionally mixed
/// with update streams (see the [module docs](self) for the mixed
/// execution model).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name used in reports.
    pub name: String,
    /// Concurrent streams.
    pub streams: Vec<StreamSpec>,
    /// Update streams applied at round barriers (empty for the read-only
    /// workloads of the paper's figures).
    pub update_streams: Vec<UpdateStreamSpec>,
}

impl WorkloadSpec {
    /// A read-only workload (the paper's figures).
    pub fn read_only(name: impl Into<String>, streams: Vec<StreamSpec>) -> Self {
        Self {
            name: name.into(),
            streams,
            update_streams: Vec::new(),
        }
    }

    /// Adds an update stream, turning the workload into a round-barriered
    /// mixed read/write workload.
    pub fn with_update_stream(mut self, spec: UpdateStreamSpec) -> Self {
        self.update_streams.push(spec);
        self
    }

    /// Whether any update stream is configured.
    pub fn has_updates(&self) -> bool {
        !self.update_streams.is_empty()
    }

    /// Number of rounds a mixed workload executes: one per query of the
    /// longest read stream (streams with fewer queries idle in later
    /// rounds, while updates keep applying).
    pub fn rounds(&self) -> usize {
        self.streams
            .iter()
            .map(|s| s.queries.len())
            .max()
            .unwrap_or(0)
    }

    /// Number of streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Total number of queries across all streams.
    pub fn query_count(&self) -> usize {
        self.streams.iter().map(|s| s.queries.len()).sum()
    }

    /// Total tuples scanned by the whole workload.
    pub fn total_tuples(&self) -> u64 {
        self.streams
            .iter()
            .flat_map(|s| &s.queries)
            .map(QuerySpec::total_tuples)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::TupleRange;

    #[test]
    fn totals_add_up() {
        let scan = ScanSpec {
            table: TableId::new(0),
            columns: vec![0, 1],
            ranges: RangeList::from_ranges([TupleRange::new(0, 100), TupleRange::new(200, 250)]),
            predicate: None,
        };
        assert_eq!(scan.total_tuples(), 150);
        let query = QuerySpec {
            label: "q".into(),
            scans: vec![scan.clone(), scan],
            cpu_factor: 1.0,
            join: None,
        };
        assert_eq!(query.total_tuples(), 300);
        let stream = StreamSpec {
            label: "s".into(),
            queries: vec![query.clone(), query],
        };
        let workload = WorkloadSpec::read_only("w", vec![stream.clone(), stream]);
        assert_eq!(workload.stream_count(), 2);
        assert_eq!(workload.query_count(), 4);
        assert_eq!(workload.total_tuples(), 1200);
        assert!(!workload.has_updates());
        assert_eq!(workload.rounds(), 2);
    }

    #[test]
    fn update_streams_make_a_workload_mixed() {
        let workload =
            WorkloadSpec::read_only("w", Vec::new()).with_update_stream(UpdateStreamSpec {
                label: "u0".into(),
                table: TableId::new(0),
                ops_per_round: 16,
                mix: UpdateMix::balanced(),
                checkpoint_every: Some(2),
                seed: 42,
            });
        assert!(workload.has_updates());
        let spec = &workload.update_streams[0];
        assert!(!spec.checkpoint_due(0));
        assert!(spec.checkpoint_due(1));
        assert!(spec.checkpoint_due(3));
        let never = UpdateStreamSpec {
            checkpoint_every: None,
            ..spec.clone()
        };
        assert!(!never.checkpoint_due(1));
    }

    #[test]
    fn op_generation_is_deterministic_and_in_bounds() {
        let spec = UpdateStreamSpec {
            label: "u".into(),
            table: TableId::new(0),
            ops_per_round: 0,
            mix: UpdateMix::mostly_modifies(),
            checkpoint_every: None,
            seed: 7,
        };
        let run = || {
            let mut gen = spec.ops();
            let mut visible = 10u64;
            let mut ops = Vec::new();
            for _ in 0..200 {
                let op = gen.next_op(visible, 3);
                match &op {
                    UpdateOp::Insert { rid, row } => {
                        assert!(*rid <= visible);
                        assert_eq!(row.len(), 3);
                        visible += 1;
                    }
                    UpdateOp::Delete { rid } => {
                        assert!(*rid < visible);
                        visible -= 1;
                    }
                    UpdateOp::Modify { rid, col, .. } => {
                        assert!(*rid < visible);
                        assert!(*col < 3);
                    }
                }
                ops.push(op);
            }
            ops
        };
        assert_eq!(run(), run());
        // An empty table only ever receives inserts.
        let mut gen = spec.ops();
        for _ in 0..20 {
            assert!(matches!(gen.next_op(0, 2), UpdateOp::Insert { .. }));
        }
    }
}
