//! Workload specification types.
//!
//! A [`WorkloadSpec`] is a declarative description — concurrent
//! [`StreamSpec`]s of [`QuerySpec`]s, each a sequence of [`ScanSpec`]s —
//! with **two** executors:
//!
//! * the discrete-event simulator (`scanshare-sim`), which models the
//!   workload in virtual time and regenerates the paper's figures;
//! * the execution engine's `WorkloadDriver` (`scanshare-exec`), which runs
//!   the same spec against a live `Engine` — one real thread per stream,
//!   queries lowered onto the builder `Query` API — and reports wall-clock
//!   throughput, latency percentiles and buffer/I/O statistics.
//!
//! The two agree on I/O volume for the same spec and configuration
//! (`tests/simulator_vs_engine.rs` asserts it), so specs serve both as
//! figure inputs and as engine throughput workloads.

use scanshare_common::{RangeList, TableId};

/// One range scan performed by a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanSpec {
    /// The scanned table.
    pub table: TableId,
    /// Column indices (within the table spec) the scan reads.
    pub columns: Vec<usize>,
    /// Tuple ranges (SID space) the scan covers.
    pub ranges: RangeList,
}

impl ScanSpec {
    /// Total tuples the scan covers.
    pub fn total_tuples(&self) -> u64 {
        self.ranges.total_tuples()
    }
}

/// One query of a workload stream.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Human-readable label ("Q01", "micro-q6-50%", ...).
    pub label: String,
    /// The scans the query performs (executed one after another).
    pub scans: Vec<ScanSpec>,
    /// CPU cost multiplier relative to the baseline tuple-processing rate
    /// (1.0 = a simple scan-select-aggregate; complex TPC-H queries are
    /// higher).
    pub cpu_factor: f64,
}

impl QuerySpec {
    /// Total tuples the query scans across all of its scans.
    pub fn total_tuples(&self) -> u64 {
        self.scans.iter().map(ScanSpec::total_tuples).sum()
    }
}

/// A stream: a sequence of queries executed back to back by one client.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// Stream label.
    pub label: String,
    /// Queries in execution order.
    pub queries: Vec<QuerySpec>,
}

/// A complete workload: several concurrent streams.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name used in reports.
    pub name: String,
    /// Concurrent streams.
    pub streams: Vec<StreamSpec>,
}

impl WorkloadSpec {
    /// Number of streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Total number of queries across all streams.
    pub fn query_count(&self) -> usize {
        self.streams.iter().map(|s| s.queries.len()).sum()
    }

    /// Total tuples scanned by the whole workload.
    pub fn total_tuples(&self) -> u64 {
        self.streams
            .iter()
            .flat_map(|s| &s.queries)
            .map(QuerySpec::total_tuples)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::TupleRange;

    #[test]
    fn totals_add_up() {
        let scan = ScanSpec {
            table: TableId::new(0),
            columns: vec![0, 1],
            ranges: RangeList::from_ranges([TupleRange::new(0, 100), TupleRange::new(200, 250)]),
        };
        assert_eq!(scan.total_tuples(), 150);
        let query = QuerySpec {
            label: "q".into(),
            scans: vec![scan.clone(), scan],
            cpu_factor: 1.0,
        };
        assert_eq!(query.total_tuples(), 300);
        let stream = StreamSpec {
            label: "s".into(),
            queries: vec![query.clone(), query],
        };
        let workload = WorkloadSpec {
            name: "w".into(),
            streams: vec![stream.clone(), stream],
        };
        assert_eq!(workload.stream_count(), 2);
        assert_eq!(workload.query_count(), 4);
        assert_eq!(workload.total_tuples(), 1200);
    }
}
