//! The scan-sharing microbenchmark (Section 4.1 of the paper).
//!
//! The microbenchmark runs concurrent streams of TPC-H Q1 / Q6 style queries
//! against the `lineitem` table: every query scans a tuple range that starts
//! at a random position and covers 1 %, 10 %, 50 % or 100 % of the table,
//! performing selection, projection and aggregation. Streams consist of
//! batches of 16 queries. The default knobs follow the paper: 8 concurrent
//! streams, buffer pool of 40 % of the accessed volume, 700 MB/s of I/O
//! bandwidth (those last two live in the simulator configuration).

use scanshare_common::{RangeList, Result, TableId, TupleRange};
use scanshare_storage::column::{ColumnSpec, ColumnType};
use scanshare_storage::datagen::{splitmix64, DataGen};
use scanshare_storage::storage::Storage;
use scanshare_storage::table::TableSpec;

use crate::spec::{QuerySpec, ScanSpec, StreamSpec, WorkloadSpec};

/// Configuration of the microbenchmark generator.
#[derive(Debug, Clone, PartialEq)]
pub struct MicrobenchConfig {
    /// Number of concurrent streams (the paper sweeps 1–32, default 8).
    pub streams: usize,
    /// Queries per stream (one batch of 16 in the paper).
    pub queries_per_stream: usize,
    /// Number of tuples in the `lineitem` table.
    pub lineitem_tuples: u64,
    /// Fractions of the table each query may scan, in percent.
    pub scan_percentages: Vec<u32>,
    /// Share of Q1-style queries (the rest are Q6-style), in `[0, 1]`.
    pub q1_share: f64,
    /// RNG seed for query placement.
    pub seed: u64,
}

impl Default for MicrobenchConfig {
    fn default() -> Self {
        Self {
            streams: 8,
            queries_per_stream: 16,
            lineitem_tuples: 2_000_000,
            scan_percentages: vec![1, 10, 50, 100],
            q1_share: 0.5,
            seed: 0x5eed,
        }
    }
}

impl MicrobenchConfig {
    /// A reduced configuration suitable for unit tests: 4 streams of 4 small
    /// queries over a 100k-tuple table.
    pub fn tiny() -> Self {
        Self {
            streams: 4,
            queries_per_stream: 4,
            lineitem_tuples: 100_000,
            scan_percentages: vec![10, 50, 100],
            q1_share: 0.5,
            seed: 7,
        }
    }

    /// Returns a copy with a different stream count (used by the Figure 13
    /// sweep).
    pub fn with_streams(mut self, streams: usize) -> Self {
        self.streams = streams;
        self
    }

    /// Returns a copy where every query scans `percent` of the table (used by
    /// the Figure 13 sweep, which uses 50 % scans only).
    pub fn with_fixed_percentage(mut self, percent: u32) -> Self {
        self.scan_percentages = vec![percent];
        self
    }
}

/// Column layout of the `lineitem`-like table used by the microbenchmark:
/// seven columns modelled after the ones Q1 and Q6 touch, with compressed
/// widths that differ per column (so chunks map to very different page counts
/// per column).
pub fn lineitem_spec(tuples: u64) -> TableSpec {
    TableSpec::new(
        "lineitem",
        vec![
            ColumnSpec::with_width("l_quantity", ColumnType::Decimal, 2.0),
            ColumnSpec::with_width("l_extendedprice", ColumnType::Decimal, 4.0),
            ColumnSpec::with_width("l_discount", ColumnType::Decimal, 1.0),
            ColumnSpec::with_width("l_tax", ColumnType::Decimal, 1.0),
            ColumnSpec::with_width("l_returnflag", ColumnType::Dict { cardinality: 3 }, 0.5),
            ColumnSpec::with_width("l_linestatus", ColumnType::Dict { cardinality: 2 }, 0.5),
            ColumnSpec::with_width("l_shipdate", ColumnType::Date, 2.0),
        ],
        tuples,
    )
}

/// Data generators matching [`lineitem_spec`].
pub fn lineitem_generators() -> Vec<DataGen> {
    vec![
        DataGen::Uniform { min: 1, max: 50 },
        DataGen::Uniform {
            min: 100,
            max: 100_000,
        },
        DataGen::Uniform { min: 0, max: 10 },
        DataGen::Uniform { min: 0, max: 8 },
        DataGen::Cyclic {
            period: 3,
            min: 0,
            max: 2,
        },
        DataGen::Cyclic {
            period: 2,
            min: 0,
            max: 1,
        },
        DataGen::Cyclic {
            period: 2526,
            min: 8000,
            max: 10_500,
        },
    ]
}

/// Columns scanned by a Q1-style query (selection on `l_shipdate`, grouping
/// on the flag columns, aggregation over the measures).
pub const Q1_COLUMNS: [usize; 7] = [0, 1, 2, 3, 4, 5, 6];
/// Columns scanned by a Q6-style query.
pub const Q6_COLUMNS: [usize; 4] = [0, 1, 2, 6];

/// Creates the `lineitem` table in `storage` and returns its id.
pub fn setup_lineitem(storage: &std::sync::Arc<Storage>, tuples: u64) -> Result<TableId> {
    storage.create_table_with_data(lineitem_spec(tuples), lineitem_generators())
}

/// Generates the microbenchmark workload against an already-created
/// `lineitem` table.
pub fn generate(config: &MicrobenchConfig, lineitem: TableId) -> WorkloadSpec {
    let tuples = config.lineitem_tuples;
    let mut rng_state = config.seed | 1;
    let mut next = |limit: u64| -> u64 {
        rng_state = splitmix64(rng_state);
        if limit == 0 {
            0
        } else {
            rng_state % limit
        }
    };

    let streams = (0..config.streams)
        .map(|s| {
            let queries = (0..config.queries_per_stream)
                .map(|q| {
                    let pct_idx = next(config.scan_percentages.len() as u64) as usize;
                    let pct = config.scan_percentages[pct_idx];
                    let span = (tuples * pct as u64 / 100).max(1);
                    let start = next(tuples.saturating_sub(span).max(1));
                    let range = TupleRange::new(start, (start + span).min(tuples));
                    let is_q1 = (next(1000) as f64 / 1000.0) < config.q1_share;
                    let (columns, label, cpu_factor) = if is_q1 {
                        (Q1_COLUMNS.to_vec(), format!("micro-q1-{pct}%"), 1.4)
                    } else {
                        (Q6_COLUMNS.to_vec(), format!("micro-q6-{pct}%"), 1.0)
                    };
                    QuerySpec {
                        label: format!("{label}#{s}.{q}"),
                        scans: vec![ScanSpec {
                            table: lineitem,
                            columns,
                            ranges: RangeList::from_ranges([range]),
                            predicate: None,
                        }],
                        cpu_factor,
                        join: None,
                    }
                })
                .collect();
            StreamSpec {
                label: format!("stream-{s}"),
                queries,
            }
        })
        .collect();

    WorkloadSpec::read_only(format!("microbench-{}streams", config.streams), streams)
}

/// Convenience: creates the storage, the `lineitem` table and the workload in
/// one call.
pub fn build(
    config: &MicrobenchConfig,
    page_size_bytes: u64,
    chunk_tuples: u64,
) -> Result<(std::sync::Arc<Storage>, WorkloadSpec)> {
    let storage = Storage::with_seed(page_size_bytes, chunk_tuples, config.seed);
    let lineitem = setup_lineitem(&storage, config.lineitem_tuples)?;
    Ok((storage, generate(config, lineitem)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_requested_shape() {
        let config = MicrobenchConfig::default();
        let (_storage, workload) = build(&config, 64 * 1024, 100_000).unwrap();
        assert_eq!(workload.stream_count(), 8);
        assert_eq!(workload.query_count(), 8 * 16);
        for stream in &workload.streams {
            for query in &stream.queries {
                assert_eq!(query.scans.len(), 1);
                let scan = &query.scans[0];
                assert!(!scan.ranges.is_empty());
                assert!(scan.total_tuples() <= config.lineitem_tuples);
                assert!(scan.columns.len() == 7 || scan.columns.len() == 4);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = MicrobenchConfig::tiny();
        let (_s1, w1) = build(&config, 64 * 1024, 10_000).unwrap();
        let (_s2, w2) = build(&config, 64 * 1024, 10_000).unwrap();
        assert_eq!(w1, w2);
        let other = MicrobenchConfig {
            seed: 99,
            ..MicrobenchConfig::tiny()
        };
        let (_s3, w3) = build(&other, 64 * 1024, 10_000).unwrap();
        assert_ne!(w1, w3);
    }

    #[test]
    fn scan_percentages_are_respected() {
        let config = MicrobenchConfig::default().with_fixed_percentage(50);
        let (_storage, workload) = build(&config, 64 * 1024, 100_000).unwrap();
        for stream in &workload.streams {
            for query in &stream.queries {
                let tuples = query.scans[0].total_tuples();
                assert_eq!(tuples, config.lineitem_tuples / 2);
            }
        }
    }

    #[test]
    fn ranges_start_at_random_positions() {
        let config = MicrobenchConfig::default().with_fixed_percentage(10);
        let (_storage, workload) = build(&config, 64 * 1024, 100_000).unwrap();
        let starts: std::collections::HashSet<u64> = workload
            .streams
            .iter()
            .flat_map(|s| &s.queries)
            .map(|q| q.scans[0].ranges.ranges()[0].start)
            .collect();
        assert!(
            starts.len() > 10,
            "query ranges should start at many distinct positions"
        );
    }

    #[test]
    fn lineitem_columns_have_heterogeneous_widths() {
        let spec = lineitem_spec(1000);
        assert_eq!(spec.columns.len(), 7);
        let widths: Vec<f64> = spec.columns.iter().map(|c| c.bytes_per_tuple).collect();
        let min = widths.iter().cloned().fold(f64::MAX, f64::min);
        let max = widths.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max / min >= 4.0, "columns must differ strongly in width");
        assert_eq!(lineitem_generators().len(), 7);
    }

    #[test]
    fn with_streams_changes_only_stream_count() {
        let config = MicrobenchConfig::default().with_streams(2);
        let (_storage, workload) = build(&config, 64 * 1024, 100_000).unwrap();
        assert_eq!(workload.stream_count(), 2);
    }
}
