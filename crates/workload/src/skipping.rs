//! The zone-map data-skipping workload: predicated range scans over a
//! clustered table, with a **per-stream predicate selectivity**.
//!
//! The `events` table models the common log/fact-table shape where zone
//! maps shine: a monotonically increasing clustered key (`ev_key`,
//! sequential — every chunk's `[min, max]` is a disjoint slice of the key
//! space), a Zipf-skewed measure (`ev_value` — most mass near zero, the
//! heavy tail exercises conservative zone bounds) and a uniform payload
//! column that makes scans pay for real page volume.
//!
//! Every stream runs full-table scans filtered by `ev_key <
//! selectivity * tuples`, so the predicate selects exactly the leading
//! `selectivity` fraction of the rows — and, with zone maps enabled, the
//! executors skip the trailing `1 - selectivity` of the chunks entirely.
//! Streams take their selectivity from [`SkippingConfig::selectivities`]
//! round-robin, so one workload mixes highly selective probes with broad
//! sweeps, exactly the mix where cooperative relevance accounting and PBM
//! predictions must agree on what a queued query will *actually* read.
//! Like every workload in this crate, the spec runs identically on the
//! discrete-event simulator and the live engine.

use scanshare_common::{RangeList, Result, TableId, TupleRange};
use scanshare_storage::column::{ColumnSpec, ColumnType};
use scanshare_storage::datagen::DataGen;
use scanshare_storage::storage::Storage;
use scanshare_storage::table::TableSpec;
use scanshare_storage::zone::{ZoneOp, ZonePredicate};

use crate::spec::{QuerySpec, ScanSpec, StreamSpec, WorkloadSpec};

/// Configuration of the data-skipping workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippingConfig {
    /// Number of concurrent streams.
    pub streams: usize,
    /// Queries per stream.
    pub queries_per_stream: usize,
    /// Number of tuples in the `events` table.
    pub tuples: u64,
    /// Predicate selectivities in `[0, 1]`, assigned to streams round-robin
    /// (stream `s` uses `selectivities[s % len]`). `1.0` scans everything
    /// (no predicate at all — the unfiltered baseline); smaller values keep
    /// only the leading fraction of the clustered key space.
    pub selectivities: Vec<f64>,
    /// Zipfian span of the `ev_value` column.
    pub value_span: u64,
    /// Seed for the table's data generators.
    pub seed: u64,
}

impl Default for SkippingConfig {
    fn default() -> Self {
        Self {
            streams: 4,
            queries_per_stream: 4,
            tuples: 500_000,
            selectivities: vec![0.01, 0.10, 1.0],
            value_span: 1_000_000,
            seed: 0x51a9,
        }
    }
}

impl SkippingConfig {
    /// A reduced configuration suitable for unit tests.
    pub fn tiny() -> Self {
        Self {
            streams: 3,
            queries_per_stream: 2,
            tuples: 20_000,
            selectivities: vec![0.01, 0.5, 1.0],
            value_span: 10_000,
            seed: 11,
        }
    }

    /// Returns a copy where every stream runs at one fixed selectivity
    /// (used by the `fig_skipping` sweep).
    pub fn with_selectivity(mut self, selectivity: f64) -> Self {
        self.selectivities = vec![selectivity];
        self
    }
}

/// Column layout of the clustered `events` table.
pub fn events_spec(tuples: u64) -> TableSpec {
    TableSpec::new(
        "events",
        vec![
            ColumnSpec::with_width("ev_key", ColumnType::Int64, 8.0),
            ColumnSpec::with_width("ev_value", ColumnType::Int64, 4.0),
            ColumnSpec::with_width("ev_payload", ColumnType::Int64, 8.0),
        ],
        tuples,
    )
}

/// Data generators matching [`events_spec`]: a clustered sequential key, a
/// Zipf-skewed value and a uniform payload.
pub fn events_generators(value_span: u64) -> Vec<DataGen> {
    vec![
        DataGen::Sequential { start: 0, step: 1 },
        DataGen::Zipfian {
            span: value_span.max(1),
        },
        DataGen::Uniform {
            min: 0,
            max: 1_000_000,
        },
    ]
}

/// Creates the `events` table in `storage` and returns its id.
pub fn setup_events(storage: &std::sync::Arc<Storage>, config: &SkippingConfig) -> Result<TableId> {
    storage.create_table_with_data(
        events_spec(config.tuples),
        events_generators(config.value_span),
    )
}

/// The predicate a stream at `selectivity` applies: `ev_key <
/// selectivity * tuples` (`None` at full selectivity — the unfiltered
/// baseline scan).
pub fn stream_predicate(selectivity: f64, tuples: u64) -> Option<ZonePredicate> {
    if selectivity >= 1.0 {
        return None;
    }
    let bound = ((tuples as f64 * selectivity.max(0.0)).round() as i64).max(1);
    Some(ZonePredicate::new(0, ZoneOp::Lt, bound))
}

/// Generates the skipping workload against an already-created `events`
/// table.
pub fn generate(config: &SkippingConfig, events: TableId) -> WorkloadSpec {
    let streams = (0..config.streams)
        .map(|s| {
            let selectivity = config.selectivities[s % config.selectivities.len().max(1)];
            let predicate = stream_predicate(selectivity, config.tuples);
            let queries = (0..config.queries_per_stream)
                .map(|q| QuerySpec {
                    label: format!("skip-{:.0}%#{s}.{q}", selectivity * 100.0),
                    scans: vec![ScanSpec {
                        table: events,
                        columns: vec![0, 1, 2],
                        ranges: RangeList::from_ranges([TupleRange::new(0, config.tuples)]),
                        predicate,
                    }],
                    cpu_factor: 1.0,
                    join: None,
                })
                .collect();
            StreamSpec {
                label: format!("sel-{:.2}-{s}", selectivity),
                queries,
            }
        })
        .collect();
    WorkloadSpec::read_only(format!("skipping-{}streams", config.streams), streams)
}

/// Convenience: creates the storage, the `events` table and the workload in
/// one call.
pub fn build(
    config: &SkippingConfig,
    page_size_bytes: u64,
    chunk_tuples: u64,
) -> Result<(std::sync::Arc<Storage>, WorkloadSpec)> {
    let storage = Storage::with_seed(page_size_bytes, chunk_tuples, config.seed);
    let events = setup_events(&storage, config)?;
    Ok((storage, generate(config, events)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape_and_per_stream_selectivity() {
        let config = SkippingConfig::tiny();
        let (_storage, workload) = build(&config, 1024, 1000).unwrap();
        assert_eq!(workload.stream_count(), 3);
        assert_eq!(workload.query_count(), 6);
        // Stream 0: 1% selectivity -> Lt 200 on the clustered key.
        let scan = &workload.streams[0].queries[0].scans[0];
        let pred = scan.predicate.expect("selective streams carry a predicate");
        assert_eq!(pred.column, 0);
        assert_eq!(pred.op, ZoneOp::Lt);
        assert_eq!(pred.value, 200);
        // Stream 2: 100% selectivity -> unfiltered baseline.
        assert!(workload.streams[2].queries[0].scans[0].predicate.is_none());
        // Every scan covers the full table; the predicate does the limiting.
        assert!(workload
            .streams
            .iter()
            .flat_map(|s| &s.queries)
            .all(|q| q.scans[0].total_tuples() == config.tuples));
    }

    #[test]
    fn generation_is_deterministic() {
        let config = SkippingConfig::tiny();
        let (_s1, w1) = build(&config, 1024, 1000).unwrap();
        let (_s2, w2) = build(&config, 1024, 1000).unwrap();
        assert_eq!(w1, w2);
    }

    #[test]
    fn predicate_bound_tracks_selectivity() {
        assert_eq!(stream_predicate(0.5, 1000).unwrap().value, 500);
        assert_eq!(stream_predicate(0.0, 1000).unwrap().value, 1);
        assert!(stream_predicate(1.0, 1000).is_none());
        assert!(stream_predicate(1.5, 1000).is_none());
    }
}
