//! The `CScan` operator: a scan attached to the Active Buffer Manager.
//!
//! A CScan registers its data interest with the ABM up front, then
//! repeatedly asks for whatever chunk the ABM considers best to process next
//! (`GetChunk`), which generally arrives **out of table order**. For every
//! delivered chunk the operator:
//!
//! 1. translates the chunk's SID range into the widest RID range it can
//!    produce (`SIDtoRIDlow` / `SIDtoRIDhigh`),
//! 2. trims that RID range against the rows it has already produced (ranges
//!    of neighbouring chunks may overlap after translation),
//! 3. re-initializes PDT merging at the trimmed position and produces the
//!    merged rows.
//!
//! When the ABM has nothing cached for the scan, the operator drives the
//! ABM's load loop itself (in the real system a dedicated ABM thread does
//! this; inside the embedded engine the load simply happens on the calling
//! thread, charged to the simulated I/O device).

use std::sync::Arc;

use scanshare_common::{Error, RangeList, Result, ScanId, TableId, TupleRange};
use scanshare_core::cscan::{AbmAction, CScanRequest};
use scanshare_pdt::merge::MergeCursor;
use scanshare_pdt::pdt::Pdt;
use scanshare_storage::datagen::Value;
use scanshare_storage::layout::TableLayout;
use scanshare_storage::snapshot::Snapshot;

use crate::batch::Batch;
use crate::engine::Engine;
use crate::ops::BatchSource;
use crate::scan::{rid_range_to_sid_ranges, sid_range_to_rid_range, PooledSource};

/// The out-of-order (or optionally in-order) CScan operator.
pub struct CScanOperator {
    engine: Arc<Engine>,
    layout: Arc<TableLayout>,
    snapshot: Arc<Snapshot>,
    pdt: Pdt,
    columns: Vec<usize>,
    /// RID ranges requested by the plan.
    requested: RangeList,
    /// RID ranges already produced (chunk translations may overlap).
    produced: RangeList,
    scan_id: ScanId,
    tuples_expected: u64,
    tuples_produced: u64,
    finished: bool,
    unregistered: bool,
}

impl CScanOperator {
    /// Creates a CScan over `columns` of `table` covering the visible rows in
    /// `rid_range`. `in_order` forces sequential chunk delivery, making the
    /// operator a drop-in replacement for the traditional Scan.
    pub fn new(
        engine: Arc<Engine>,
        table: TableId,
        columns: Vec<usize>,
        rid_range: TupleRange,
        in_order: bool,
    ) -> Result<Self> {
        let layout = engine.storage().layout(table)?;
        let snapshot = engine.storage().master_snapshot(table)?;
        let pdt = engine.pdt(table)?.read().clone();
        let visible = pdt.visible_count(snapshot.stable_tuples());
        let rid_range = rid_range.intersect(&TupleRange::new(0, visible));
        if rid_range.is_empty() {
            return Err(Error::plan("CScan over an empty row range"));
        }

        // The plan hands the operator RID ranges; ABM thinks in SID ranges.
        let sid_ranges = rid_range_to_sid_ranges(&pdt, &rid_range, snapshot.stable_tuples());
        let abm = engine.abm().ok_or_else(|| {
            Error::Unsupported("CScanOperator requires a Cooperative Scans engine".into())
        })?;
        let handle = abm.lock().register_cscan(CScanRequest {
            table,
            snapshot: Arc::clone(&snapshot),
            layout: Arc::clone(&layout),
            columns: columns.clone(),
            ranges: sid_ranges,
            in_order,
        })?;

        Ok(Self {
            engine,
            layout,
            snapshot,
            pdt,
            columns,
            requested: RangeList::from_ranges([rid_range]),
            produced: RangeList::new(),
            scan_id: handle.id,
            tuples_expected: rid_range.len(),
            tuples_produced: 0,
            finished: false,
            unregistered: false,
        })
    }

    /// The ABM scan id of this operator.
    pub fn scan_id(&self) -> ScanId {
        self.scan_id
    }

    fn unregister(&mut self) {
        if self.unregistered {
            return;
        }
        self.unregistered = true;
        if let Some(abm) = self.engine.abm() {
            let _ = abm.lock().unregister_cscan(self.scan_id);
        }
    }

    /// Produces the rows of one delivered chunk (may be empty if the chunk's
    /// translated RID range was entirely produced already).
    fn produce_chunk(&mut self, chunk: scanshare_common::ChunkId) -> Result<Vec<Vec<Value>>> {
        let chunk_sids = self.layout.chunk_sid_range(chunk, self.snapshot.stable_tuples());
        let rid_window = sid_range_to_rid_range(&self.pdt, &chunk_sids);
        let fresh = RangeList::from_ranges([rid_window])
            .intersect(&self.requested)
            .subtract(&self.produced);
        let mut rows = Vec::new();
        let mut source = PooledSource::new(
            Arc::clone(&self.engine),
            Arc::clone(&self.layout),
            Arc::clone(&self.snapshot),
            None,
        );
        for range in fresh.ranges() {
            // Re-initialize the PDT merge at this chunk's position.
            let mut cursor =
                MergeCursor::new(&self.pdt, &mut source, self.columns.clone(), *range);
            rows.extend(cursor.collect_rows());
            self.produced.add(*range);
        }
        self.tuples_produced += rows.len() as u64;
        self.engine.charge_cpu(rows.len() as u64);
        Ok(rows)
    }

    /// Runs the ABM load loop until a chunk becomes available for this scan
    /// (or the ABM reports that the scan is finished).
    fn drive_abm(&mut self) -> Result<()> {
        let abm = self.engine.abm().expect("checked at construction");
        loop {
            let action = abm.lock().next_action(self.engine.now());
            match action {
                AbmAction::Load(plan) => {
                    self.engine.charge_io(plan.bytes);
                    abm.lock().complete_load(&plan, self.engine.now())?;
                    // If the load was for (or also useful to) this scan we may
                    // now have a cached chunk; the caller re-checks.
                    if abm.lock().has_cached_chunk(self.scan_id) {
                        return Ok(());
                    }
                }
                AbmAction::Idle => {
                    return Err(Error::internal(
                        "CScan is starved but the ABM has nothing to load",
                    ));
                }
            }
        }
    }
}

impl BatchSource for CScanOperator {
    fn width(&self) -> usize {
        self.columns.len()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.finished {
            return Ok(None);
        }
        loop {
            let abm = self.engine.abm().expect("checked at construction");
            let delivery = abm.lock().get_chunk(self.scan_id)?;
            match delivery {
                Some(delivery) => {
                    let rows = self.produce_chunk(delivery.chunk)?;
                    if rows.is_empty() {
                        continue;
                    }
                    return Ok(Some(Batch::from_rows(self.columns.len(), &rows)));
                }
                None => {
                    if abm.lock().is_finished(self.scan_id) {
                        self.finished = true;
                        self.unregister();
                        debug_assert_eq!(
                            self.tuples_produced, self.tuples_expected,
                            "CScan must produce every requested row exactly once"
                        );
                        return Ok(None);
                    }
                    self.drive_abm()?;
                }
            }
        }
    }
}

impl Drop for CScanOperator {
    fn drop(&mut self) {
        self.unregister();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::{PolicyKind, ScanShareConfig};
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::datagen::DataGen;
    use scanshare_storage::storage::Storage;
    use scanshare_storage::table::TableSpec;

    fn engine(buffer_bytes: u64, tuples: u64) -> (Arc<Engine>, TableId) {
        let storage = Storage::with_seed(1024, 500, 5);
        let spec = TableSpec::new(
            "t",
            vec![
                ColumnSpec::with_width("k", ColumnType::Int64, 8.0),
                ColumnSpec::with_width("v", ColumnType::Int64, 4.0),
            ],
            tuples,
        );
        let table = storage
            .create_table_with_data(
                spec,
                vec![DataGen::Sequential { start: 0, step: 1 }, DataGen::Constant(7)],
            )
            .unwrap();
        let config = ScanShareConfig {
            page_size_bytes: 1024,
            chunk_tuples: 500,
            buffer_pool_bytes: buffer_bytes,
            policy: PolicyKind::CScan,
            ..Default::default()
        };
        (Engine::new(storage, config).unwrap(), table)
    }

    fn collect_sorted(op: &mut dyn BatchSource) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        while let Some(batch) = op.next_batch().unwrap() {
            rows.extend(batch.to_rows());
        }
        rows.sort();
        rows
    }

    #[test]
    fn cscan_produces_every_row_exactly_once() {
        let (engine, table) = engine(1 << 20, 3000);
        let mut op =
            CScanOperator::new(Arc::clone(&engine), table, vec![0, 1], TupleRange::new(0, 3000), false)
                .unwrap();
        let rows = collect_sorted(&mut op);
        assert_eq!(rows.len(), 3000);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], i as i64);
            assert_eq!(row[1], 7);
        }
        assert!(engine.buffer_stats().io_bytes > 0);
    }

    #[test]
    fn cscan_sees_pdt_updates_despite_out_of_order_delivery() {
        let (engine, table) = engine(1 << 20, 2000);
        engine.delete_row(table, 100).unwrap();
        engine.insert_row(table, 0, vec![-5, -5]).unwrap();
        engine.update_value(table, 1999, 1, 42).unwrap();
        let visible = engine.visible_rows(table).unwrap();
        assert_eq!(visible, 2000);
        let mut op = CScanOperator::new(
            Arc::clone(&engine),
            table,
            vec![0, 1],
            TupleRange::new(0, visible),
            false,
        )
        .unwrap();
        let rows = collect_sorted(&mut op);
        assert_eq!(rows.len(), 2000);
        assert!(rows.contains(&vec![-5, -5]));
        assert!(!rows.iter().any(|r| r[0] == 100), "deleted row must not appear");
        assert!(rows.contains(&vec![1999, 42]));
    }

    #[test]
    fn cscan_with_small_buffer_still_completes() {
        // Each chunk is ~6 pages; give the ABM room for only two chunks.
        let (engine, table) = engine(12 * 1024, 5000);
        let mut op =
            CScanOperator::new(Arc::clone(&engine), table, vec![0, 1], TupleRange::new(0, 5000), false)
                .unwrap();
        let rows = collect_sorted(&mut op);
        assert_eq!(rows.len(), 5000);
        assert!(engine.buffer_stats().evictions > 0);
    }

    #[test]
    fn two_concurrent_cscans_share_io() {
        let (engine, table) = engine(1 << 20, 4000);
        let mut a =
            CScanOperator::new(Arc::clone(&engine), table, vec![0, 1], TupleRange::new(0, 4000), false)
                .unwrap();
        let mut b =
            CScanOperator::new(Arc::clone(&engine), table, vec![0, 1], TupleRange::new(0, 4000), false)
                .unwrap();
        // Interleave the two scans so they run "concurrently".
        let mut rows_a = Vec::new();
        let mut rows_b = Vec::new();
        loop {
            let batch_a = a.next_batch().unwrap();
            let batch_b = b.next_batch().unwrap();
            if let Some(batch) = &batch_a {
                rows_a.extend(batch.to_rows());
            }
            if let Some(batch) = &batch_b {
                rows_b.extend(batch.to_rows());
            }
            if batch_a.is_none() && batch_b.is_none() {
                break;
            }
        }
        assert_eq!(rows_a.len(), 4000);
        assert_eq!(rows_b.len(), 4000);
        // The table occupies 32 pages (column k, 8 B/tuple) + 16 pages
        // (column v, 4 B/tuple) = 48 pages. Two cooperative scans sharing
        // chunks read it exactly once instead of twice.
        let io = engine.buffer_stats().io_bytes;
        assert_eq!(io, 48 * 1024, "two cooperative scans read the table exactly once");
    }

    #[test]
    fn in_order_cscan_delivers_rows_in_rid_order() {
        let (engine, table) = engine(1 << 20, 2000);
        let mut op =
            CScanOperator::new(Arc::clone(&engine), table, vec![0], TupleRange::new(0, 2000), true)
                .unwrap();
        let mut last = -1;
        while let Some(batch) = op.next_batch().unwrap() {
            for &v in batch.column(0) {
                assert!(v > last, "in-order CScan must deliver ascending keys");
                last = v;
            }
        }
        assert_eq!(last, 1999);
    }

    #[test]
    fn cscan_on_non_cscan_engine_is_rejected() {
        let storage = Storage::with_seed(1024, 500, 5);
        let table = storage.create_table(TableSpec::with_int_columns("t", 1, 100)).unwrap();
        let config = ScanShareConfig {
            page_size_bytes: 1024,
            chunk_tuples: 500,
            buffer_pool_bytes: 1 << 20,
            policy: PolicyKind::Lru,
            ..Default::default()
        };
        let engine = Engine::new(storage, config).unwrap();
        let err = CScanOperator::new(engine, table, vec![0], TupleRange::new(0, 100), false);
        assert!(err.is_err());
    }
}
