//! Relational operators above the scans: Select, Project and Aggr.
//!
//! These are just enough to express the TPC-H Q1 / Q6 style queries used by
//! the paper's microbenchmarks: a range scan with a selection, projection and
//! (optionally grouped) aggregation on top.

use std::collections::BTreeMap;

use scanshare_common::Result;
use scanshare_storage::datagen::Value;

use crate::batch::Batch;

/// A producer of vectorized batches (the bottom of every query plan).
pub trait BatchSource {
    /// Number of columns each batch carries.
    fn width(&self) -> usize;
    /// Produces the next batch, or `None` when the source is exhausted.
    fn next_batch(&mut self) -> Result<Option<Batch>>;
}

/// A [`BatchSource`] over pre-materialized batches (useful for tests and for
/// feeding operators from collected data).
#[derive(Debug)]
pub struct VecSource {
    width: usize,
    batches: Vec<Batch>,
    next: usize,
}

impl VecSource {
    /// Creates a source that yields the given batches in order.
    pub fn new(width: usize, batches: Vec<Batch>) -> Self {
        Self {
            width,
            batches,
            next: 0,
        }
    }
}

impl BatchSource for VecSource {
    fn width(&self) -> usize {
        self.width
    }
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.next >= self.batches.len() {
            return Ok(None);
        }
        let batch = self.batches[self.next].clone();
        self.next += 1;
        Ok(Some(batch))
    }
}

/// Comparison operators for simple predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `value < constant`
    Lt,
    /// `value <= constant`
    Le,
    /// `value > constant`
    Gt,
    /// `value >= constant`
    Ge,
    /// `value == constant`
    Eq,
}

/// A conjunctive predicate over one column of the scanned projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Predicate {
    /// Column index within the operator's output (not the table).
    pub column: usize,
    /// Comparison operator.
    pub op: CompareOp,
    /// Constant to compare against.
    pub value: Value,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(column: usize, op: CompareOp, value: Value) -> Self {
        Self { column, op, value }
    }

    /// Evaluates the predicate for one value.
    pub fn matches(&self, v: Value) -> bool {
        match self.op {
            CompareOp::Lt => v < self.value,
            CompareOp::Le => v <= self.value,
            CompareOp::Gt => v > self.value,
            CompareOp::Ge => v >= self.value,
            CompareOp::Eq => v == self.value,
        }
    }

    /// Evaluates the predicate over a batch, returning a selection mask.
    pub fn mask(&self, batch: &Batch) -> Vec<bool> {
        batch
            .column(self.column)
            .iter()
            .map(|&v| self.matches(v))
            .collect()
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Count of qualifying rows.
    Count,
    /// Sum of a column.
    Sum(usize),
    /// Minimum of a column.
    Min(usize),
    /// Maximum of a column.
    Max(usize),
}

/// An aggregation specification: optional group-by column plus a list of
/// aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggrSpec {
    /// Column (within the operator output) to group by, if any.
    pub group_by: Option<usize>,
    /// Aggregates to compute.
    pub aggregates: Vec<Aggregate>,
}

impl AggrSpec {
    /// Ungrouped aggregation.
    pub fn global(aggregates: Vec<Aggregate>) -> Self {
        Self {
            group_by: None,
            aggregates,
        }
    }

    /// Grouped aggregation.
    pub fn grouped(group_by: usize, aggregates: Vec<Aggregate>) -> Self {
        Self {
            group_by: Some(group_by),
            aggregates,
        }
    }
}

/// Partial aggregation state for one group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupState {
    /// Row count.
    pub count: u64,
    /// One accumulator per aggregate.
    pub accumulators: Vec<Value>,
}

/// The result of an aggregation: group key (0 for global aggregation) mapped
/// to its aggregate values, ordered by key.
pub type AggrResult = BTreeMap<Value, GroupState>;

/// Folds one batch into a running aggregation: applies `filter` (if any)
/// and accumulates every surviving row into `groups` under `spec`. The
/// incremental form of [`aggregate`], used by the morsel-driven
/// [`QueryTask`](crate::sched::QueryTask), which processes a bounded number
/// of batches per scheduler quantum and must carry the accumulator state
/// across yields.
pub fn fold_batch(
    groups: &mut AggrResult,
    batch: Batch,
    filter: Option<&Predicate>,
    spec: &AggrSpec,
) {
    let batch = match filter {
        Some(pred) => batch.filter(&pred.mask(&batch)),
        None => batch,
    };
    if batch.is_empty() {
        return;
    }
    for row in 0..batch.len() {
        let key = spec.group_by.map(|c| batch.value(row, c)).unwrap_or(0);
        let entry = groups.entry(key).or_insert_with(|| GroupState {
            count: 0,
            accumulators: spec
                .aggregates
                .iter()
                .map(|a| match a {
                    Aggregate::Count | Aggregate::Sum(_) => 0,
                    Aggregate::Min(_) => Value::MAX,
                    Aggregate::Max(_) => Value::MIN,
                })
                .collect(),
        });
        entry.count += 1;
        for (acc, agg) in entry.accumulators.iter_mut().zip(spec.aggregates.iter()) {
            match agg {
                Aggregate::Count => *acc += 1,
                Aggregate::Sum(c) => *acc += batch.value(row, *c),
                Aggregate::Min(c) => *acc = (*acc).min(batch.value(row, *c)),
                Aggregate::Max(c) => *acc = (*acc).max(batch.value(row, *c)),
            }
        }
    }
}

/// Consumes `source`, applying `filter` (if any) and computing `spec`.
/// This is the Select → Project → Aggr pipeline of the microbenchmark
/// queries, fused into one pass over the batches.
pub fn aggregate(
    source: &mut dyn BatchSource,
    filter: Option<Predicate>,
    spec: &AggrSpec,
) -> Result<AggrResult> {
    let mut groups: AggrResult = BTreeMap::new();
    while let Some(batch) = source.next_batch()? {
        fold_batch(&mut groups, batch, filter.as_ref(), spec);
    }
    Ok(groups)
}

/// Merges partial aggregation results produced by parallel plan fragments
/// (the "XChg + upper Aggr" of Figure 8).
pub fn merge_aggregates(spec: &AggrSpec, partials: Vec<AggrResult>) -> AggrResult {
    let mut merged: AggrResult = BTreeMap::new();
    for partial in partials {
        for (key, state) in partial {
            match merged.get_mut(&key) {
                None => {
                    merged.insert(key, state);
                }
                Some(existing) => {
                    existing.count += state.count;
                    for ((acc, other), agg) in existing
                        .accumulators
                        .iter_mut()
                        .zip(state.accumulators.iter())
                        .zip(spec.aggregates.iter())
                    {
                        match agg {
                            Aggregate::Count | Aggregate::Sum(_) => *acc += other,
                            Aggregate::Min(_) => *acc = (*acc).min(*other),
                            Aggregate::Max(_) => *acc = (*acc).max(*other),
                        }
                    }
                }
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source() -> VecSource {
        // Columns: key (0/1), value.
        VecSource::new(
            2,
            vec![
                Batch::new(vec![vec![0, 1, 0, 1], vec![10, 20, 30, 40]]),
                Batch::new(vec![vec![1, 0], vec![50, 60]]),
            ],
        )
    }

    #[test]
    fn predicate_masks_rows() {
        let p = Predicate::new(1, CompareOp::Gt, 25);
        let batch = Batch::new(vec![vec![0, 1, 0], vec![10, 30, 50]]);
        assert_eq!(p.mask(&batch), vec![false, true, true]);
        assert!(Predicate::new(0, CompareOp::Eq, 1).matches(1));
        assert!(Predicate::new(0, CompareOp::Le, 1).matches(1));
        assert!(!Predicate::new(0, CompareOp::Lt, 1).matches(1));
        assert!(Predicate::new(0, CompareOp::Ge, 1).matches(2));
    }

    #[test]
    fn global_aggregation_without_filter() {
        let spec = AggrSpec::global(vec![
            Aggregate::Count,
            Aggregate::Sum(1),
            Aggregate::Min(1),
            Aggregate::Max(1),
        ]);
        let result = aggregate(&mut source(), None, &spec).unwrap();
        assert_eq!(result.len(), 1);
        let g = &result[&0];
        assert_eq!(g.count, 6);
        assert_eq!(g.accumulators, vec![6, 210, 10, 60]);
    }

    #[test]
    fn grouped_aggregation_with_filter() {
        // Q1-style: filter value <= 50, group by key, sum(value) and count.
        let spec = AggrSpec::grouped(0, vec![Aggregate::Sum(1), Aggregate::Count]);
        let filter = Some(Predicate::new(1, CompareOp::Le, 50));
        let result = aggregate(&mut source(), filter, &spec).unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result[&0].accumulators, vec![40, 2]); // 10 + 30
        assert_eq!(result[&1].accumulators, vec![110, 3]); // 20 + 40 + 50
    }

    #[test]
    fn empty_source_gives_empty_result() {
        let mut empty = VecSource::new(2, vec![]);
        let spec = AggrSpec::global(vec![Aggregate::Count]);
        assert!(aggregate(&mut empty, None, &spec).unwrap().is_empty());
    }

    #[test]
    fn merge_aggregates_combines_partials() {
        let spec = AggrSpec::grouped(
            0,
            vec![Aggregate::Sum(1), Aggregate::Count, Aggregate::Min(1)],
        );
        let mut a = AggrResult::new();
        a.insert(
            1,
            GroupState {
                count: 2,
                accumulators: vec![30, 2, 10],
            },
        );
        let mut b = AggrResult::new();
        b.insert(
            1,
            GroupState {
                count: 1,
                accumulators: vec![5, 1, 5],
            },
        );
        b.insert(
            2,
            GroupState {
                count: 1,
                accumulators: vec![7, 1, 7],
            },
        );
        let merged = merge_aggregates(&spec, vec![a, b]);
        assert_eq!(merged[&1].count, 3);
        assert_eq!(merged[&1].accumulators, vec![35, 3, 5]);
        assert_eq!(merged[&2].accumulators, vec![7, 1, 7]);
    }

    #[test]
    fn merging_partials_equals_single_pass() {
        let spec = AggrSpec::grouped(0, vec![Aggregate::Sum(1), Aggregate::Max(1)]);
        let whole = aggregate(&mut source(), None, &spec).unwrap();
        // Split the same data into two sources and merge.
        let part1 = VecSource::new(
            2,
            vec![Batch::new(vec![vec![0, 1, 0, 1], vec![10, 20, 30, 40]])],
        );
        let part2 = VecSource::new(2, vec![Batch::new(vec![vec![1, 0], vec![50, 60]])]);
        let mut p1 = part1;
        let mut p2 = part2;
        let merged = merge_aggregates(
            &spec,
            vec![
                aggregate(&mut p1, None, &spec).unwrap(),
                aggregate(&mut p2, None, &spec).unwrap(),
            ],
        );
        assert_eq!(whole, merged);
    }
}
