//! Relational operators above the scans: Select, Project, Aggr, GroupBy,
//! TopK and the broadcast hash join.
//!
//! The original set was just enough to express the TPC-H Q1 / Q6 style
//! queries of the paper's microbenchmarks: a range scan with a selection,
//! projection and (optionally grouped) aggregation on top. The pipeline
//! extensions add multi-key grouping ([`GroupSpec`]), order-insensitive
//! top-k selection ([`TopKSpec`]/[`TopKState`]) and a broadcast hash join
//! ([`JoinBuild`]/[`JoinTable`]/[`JoinSource`]). All of them are
//! deterministic functions of the input *multiset*: grouped results are
//! ordered maps, top-k breaks value ties by full-row lexicographic order,
//! and join buckets are sorted at build finish — so out-of-order delivery
//! (Cooperative Scans) and parallel merges cannot change any result.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use scanshare_common::Result;
use scanshare_storage::datagen::Value;

use crate::batch::Batch;

/// A producer of vectorized batches (the bottom of every query plan).
pub trait BatchSource {
    /// Number of columns each batch carries.
    fn width(&self) -> usize;
    /// Produces the next batch, or `None` when the source is exhausted.
    fn next_batch(&mut self) -> Result<Option<Batch>>;
}

/// A [`BatchSource`] over pre-materialized batches (useful for tests and for
/// feeding operators from collected data).
#[derive(Debug)]
pub struct VecSource {
    width: usize,
    batches: Vec<Batch>,
    next: usize,
}

impl VecSource {
    /// Creates a source that yields the given batches in order.
    pub fn new(width: usize, batches: Vec<Batch>) -> Self {
        Self {
            width,
            batches,
            next: 0,
        }
    }
}

impl BatchSource for VecSource {
    fn width(&self) -> usize {
        self.width
    }
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.next >= self.batches.len() {
            return Ok(None);
        }
        let batch = self.batches[self.next].clone();
        self.next += 1;
        Ok(Some(batch))
    }
}

/// Comparison operators for simple predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `value < constant`
    Lt,
    /// `value <= constant`
    Le,
    /// `value > constant`
    Gt,
    /// `value >= constant`
    Ge,
    /// `value == constant`
    Eq,
}

/// A conjunctive predicate over one column of the scanned projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Predicate {
    /// Column index within the operator's output (not the table).
    pub column: usize,
    /// Comparison operator.
    pub op: CompareOp,
    /// Constant to compare against.
    pub value: Value,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(column: usize, op: CompareOp, value: Value) -> Self {
        Self { column, op, value }
    }

    /// Evaluates the predicate for one value.
    pub fn matches(&self, v: Value) -> bool {
        match self.op {
            CompareOp::Lt => v < self.value,
            CompareOp::Le => v <= self.value,
            CompareOp::Gt => v > self.value,
            CompareOp::Ge => v >= self.value,
            CompareOp::Eq => v == self.value,
        }
    }

    /// Evaluates the predicate over a batch, returning a selection mask.
    pub fn mask(&self, batch: &Batch) -> Vec<bool> {
        batch
            .column(self.column)
            .iter()
            .map(|&v| self.matches(v))
            .collect()
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Count of qualifying rows.
    Count,
    /// Sum of a column.
    Sum(usize),
    /// Minimum of a column.
    Min(usize),
    /// Maximum of a column.
    Max(usize),
}

/// An aggregation specification: optional group-by column plus a list of
/// aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggrSpec {
    /// Column (within the operator output) to group by, if any.
    pub group_by: Option<usize>,
    /// Aggregates to compute.
    pub aggregates: Vec<Aggregate>,
}

impl AggrSpec {
    /// Ungrouped aggregation.
    pub fn global(aggregates: Vec<Aggregate>) -> Self {
        Self {
            group_by: None,
            aggregates,
        }
    }

    /// Grouped aggregation.
    pub fn grouped(group_by: usize, aggregates: Vec<Aggregate>) -> Self {
        Self {
            group_by: Some(group_by),
            aggregates,
        }
    }
}

/// Partial aggregation state for one group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupState {
    /// Row count.
    pub count: u64,
    /// One accumulator per aggregate.
    pub accumulators: Vec<Value>,
}

/// The result of an aggregation: group key (0 for global aggregation) mapped
/// to its aggregate values, ordered by key.
pub type AggrResult = BTreeMap<Value, GroupState>;

fn new_group_state(aggregates: &[Aggregate]) -> GroupState {
    GroupState {
        count: 0,
        accumulators: aggregates
            .iter()
            .map(|a| match a {
                Aggregate::Count | Aggregate::Sum(_) => 0,
                Aggregate::Min(_) => Value::MAX,
                Aggregate::Max(_) => Value::MIN,
            })
            .collect(),
    }
}

fn accumulate_row(entry: &mut GroupState, aggregates: &[Aggregate], batch: &Batch, row: usize) {
    entry.count += 1;
    for (acc, agg) in entry.accumulators.iter_mut().zip(aggregates.iter()) {
        match agg {
            Aggregate::Count => *acc += 1,
            Aggregate::Sum(c) => *acc += batch.value(row, *c),
            Aggregate::Min(c) => *acc = (*acc).min(batch.value(row, *c)),
            Aggregate::Max(c) => *acc = (*acc).max(batch.value(row, *c)),
        }
    }
}

fn merge_group_state(existing: &mut GroupState, other: &GroupState, aggregates: &[Aggregate]) {
    existing.count += other.count;
    for ((acc, other), agg) in existing
        .accumulators
        .iter_mut()
        .zip(other.accumulators.iter())
        .zip(aggregates.iter())
    {
        match agg {
            Aggregate::Count | Aggregate::Sum(_) => *acc += other,
            Aggregate::Min(_) => *acc = (*acc).min(*other),
            Aggregate::Max(_) => *acc = (*acc).max(*other),
        }
    }
}

/// Folds one batch into a running aggregation: applies `filter` (if any)
/// and accumulates every surviving row into `groups` under `spec`. The
/// incremental form of [`aggregate`], used by the morsel-driven
/// [`QueryTask`](crate::sched::QueryTask), which processes a bounded number
/// of batches per scheduler quantum and must carry the accumulator state
/// across yields.
pub fn fold_batch(
    groups: &mut AggrResult,
    batch: Batch,
    filter: Option<&Predicate>,
    spec: &AggrSpec,
) {
    let batch = match filter {
        Some(pred) => batch.filter(&pred.mask(&batch)),
        None => batch,
    };
    if batch.is_empty() {
        return;
    }
    for row in 0..batch.len() {
        let key = spec.group_by.map(|c| batch.value(row, c)).unwrap_or(0);
        let entry = groups
            .entry(key)
            .or_insert_with(|| new_group_state(&spec.aggregates));
        accumulate_row(entry, &spec.aggregates, &batch, row);
    }
}

/// Consumes `source`, applying `filter` (if any) and computing `spec`.
/// This is the Select → Project → Aggr pipeline of the microbenchmark
/// queries, fused into one pass over the batches.
pub fn aggregate(
    source: &mut dyn BatchSource,
    filter: Option<Predicate>,
    spec: &AggrSpec,
) -> Result<AggrResult> {
    let mut groups: AggrResult = BTreeMap::new();
    while let Some(batch) = source.next_batch()? {
        fold_batch(&mut groups, batch, filter.as_ref(), spec);
    }
    Ok(groups)
}

/// Merges partial aggregation results produced by parallel plan fragments
/// (the "XChg + upper Aggr" of Figure 8).
pub fn merge_aggregates(spec: &AggrSpec, partials: Vec<AggrResult>) -> AggrResult {
    let mut merged: AggrResult = BTreeMap::new();
    for partial in partials {
        for (key, state) in partial {
            match merged.get_mut(&key) {
                None => {
                    merged.insert(key, state);
                }
                Some(existing) => merge_group_state(existing, &state, &spec.aggregates),
            }
        }
    }
    merged
}

// ---------------------------------------------------------------------------
// Multi-key grouping
// ---------------------------------------------------------------------------

/// A multi-key grouped aggregation: group by the tuple of `keys` columns and
/// compute `aggregates` per group. The single-key [`AggrSpec`] is the
/// degenerate form the microbenchmarks keep using.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSpec {
    /// Columns (within the operator output) forming the composite group key.
    pub keys: Vec<usize>,
    /// Aggregates to compute per group.
    pub aggregates: Vec<Aggregate>,
}

/// The result of a multi-key aggregation: composite key (the key columns'
/// values, in `keys` order) mapped to its group state, ordered by key — the
/// ordered map makes the result independent of input delivery order.
pub type GroupedResult = BTreeMap<Vec<Value>, GroupState>;

/// Folds one batch into a running multi-key aggregation; the incremental
/// form of [`aggregate_grouped`], mirroring [`fold_batch`].
pub fn fold_batch_grouped(
    groups: &mut GroupedResult,
    batch: Batch,
    filter: Option<&Predicate>,
    spec: &GroupSpec,
) {
    let batch = match filter {
        Some(pred) => batch.filter(&pred.mask(&batch)),
        None => batch,
    };
    if batch.is_empty() {
        return;
    }
    for row in 0..batch.len() {
        let key: Vec<Value> = spec.keys.iter().map(|&c| batch.value(row, c)).collect();
        let entry = groups
            .entry(key)
            .or_insert_with(|| new_group_state(&spec.aggregates));
        accumulate_row(entry, &spec.aggregates, &batch, row);
    }
}

/// Consumes `source`, applying `filter` (if any) and computing the
/// multi-key aggregation `spec` — the GroupBy analogue of [`aggregate`].
pub fn aggregate_grouped(
    source: &mut dyn BatchSource,
    filter: Option<Predicate>,
    spec: &GroupSpec,
) -> Result<GroupedResult> {
    let mut groups: GroupedResult = BTreeMap::new();
    while let Some(batch) = source.next_batch()? {
        fold_batch_grouped(&mut groups, batch, filter.as_ref(), spec);
    }
    Ok(groups)
}

/// Merges partial multi-key aggregation results produced by parallel plan
/// fragments — the GroupBy analogue of [`merge_aggregates`].
pub fn merge_grouped(spec: &GroupSpec, partials: Vec<GroupedResult>) -> GroupedResult {
    let mut merged: GroupedResult = BTreeMap::new();
    for partial in partials {
        for (key, state) in partial {
            match merged.get_mut(&key) {
                None => {
                    merged.insert(key, state);
                }
                Some(existing) => merge_group_state(existing, &state, &spec.aggregates),
            }
        }
    }
    merged
}

// ---------------------------------------------------------------------------
// Top-k selection
// ---------------------------------------------------------------------------

/// Sort direction of a [`TopKSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest values first.
    Asc,
    /// Largest values first.
    Desc,
}

/// A top-k selection: keep the `k` rows with the smallest (`Asc`) or
/// largest (`Desc`) values in `column`, ties broken by full-row
/// lexicographic order so the result is a deterministic function of the row
/// multiset (out-of-order backends like Cooperative Scans cannot change it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKSpec {
    /// Sort column (within the operator output).
    pub column: usize,
    /// Number of rows to keep.
    pub k: usize,
    /// Sort direction.
    pub order: SortOrder,
}

impl TopKSpec {
    /// The total order top-k sorts by: the sort column in the requested
    /// direction, then the whole row ascending as a tie-break.
    pub fn compare(&self, a: &[Value], b: &[Value]) -> std::cmp::Ordering {
        let primary = match self.order {
            SortOrder::Asc => a[self.column].cmp(&b[self.column]),
            SortOrder::Desc => b[self.column].cmp(&a[self.column]),
        };
        primary.then_with(|| a.cmp(b))
    }
}

/// Streaming accumulator for a [`TopKSpec`]: rows are buffered and
/// periodically compacted (sort + truncate to `k`), so memory stays
/// O(k + batch) regardless of input size.
#[derive(Debug)]
pub struct TopKState {
    spec: TopKSpec,
    rows: Vec<Vec<Value>>,
}

impl TopKState {
    /// A fresh accumulator for `spec`.
    pub fn new(spec: TopKSpec) -> Self {
        Self {
            spec,
            rows: Vec::new(),
        }
    }

    fn compact(&mut self) {
        let spec = self.spec;
        self.rows.sort_unstable_by(|a, b| spec.compare(a, b));
        self.rows.truncate(spec.k);
    }

    /// Feeds one batch of candidate rows.
    pub fn push_batch(&mut self, batch: &Batch) {
        self.rows.extend(batch.to_rows());
        if self.rows.len() > self.spec.k.saturating_mul(2).max(1024) {
            self.compact();
        }
    }

    /// The final top-k rows, sorted by the spec's total order.
    pub fn finish(mut self) -> Vec<Vec<Value>> {
        self.compact();
        self.rows
    }
}

// ---------------------------------------------------------------------------
// Broadcast hash join
// ---------------------------------------------------------------------------

/// Accumulates the build side of a broadcast hash join: every build row is
/// hashed on its key column. Finishing sorts each bucket so probe output is
/// a deterministic function of the build row multiset.
#[derive(Debug)]
pub struct JoinBuild {
    key: usize,
    width: usize,
    map: HashMap<Value, Vec<Vec<Value>>>,
}

impl JoinBuild {
    /// A build accumulator over `width`-column rows keyed on column `key`.
    pub fn new(key: usize, width: usize) -> Self {
        assert!(key < width, "join key column out of range");
        Self {
            key,
            width,
            map: HashMap::new(),
        }
    }

    /// Hashes one batch of build rows into the table.
    pub fn push_batch(&mut self, batch: &Batch) {
        assert_eq!(batch.width(), self.width, "build batch width mismatch");
        for row in 0..batch.len() {
            let key = batch.value(row, self.key);
            let full: Vec<Value> = (0..self.width).map(|c| batch.value(row, c)).collect();
            self.map.entry(key).or_default().push(full);
        }
    }

    /// Freezes the build side into a probe-ready [`JoinTable`], sorting
    /// every bucket (build rows arrive in backend delivery order, which
    /// Cooperative Scans permutes; the sort restores determinism).
    pub fn finish(mut self) -> JoinTable {
        for bucket in self.map.values_mut() {
            bucket.sort_unstable();
        }
        JoinTable {
            width: self.width,
            map: self.map,
        }
    }
}

/// The frozen build side of a broadcast hash join, shared (`Arc`) by every
/// probe fragment of the plan.
#[derive(Debug)]
pub struct JoinTable {
    width: usize,
    map: HashMap<Value, Vec<Vec<Value>>>,
}

impl JoinTable {
    /// Number of build-side columns each output row carries.
    pub fn build_width(&self) -> usize {
        self.width
    }

    /// Total number of build rows in the table.
    pub fn build_rows(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Probes one batch: every probe row is matched against the table on
    /// `key_col` and emits one output row per matching build row (inner
    /// join), laid out as probe columns followed by build columns.
    pub fn probe(&self, batch: &Batch, key_col: usize) -> Batch {
        let probe_width = batch.width();
        let mut columns: Vec<Vec<Value>> = vec![Vec::new(); probe_width + self.width];
        for row in 0..batch.len() {
            let Some(bucket) = self.map.get(&batch.value(row, key_col)) else {
                continue;
            };
            for build_row in bucket {
                for (c, column) in columns.iter_mut().enumerate().take(probe_width) {
                    column.push(batch.value(row, c));
                }
                for (c, &v) in build_row.iter().enumerate() {
                    columns[probe_width + c].push(v);
                }
            }
        }
        Batch::new(columns)
    }
}

/// A [`BatchSource`] adapter running the probe side of a broadcast hash
/// join: applies the (pre-join) `filter` to each inner batch, probes the
/// shared [`JoinTable`] and yields the joined batches. Wrapping the normal
/// scan operator keeps the probe scan registered with the buffer-management
/// backend — it shares pages, prunes via zone maps and yields at batch
/// boundaries exactly like a plain scan.
pub struct JoinSource {
    inner: Box<dyn BatchSource + Send>,
    table: Arc<JoinTable>,
    key_col: usize,
    filter: Option<Predicate>,
}

impl JoinSource {
    /// Wraps `inner` (the probe scan) with a probe against `table` on
    /// `inner`'s column `key_col`; `filter` is applied before probing.
    pub fn new(
        inner: Box<dyn BatchSource + Send>,
        table: Arc<JoinTable>,
        key_col: usize,
        filter: Option<Predicate>,
    ) -> Self {
        Self {
            inner,
            table,
            key_col,
            filter,
        }
    }
}

impl std::fmt::Debug for JoinSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinSource")
            .field("key_col", &self.key_col)
            .field("build_width", &self.table.build_width())
            .finish()
    }
}

impl BatchSource for JoinSource {
    fn width(&self) -> usize {
        self.inner.width() + self.table.build_width()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let Some(batch) = self.inner.next_batch()? else {
            return Ok(None);
        };
        let batch = match &self.filter {
            Some(pred) => batch.filter(&pred.mask(&batch)),
            None => batch,
        };
        Ok(Some(self.table.probe(&batch, self.key_col)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source() -> VecSource {
        // Columns: key (0/1), value.
        VecSource::new(
            2,
            vec![
                Batch::new(vec![vec![0, 1, 0, 1], vec![10, 20, 30, 40]]),
                Batch::new(vec![vec![1, 0], vec![50, 60]]),
            ],
        )
    }

    #[test]
    fn predicate_masks_rows() {
        let p = Predicate::new(1, CompareOp::Gt, 25);
        let batch = Batch::new(vec![vec![0, 1, 0], vec![10, 30, 50]]);
        assert_eq!(p.mask(&batch), vec![false, true, true]);
        assert!(Predicate::new(0, CompareOp::Eq, 1).matches(1));
        assert!(Predicate::new(0, CompareOp::Le, 1).matches(1));
        assert!(!Predicate::new(0, CompareOp::Lt, 1).matches(1));
        assert!(Predicate::new(0, CompareOp::Ge, 1).matches(2));
    }

    #[test]
    fn global_aggregation_without_filter() {
        let spec = AggrSpec::global(vec![
            Aggregate::Count,
            Aggregate::Sum(1),
            Aggregate::Min(1),
            Aggregate::Max(1),
        ]);
        let result = aggregate(&mut source(), None, &spec).unwrap();
        assert_eq!(result.len(), 1);
        let g = &result[&0];
        assert_eq!(g.count, 6);
        assert_eq!(g.accumulators, vec![6, 210, 10, 60]);
    }

    #[test]
    fn grouped_aggregation_with_filter() {
        // Q1-style: filter value <= 50, group by key, sum(value) and count.
        let spec = AggrSpec::grouped(0, vec![Aggregate::Sum(1), Aggregate::Count]);
        let filter = Some(Predicate::new(1, CompareOp::Le, 50));
        let result = aggregate(&mut source(), filter, &spec).unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result[&0].accumulators, vec![40, 2]); // 10 + 30
        assert_eq!(result[&1].accumulators, vec![110, 3]); // 20 + 40 + 50
    }

    #[test]
    fn empty_source_gives_empty_result() {
        let mut empty = VecSource::new(2, vec![]);
        let spec = AggrSpec::global(vec![Aggregate::Count]);
        assert!(aggregate(&mut empty, None, &spec).unwrap().is_empty());
    }

    #[test]
    fn merge_aggregates_combines_partials() {
        let spec = AggrSpec::grouped(
            0,
            vec![Aggregate::Sum(1), Aggregate::Count, Aggregate::Min(1)],
        );
        let mut a = AggrResult::new();
        a.insert(
            1,
            GroupState {
                count: 2,
                accumulators: vec![30, 2, 10],
            },
        );
        let mut b = AggrResult::new();
        b.insert(
            1,
            GroupState {
                count: 1,
                accumulators: vec![5, 1, 5],
            },
        );
        b.insert(
            2,
            GroupState {
                count: 1,
                accumulators: vec![7, 1, 7],
            },
        );
        let merged = merge_aggregates(&spec, vec![a, b]);
        assert_eq!(merged[&1].count, 3);
        assert_eq!(merged[&1].accumulators, vec![35, 3, 5]);
        assert_eq!(merged[&2].accumulators, vec![7, 1, 7]);
    }

    #[test]
    fn multi_key_grouping_matches_hand_computation() {
        // Columns: key (0/1), value. Group by (key, value % nothing) —
        // use both columns as the composite key on a small source.
        let spec = GroupSpec {
            keys: vec![0, 1],
            aggregates: vec![Aggregate::Count, Aggregate::Sum(1)],
        };
        let mut src = VecSource::new(
            2,
            vec![Batch::new(vec![vec![0, 0, 1, 0], vec![10, 10, 10, 20]])],
        );
        let result = aggregate_grouped(&mut src, None, &spec).unwrap();
        assert_eq!(result.len(), 3);
        assert_eq!(result[&vec![0, 10]].accumulators, vec![2, 20]);
        assert_eq!(result[&vec![0, 20]].accumulators, vec![1, 20]);
        assert_eq!(result[&vec![1, 10]].accumulators, vec![1, 10]);
    }

    #[test]
    fn merge_grouped_equals_single_pass() {
        let spec = GroupSpec {
            keys: vec![0],
            aggregates: vec![Aggregate::Sum(1), Aggregate::Min(1), Aggregate::Max(1)],
        };
        let filter = Some(Predicate::new(1, CompareOp::Le, 50));
        let whole = aggregate_grouped(&mut source(), filter, &spec).unwrap();
        let mut p1 = VecSource::new(
            2,
            vec![Batch::new(vec![vec![0, 1, 0, 1], vec![10, 20, 30, 40]])],
        );
        let mut p2 = VecSource::new(2, vec![Batch::new(vec![vec![1, 0], vec![50, 60]])]);
        let merged = merge_grouped(
            &spec,
            vec![
                aggregate_grouped(&mut p1, filter, &spec).unwrap(),
                aggregate_grouped(&mut p2, filter, &spec).unwrap(),
            ],
        );
        assert_eq!(whole, merged);
    }

    #[test]
    fn top_k_is_arrival_order_independent() {
        let spec = TopKSpec {
            column: 1,
            k: 3,
            order: SortOrder::Desc,
        };
        let rows = [
            vec![1, 40],
            vec![2, 40], // tied on the sort column
            vec![3, 10],
            vec![4, 60],
            vec![5, 40],
        ];
        let run = |ordering: &[usize]| {
            let mut state = TopKState::new(spec);
            for &i in ordering {
                state.push_batch(&Batch::from_rows(2, &[rows[i].clone()]));
            }
            state.finish()
        };
        let forward = run(&[0, 1, 2, 3, 4]);
        let backward = run(&[4, 3, 2, 1, 0]);
        assert_eq!(forward, backward);
        // 60 first, then the tied 40s in full-row lexicographic order.
        assert_eq!(forward, vec![vec![4, 60], vec![1, 40], vec![2, 40]]);
    }

    #[test]
    fn top_k_compaction_keeps_results_exact() {
        let spec = TopKSpec {
            column: 0,
            k: 5,
            order: SortOrder::Asc,
        };
        let mut state = TopKState::new(spec);
        // Feed enough rows (descending) to trigger many compactions.
        for chunk in (0..5000i64).rev().collect::<Vec<_>>().chunks(97) {
            let rows: Vec<Vec<Value>> = chunk.iter().map(|&v| vec![v, v * 2]).collect();
            state.push_batch(&Batch::from_rows(2, &rows));
        }
        let result = state.finish();
        let expected: Vec<Vec<Value>> = (0..5).map(|v| vec![v, v * 2]).collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn top_k_shorter_input_returns_everything_sorted() {
        let spec = TopKSpec {
            column: 0,
            k: 10,
            order: SortOrder::Asc,
        };
        let mut state = TopKState::new(spec);
        state.push_batch(&Batch::new(vec![vec![3, 1, 2]]));
        assert_eq!(state.finish(), vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn join_probe_emits_probe_then_build_columns() {
        // Build: (key, name) — two rows share key 7 (a one-to-many join).
        let mut build = JoinBuild::new(0, 2);
        build.push_batch(&Batch::new(vec![vec![7, 8, 7], vec![70, 80, 71]]));
        let table = build.finish();
        assert_eq!(table.build_width(), 2);
        assert_eq!(table.build_rows(), 3);
        // Probe: (key, qty); key 9 has no match and is dropped.
        let probe = Batch::new(vec![vec![7, 9, 8], vec![1, 2, 3]]);
        let out = table.probe(&probe, 0);
        assert_eq!(out.width(), 4);
        // Buckets are sorted: (7,70) before (7,71).
        assert_eq!(
            out.to_rows(),
            vec![vec![7, 1, 7, 70], vec![7, 1, 7, 71], vec![8, 3, 8, 80],]
        );
    }

    #[test]
    fn join_build_bucket_order_is_delivery_order_independent() {
        let rows = [vec![1, 30], vec![1, 10], vec![1, 20]];
        let finish = |order: &[usize]| {
            let mut build = JoinBuild::new(0, 2);
            for &i in order {
                build.push_batch(&Batch::from_rows(2, &[rows[i].clone()]));
            }
            build.finish()
        };
        let probe = Batch::new(vec![vec![1]]);
        let a = finish(&[0, 1, 2]).probe(&probe, 0);
        let b = finish(&[2, 0, 1]).probe(&probe, 0);
        assert_eq!(a, b);
        assert_eq!(a.column(2), &[10, 20, 30]);
    }

    #[test]
    fn join_source_filters_before_probing() {
        let mut build = JoinBuild::new(0, 1);
        build.push_batch(&Batch::new(vec![vec![0, 1]]));
        let table = Arc::new(build.finish());
        // Inner: (key, value); filter value > 15 before the probe.
        let inner = VecSource::new(2, vec![Batch::new(vec![vec![0, 1, 2], vec![10, 20, 30]])]);
        let mut source = JoinSource::new(
            Box::new(inner),
            table,
            0,
            Some(Predicate::new(1, CompareOp::Gt, 15)),
        );
        assert_eq!(source.width(), 3);
        let batch = source.next_batch().unwrap().unwrap();
        // Row (0,10) is filtered out; row (2,30) has no build match.
        assert_eq!(batch.to_rows(), vec![vec![1, 20, 1]]);
        assert!(source.next_batch().unwrap().is_none());
    }

    #[test]
    fn merging_partials_equals_single_pass() {
        let spec = AggrSpec::grouped(0, vec![Aggregate::Sum(1), Aggregate::Max(1)]);
        let whole = aggregate(&mut source(), None, &spec).unwrap();
        // Split the same data into two sources and merge.
        let part1 = VecSource::new(
            2,
            vec![Batch::new(vec![vec![0, 1, 0, 1], vec![10, 20, 30, 40]])],
        );
        let part2 = VecSource::new(2, vec![Batch::new(vec![vec![1, 0], vec![50, 60]])]);
        let mut p1 = part1;
        let mut p2 = part2;
        let merged = merge_aggregates(
            &spec,
            vec![
                aggregate(&mut p1, None, &spec).unwrap(),
                aggregate(&mut p2, None, &spec).unwrap(),
            ],
        );
        assert_eq!(whole, merged);
    }
}
