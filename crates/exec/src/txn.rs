//! Snapshot-isolated update transactions over stacked PDTs.
//!
//! Vectorwise gives every transaction a consistent pair of (storage
//! snapshot, PDT layer stack) and keeps its own updates in a tiny
//! transaction-private PDT on top of the shared layers (Section 2.1; Héman
//! et al., SIGMOD 2010). The engine mirrors that:
//!
//! * [`Engine::begin`](crate::engine::Engine::begin) returns a [`Txn`].
//!   The first touch of each table captures a [`TablePin`] — the table's
//!   published `(Snapshot, PdtStack)` pair plus its commit sequence number —
//!   and stacks a fresh private PDT on top of it. Reads and scans inside the
//!   transaction compose the shared layers with the private one; nothing a
//!   concurrent committer or checkpointer does is ever visible.
//! * [`Txn::commit`] uses **first-committer-wins** conflict detection: if
//!   any written table's commit sequence advanced since the pin was taken,
//!   the commit fails with
//!   [`Error::TransactionConflict`]
//!   and the private updates are discarded. Otherwise each private layer is
//!   folded into the table's shared top layer
//!   ([`PdtStack::absorb_top`]) — the "propagate" step of stacked PDTs.
//! * Scans never block writers and writers never block scans: the published
//!   state is an immutable `Arc` pair swapped under a short mutex, so a
//!   scan pins it with two reference-count bumps and merges on the fly.
//!
//! Background checkpoints interleave freely with transactions: a checkpoint
//! freezes the current shared layers, pushes a fresh top layer for
//! commits that arrive while it materializes, and atomically swaps in the
//! new stable image with exactly those during-checkpoint layers on top (see
//! [`Engine::checkpoint`](crate::engine::Engine::checkpoint)). A
//! transaction's RID space is unchanged by a checkpoint, so transactions
//! spanning one commit normally.

use std::collections::BTreeMap;
use std::sync::Arc;

use scanshare_common::{Error, Result, Rid, TableId};
use scanshare_pdt::pdt::Pdt;
use scanshare_pdt::stack::PdtStack;
use scanshare_pdt::wal::CommitTableRecord;
use scanshare_storage::datagen::Value;
use scanshare_storage::snapshot::Snapshot;

use crate::engine::Engine;
use crate::query::Query;

/// A consistent view of one table: the storage snapshot and PDT layer stack
/// a scan or transaction works against, captured atomically from the
/// engine's published state.
///
/// Pins are cheap (two `Arc` clones) and immutable: updates committed after
/// the pin was taken swap the engine's published `Arc`s and never mutate the
/// pinned ones.
#[derive(Debug, Clone)]
pub struct TablePin {
    /// The pinned table.
    pub table: TableId,
    /// The stable storage image the stack is anchored on.
    pub snapshot: Arc<Snapshot>,
    /// The differential-update layers visible to this pin (bottom layer
    /// anchored directly on `snapshot`).
    pub stack: Arc<PdtStack>,
    /// The table's commit sequence number when the pin was taken; used for
    /// first-committer-wins conflict detection.
    pub commit_seq: u64,
    /// The table's checkpoint epoch when the pin was taken.
    pub epoch: u64,
}

impl TablePin {
    /// Number of rows visible through this pin.
    pub fn visible_rows(&self) -> u64 {
        self.stack.visible_count(self.snapshot.stable_tuples())
    }

    /// Flattens the pinned layer stack into a single equivalent [`Pdt`]
    /// anchored directly on the pinned snapshot (what a scan operator merges
    /// with).
    pub fn flatten(&self) -> Result<Pdt> {
        self.stack.flatten(self.snapshot.stable_tuples())
    }
}

/// One table touched by a transaction: the captured base pin plus a working
/// stack whose top layer holds the transaction's private updates.
#[derive(Debug)]
struct TxnTable {
    base: TablePin,
    /// `base.stack` with one extra (private) top layer.
    work: PdtStack,
}

/// A snapshot-isolated update transaction; created with
/// [`Engine::begin`](crate::engine::Engine::begin). See the [module
/// docs](self) for the isolation and commit semantics.
///
/// Dropping a transaction without committing discards its updates
/// (rollback is the default).
#[derive(Debug)]
#[must_use = "a Txn's updates are discarded unless `.commit()` is called"]
pub struct Txn {
    engine: Arc<Engine>,
    /// Touched tables in id order (which is also the commit lock order).
    tables: BTreeMap<TableId, TxnTable>,
}

impl Txn {
    pub(crate) fn new(engine: Arc<Engine>) -> Self {
        Self {
            engine,
            tables: BTreeMap::new(),
        }
    }

    /// The table state this transaction works on, captured from the engine
    /// on first touch.
    fn table_mut(&mut self, table: TableId) -> Result<&mut TxnTable> {
        if !self.tables.contains_key(&table) {
            let base = self.engine.table_pin(table)?;
            let mut work = (*base.stack).clone();
            work.push_layer(Pdt::new(work.column_count()));
            self.tables.insert(table, TxnTable { base, work });
        }
        Ok(self.tables.get_mut(&table).expect("inserted above"))
    }

    /// Number of rows visible to this transaction (its own uncommitted
    /// updates included).
    pub fn visible_rows(&mut self, table: TableId) -> Result<u64> {
        let t = self.table_mut(table)?;
        Ok(t.work.visible_count(t.base.snapshot.stable_tuples()))
    }

    /// Inserts a row at visible position `rid` of this transaction's view
    /// (use [`Txn::visible_rows`] to append at the end).
    pub fn insert(&mut self, table: TableId, rid: u64, row: Vec<Value>) -> Result<()> {
        let t = self.table_mut(table)?;
        let stable = t.base.snapshot.stable_tuples();
        t.work.insert(Rid::new(rid), row, stable)
    }

    /// Deletes the visible row at `rid` of this transaction's view.
    pub fn delete(&mut self, table: TableId, rid: u64) -> Result<()> {
        let t = self.table_mut(table)?;
        let stable = t.base.snapshot.stable_tuples();
        t.work.delete(Rid::new(rid), stable)
    }

    /// Updates column `col` of the visible row at `rid` of this
    /// transaction's view.
    pub fn modify(&mut self, table: TableId, rid: u64, col: usize, value: Value) -> Result<()> {
        let t = self.table_mut(table)?;
        let stable = t.base.snapshot.stable_tuples();
        t.work.modify(Rid::new(rid), col, value, stable)
    }

    /// A pin of this transaction's current view of `table`: the base
    /// snapshot and shared layers plus a copy of the private layer. Scans
    /// opened from it see the transaction's own uncommitted updates.
    pub fn pin(&mut self, table: TableId) -> Result<TablePin> {
        let t = self.table_mut(table)?;
        Ok(TablePin {
            table,
            snapshot: Arc::clone(&t.base.snapshot),
            stack: Arc::new(t.work.clone()),
            commit_seq: t.base.commit_seq,
            epoch: t.base.epoch,
        })
    }

    /// Starts building a query that reads this transaction's view of
    /// `table` (shared layers + private updates), like
    /// [`Engine::query`](crate::engine::Engine::query) does for the
    /// committed state.
    pub fn query(&mut self, table: TableId) -> Result<Query> {
        let pin = self.pin(table)?;
        Ok(Query::with_pin(Arc::clone(&self.engine), table, pin))
    }

    /// Whether the transaction wrote anything.
    pub fn is_read_only(&self) -> bool {
        self.tables.iter().all(|(_, t)| t.work.top().is_empty())
    }

    /// Commits the transaction with first-committer-wins semantics: for
    /// every *written* table, if any other transaction (or an engine-level
    /// auto-commit update, or a storage bulk append the engine adopted)
    /// committed to it since this transaction first touched it, the whole
    /// commit fails with
    /// [`Error::TransactionConflict`]
    /// and no table is modified. Tables the transaction only read never
    /// conflict.
    ///
    /// On success each private layer is folded into its table's shared top
    /// layer; scans pinned before the commit keep their view.
    pub fn commit(mut self) -> Result<()> {
        // Extract the private layers, keeping only written tables.
        let mut written: Vec<(TableId, TablePin, Pdt)> = Vec::new();
        for (table, mut t) in std::mem::take(&mut self.tables) {
            let private = t.work.pop_layer().expect("work stack has a private layer");
            if !private.is_empty() {
                written.push((table, t.base, private));
            }
        }
        if written.is_empty() {
            return Ok(());
        }

        // Lock every written table's state in table-id order (`written` is
        // BTreeMap-ordered), validate all sequence numbers, then apply —
        // all-or-nothing.
        let updates: Vec<_> = written
            .iter()
            .map(|(table, _, _)| self.engine.table_updates(*table))
            .collect::<Result<_>>()?;
        let mut guards: Vec<_> = updates.iter().map(|u| u.state().lock()).collect();
        for ((table, base, _), guard) in written.iter().zip(guards.iter_mut()) {
            self.engine.sync_state_with_storage(*table, guard)?;
            if guard.commit_seq != base.commit_seq {
                return Err(Error::TransactionConflict(format!(
                    "table {table}: commit sequence advanced from {} to {} since the \
                     transaction began (first committer wins)",
                    base.commit_seq, guard.commit_seq
                )));
            }
        }
        // Log the write sets before applying them, still under the state
        // locks so the WAL order matches the commit-sequence order. The
        // fsync (subject to group commit) happens after the locks are
        // released.
        let wal_seq = if self.engine.is_durable() {
            let records: Vec<CommitTableRecord> = written
                .iter()
                .zip(guards.iter())
                .map(|((table, _, private), guard)| {
                    let stable = guard.snapshot.stable_tuples();
                    CommitTableRecord {
                        table: *table,
                        commit_seq: guard.commit_seq + 1,
                        visible_before: guard.stack.visible_count(stable),
                        pdt: private.clone(),
                    }
                })
                .collect();
            self.engine.wal_append_commit(&records)?
        } else {
            None
        };
        for ((_, _, private), guard) in written.iter().zip(guards.iter_mut()) {
            // The conflict check passed, so the table's visible stream is
            // exactly the one the private layer's positions refer to — even
            // if a checkpoint swapped the underlying representation in the
            // meantime (a checkpoint changes the anchoring, never the
            // stream).
            let stable = guard.snapshot.stable_tuples();
            let stack = Arc::make_mut(&mut guard.stack);
            stack.absorb_top(private, stable)?;
            guard.commit_seq += 1;
        }
        drop(guards);
        self.engine.wal_commit_sync(wal_seq)
    }

    /// Discards the transaction's updates (equivalent to dropping it).
    pub fn rollback(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{AggrSpec, Aggregate};
    use scanshare_common::{PolicyKind, ScanShareConfig};
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::datagen::DataGen;
    use scanshare_storage::storage::Storage;
    use scanshare_storage::table::TableSpec;

    fn engine(tuples: u64) -> (Arc<Engine>, TableId) {
        let storage = Storage::with_seed(1024, 500, 5);
        let spec = TableSpec::new(
            "t",
            vec![
                ColumnSpec::with_width("k", ColumnType::Int64, 8.0),
                ColumnSpec::with_width("v", ColumnType::Int64, 4.0),
            ],
            tuples,
        );
        let table = storage
            .create_table_with_data(
                spec,
                vec![
                    DataGen::Sequential { start: 0, step: 1 },
                    DataGen::Constant(7),
                ],
            )
            .unwrap();
        let config = ScanShareConfig {
            page_size_bytes: 1024,
            chunk_tuples: 500,
            buffer_pool_bytes: 64 * 1024,
            policy: PolicyKind::Lru,
            ..Default::default()
        };
        (Engine::new(storage, config).unwrap(), table)
    }

    fn count(engine: &Arc<Engine>, table: TableId) -> u64 {
        engine
            .query(table)
            .columns(["k"])
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .run()
            .unwrap()
            .get(&0)
            .map(|g| g.count)
            .unwrap_or(0)
    }

    #[test]
    fn uncommitted_updates_are_private() {
        let (engine, table) = engine(100);
        let mut txn = engine.begin();
        txn.insert(table, 0, vec![-1, -1]).unwrap();
        txn.delete(table, 50).unwrap();
        assert_eq!(txn.visible_rows(table).unwrap(), 100);
        // The engine's committed state is untouched.
        assert_eq!(engine.visible_rows(table).unwrap(), 100);
        assert_eq!(count(&engine, table), 100);
        // The transaction's own queries see the private updates.
        let rows = txn
            .query(table)
            .unwrap()
            .columns(["k", "v"])
            .range(..2)
            .in_order()
            .rows()
            .unwrap();
        assert_eq!(rows[0], vec![-1, -1]);
        txn.commit().unwrap();
        assert_eq!(engine.visible_rows(table).unwrap(), 100);
        assert_eq!(count(&engine, table), 100);
    }

    #[test]
    fn first_committer_wins() {
        let (engine, table) = engine(100);
        let mut a = engine.begin();
        let mut b = engine.begin();
        a.modify(table, 0, 1, 111).unwrap();
        b.modify(table, 0, 1, 222).unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert!(matches!(err, Error::TransactionConflict(_)));
        // The first committer's value survived.
        let rows = engine
            .query(table)
            .columns(["v"])
            .range(..1)
            .rows()
            .unwrap();
        assert_eq!(rows[0], vec![111]);
    }

    #[test]
    fn read_only_transactions_never_conflict() {
        let (engine, table) = engine(100);
        let mut reader = engine.begin();
        assert_eq!(reader.visible_rows(table).unwrap(), 100);
        let mut writer = engine.begin();
        writer.delete(table, 0).unwrap();
        writer.commit().unwrap();
        assert!(reader.is_read_only());
        // Snapshot isolation: the reader still sees its begin state...
        assert_eq!(reader.visible_rows(table).unwrap(), 100);
        // ...and commits cleanly despite the interleaved writer.
        reader.commit().unwrap();
    }

    #[test]
    fn autocommit_updates_conflict_with_open_transactions() {
        let (engine, table) = engine(100);
        let mut txn = engine.begin();
        txn.delete(table, 1).unwrap();
        engine.update_value(table, 0, 1, 9).unwrap();
        assert!(matches!(
            txn.commit().unwrap_err(),
            Error::TransactionConflict(_)
        ));
    }

    #[test]
    fn rollback_discards_updates() {
        let (engine, table) = engine(50);
        let mut txn = engine.begin();
        txn.delete(table, 0).unwrap();
        txn.rollback();
        assert_eq!(engine.visible_rows(table).unwrap(), 50);
        // Dropping without commit is a rollback too, and does not bump the
        // commit sequence: a later transaction commits cleanly.
        let mut dropped = engine.begin();
        dropped.delete(table, 0).unwrap();
        drop(dropped);
        let mut txn = engine.begin();
        txn.insert(table, 0, vec![1, 2]).unwrap();
        txn.commit().unwrap();
        assert_eq!(engine.visible_rows(table).unwrap(), 51);
    }

    #[test]
    fn scans_pin_their_begin_snapshot() {
        let (engine, table) = engine(200);
        let pin = engine.table_pin(table).unwrap();
        let mut txn = engine.begin();
        txn.delete(table, 0).unwrap();
        txn.commit().unwrap();
        // The pre-commit pin still sees 200 rows; a fresh pin sees 199.
        assert_eq!(pin.visible_rows(), 200);
        assert_eq!(engine.table_pin(table).unwrap().visible_rows(), 199);
        assert_eq!(pin.flatten().unwrap().visible_count(200), 200);
    }

    #[test]
    fn multi_table_commits_are_atomic() {
        let (engine, t1) = engine(100);
        let storage = Arc::clone(engine.storage());
        let t2 = storage
            .create_table_with_data(
                TableSpec::new(
                    "u",
                    vec![ColumnSpec::with_width("x", ColumnType::Int64, 8.0)],
                    40,
                ),
                vec![DataGen::Constant(1)],
            )
            .unwrap();
        // A competing single-table commit on t2 lands first.
        let mut both = engine.begin();
        both.delete(t1, 0).unwrap();
        both.delete(t2, 0).unwrap();
        engine.delete_row(t2, 5).unwrap();
        assert!(matches!(
            both.commit().unwrap_err(),
            Error::TransactionConflict(_)
        ));
        // Neither table saw the conflicted transaction's updates.
        assert_eq!(engine.visible_rows(t1).unwrap(), 100);
        assert_eq!(engine.visible_rows(t2).unwrap(), 39);
    }
}
