//! Deprecated free-function front end to the [`Query`](crate::query::Query)
//! builder.
//!
//! Intra-query parallelism (XChg-style static range partitioning, Figure 8 /
//! Equation 1) now lives in [`Query::run`](crate::query::Query::run); this
//! module keeps the old seven-positional-argument entry point alive as a
//! thin shim for downstream code that has not migrated yet.

use std::sync::Arc;

use scanshare_common::{Result, TableId, TupleRange};

use crate::engine::Engine;
use crate::ops::{AggrResult, AggrSpec, Predicate};

/// Runs `Select(filter) -> Aggr(spec)` over a scan of `columns` of `table`
/// restricted to `rid_range`, parallelized over `threads` workers.
#[deprecated(
    since = "0.1.0",
    note = "use the builder API: `engine.query(table).columns(...).tuple_range(...)\
            .filter(...).aggregate(...).parallelism(...).run()`"
)]
pub fn parallel_scan_aggregate(
    engine: &Arc<Engine>,
    table: TableId,
    columns: &[&str],
    rid_range: TupleRange,
    threads: usize,
    filter: Option<Predicate>,
    spec: &AggrSpec,
) -> Result<AggrResult> {
    let mut query = engine
        .query(table)
        .columns(columns.iter().copied())
        .tuple_range(rid_range)
        .aggregate(spec.clone())
        .parallelism(threads);
    if let Some(filter) = filter {
        query = query.filter(filter);
    }
    query.run()
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use crate::ops::{Aggregate, CompareOp};
    use scanshare_common::{PolicyKind, ScanShareConfig};
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::datagen::DataGen;
    use scanshare_storage::storage::Storage;
    use scanshare_storage::table::TableSpec;

    #[test]
    fn the_shim_matches_the_builder() {
        let storage = Storage::with_seed(1024, 500, 13);
        let spec = TableSpec::new(
            "t",
            vec![
                ColumnSpec::with_width("k", ColumnType::Int64, 8.0),
                ColumnSpec::with_width("v", ColumnType::Decimal, 4.0),
            ],
            4000,
        );
        let table = storage
            .create_table_with_data(
                spec,
                vec![
                    DataGen::Sequential { start: 0, step: 1 },
                    DataGen::Uniform { min: 0, max: 100 },
                ],
            )
            .unwrap();
        let config = ScanShareConfig {
            page_size_bytes: 1024,
            chunk_tuples: 500,
            buffer_pool_bytes: 256 * 1024,
            policy: PolicyKind::Pbm,
            ..Default::default()
        };
        let engine = Engine::new(storage, config).unwrap();
        let aggr = AggrSpec::global(vec![Aggregate::Count, Aggregate::Sum(1)]);
        let filter = Predicate::new(1, CompareOp::Le, 50);

        let legacy = parallel_scan_aggregate(
            &engine,
            table,
            &["k", "v"],
            TupleRange::new(100, 3900),
            4,
            Some(filter),
            &aggr,
        )
        .unwrap();
        let builder = engine
            .query(table)
            .columns(["k", "v"])
            .range(100..3900)
            .filter(filter)
            .aggregate(aggr)
            .parallelism(4)
            .run()
            .unwrap();
        assert_eq!(legacy, builder);
    }
}
