//! Intra-query parallelism: XChg-style range partitioning.
//!
//! Vectorwise parallelizes a plan by duplicating the subtree below an
//! exchange (XChg) operator and statically splitting the scanned RID range
//! over the workers (Figure 8 / Equation 1 of the paper). The partial
//! aggregates of the workers are merged by an upper aggregation.
//!
//! [`parallel_scan_aggregate`] reproduces exactly that plan shape: it splits
//! the range with [`TupleRange::split_even`], runs one scan + filter +
//! aggregate pipeline per thread against the shared engine (and therefore
//! the shared buffer manager), and merges the partial results.

use std::sync::Arc;

use scanshare_common::{Result, TableId, TupleRange};

use crate::engine::Engine;
use crate::ops::{aggregate, merge_aggregates, AggrResult, AggrSpec, Predicate};

/// Runs `Select(filter) -> Aggr(spec)` over a scan of `columns` of `table`
/// restricted to `rid_range`, parallelized over `threads` workers using
/// static range partitioning (Equation 1). With `threads == 1` the plan is
/// executed inline.
pub fn parallel_scan_aggregate(
    engine: &Arc<Engine>,
    table: TableId,
    columns: &[&str],
    rid_range: TupleRange,
    threads: usize,
    filter: Option<Predicate>,
    spec: &AggrSpec,
) -> Result<AggrResult> {
    assert!(threads > 0, "at least one worker is required");
    if threads == 1 || rid_range.len() < threads as u64 {
        let mut scan = engine.scan(table, columns, rid_range)?;
        return aggregate(scan.as_mut(), filter, spec);
    }

    let parts = rid_range.split_even(threads);
    let partials: Vec<Result<AggrResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .filter(|part| !part.is_empty())
            .map(|part| {
                let engine = Arc::clone(engine);
                let columns: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
                let spec = spec.clone();
                let part = *part;
                scope.spawn(move || {
                    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
                    let mut scan = engine.scan(table, &column_refs, part)?;
                    aggregate(scan.as_mut(), filter, &spec)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
    });

    let mut results = Vec::with_capacity(partials.len());
    for partial in partials {
        results.push(partial?);
    }
    Ok(merge_aggregates(spec, results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Aggregate, CompareOp};
    use scanshare_common::{PolicyKind, ScanShareConfig};
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::datagen::DataGen;
    use scanshare_storage::storage::Storage;
    use scanshare_storage::table::TableSpec;

    fn engine(policy: PolicyKind, tuples: u64) -> (Arc<Engine>, TableId) {
        let storage = Storage::with_seed(1024, 500, 13);
        let spec = TableSpec::new(
            "lineitem",
            vec![
                ColumnSpec::with_width("l_flag", ColumnType::Dict { cardinality: 4 }, 1.0),
                ColumnSpec::with_width("l_quantity", ColumnType::Decimal, 4.0),
                ColumnSpec::with_width("l_price", ColumnType::Decimal, 4.0),
            ],
            tuples,
        );
        let table = storage
            .create_table_with_data(
                spec,
                vec![
                    DataGen::Cyclic { period: 4, min: 0, max: 3 },
                    DataGen::Uniform { min: 1, max: 50 },
                    DataGen::Uniform { min: 100, max: 10_000 },
                ],
            )
            .unwrap();
        let config = ScanShareConfig {
            page_size_bytes: 1024,
            chunk_tuples: 500,
            buffer_pool_bytes: 256 * 1024,
            policy,
            threads_per_query: 4,
            ..Default::default()
        };
        (Engine::new(storage, config).unwrap(), table)
    }

    fn q1_spec() -> AggrSpec {
        AggrSpec::grouped(0, vec![Aggregate::Sum(1), Aggregate::Sum(2), Aggregate::Count])
    }

    #[test]
    fn parallel_results_match_sequential() {
        for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
            let (engine, table) = engine(policy, 6000);
            let cols = ["l_flag", "l_quantity", "l_price"];
            let filter = Some(Predicate::new(1, CompareOp::Le, 24));
            let sequential = parallel_scan_aggregate(
                &engine,
                table,
                &cols,
                TupleRange::new(0, 6000),
                1,
                filter,
                &q1_spec(),
            )
            .unwrap();
            let parallel = parallel_scan_aggregate(
                &engine,
                table,
                &cols,
                TupleRange::new(0, 6000),
                4,
                filter,
                &q1_spec(),
            )
            .unwrap();
            assert_eq!(sequential, parallel, "policy {policy}");
            assert_eq!(sequential.len(), 4, "four flag groups");
            let total: u64 = sequential.values().map(|g| g.count).sum();
            assert!(total > 0 && total < 6000, "the filter removes some rows");
        }
    }

    #[test]
    fn all_policies_compute_identical_answers() {
        let mut reference: Option<AggrResult> = None;
        for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::Opt, PolicyKind::CScan] {
            let (engine, table) = engine(policy, 5000);
            let result = parallel_scan_aggregate(
                &engine,
                table,
                &["l_flag", "l_quantity", "l_price"],
                TupleRange::new(500, 4500),
                4,
                None,
                &q1_spec(),
            )
            .unwrap();
            match &reference {
                None => reference = Some(result),
                Some(expected) => assert_eq!(expected, &result, "policy {policy} diverged"),
            }
        }
    }

    #[test]
    fn equation_1_partitioning_covers_range_without_overlap() {
        let parts = TupleRange::new(0, 1000).split_even(8);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts[0], TupleRange::new(0, 125));
        assert_eq!(parts[7], TupleRange::new(875, 1000));
        let covered: u64 = parts.iter().map(TupleRange::len).sum();
        assert_eq!(covered, 1000);
    }

    #[test]
    fn single_threaded_fallback_for_tiny_ranges() {
        let (engine, table) = engine(PolicyKind::Pbm, 100);
        let result = parallel_scan_aggregate(
            &engine,
            table,
            &["l_flag", "l_quantity", "l_price"],
            TupleRange::new(0, 3),
            8,
            None,
            &AggrSpec::global(vec![Aggregate::Count]),
        )
        .unwrap();
        assert_eq!(result[&0].count, 3);
    }
}
