//! Executes a [`WorkloadSpec`] against a live [`Engine`].
//!
//! The `workload` crate's multi-stream specifications (microbenchmark and
//! TPC-H-like) used to be executable only by the discrete-event simulator;
//! the driver closes that gap. Each stream becomes one cooperative session
//! task on the [`TaskScheduler`] — a fixed
//! pool of [`ScanShareConfig::scheduler_workers`](scanshare_common::ScanShareConfig::scheduler_workers)
//! OS threads — with every query lowered from its
//! [`QuerySpec`]/[`ScanSpec`] onto the
//! builder [`Query`](crate::query::Query) API against the shared engine —
//! and therefore the shared, concurrently-driven buffer-management backend.
//! The driver is deliberately a *thin client* of the scheduler: the same
//! session-task machinery serves the `scanshare-serve` network frontend,
//! where thousands of logical sessions multiplex onto the same pool.
//!
//! Two clocks are reported side by side:
//!
//! * **wall-clock** throughput (`queries/s`, `tuples/s`) and per-query
//!   latency percentiles — the real cost of running the streams, including
//!   every lock the backend takes. This is the metric the
//!   `throughput_scaling` figure sweeps across
//!   [`ScanShareConfig::pool_shards`](scanshare_common::ScanShareConfig);
//! * the engine's **virtual** elapsed time plus the aggregated
//!   [`BufferStats`]/[`IoStats`] — the paper's deterministic I/O-volume
//!   accounting, unchanged by sharding or scheduling.

use std::sync::Arc;
use std::time::{Duration, Instant};

use scanshare_common::{Error, Result, TupleRange, VirtualDuration};
use scanshare_core::metrics::BufferStats;
use scanshare_iosim::{IoLatency, IoStats};
use scanshare_workload::spec::{
    JoinSpec, QuerySpec, ScanSpec, UpdateOp, UpdateOpGen, UpdateStreamSpec, WorkloadSpec,
};

use std::collections::VecDeque;

use scanshare_common::sync::Mutex;
use scanshare_common::TableId;

use scanshare_storage::zone::ZoneOp;

use crate::engine::Engine;
use crate::ops::{AggrSpec, Aggregate, CompareOp, Predicate};
use crate::sched::{Task, TaskHandle, TaskOutcome, TaskScheduler, TaskStep};

/// Runs [`WorkloadSpec`]s against an [`Engine`], one cooperative session
/// task per stream on a morsel-driven scheduler.
#[derive(Debug)]
pub struct WorkloadDriver {
    engine: Arc<Engine>,
    parallelism_per_query: usize,
}

/// A per-stream failure surfaced in the report instead of aborting the
/// workload: the affected stream stops early, the remaining streams run to
/// completion, and the caller decides how to react. Two shapes exist —
/// typed errors the stream returned (Cooperative Scans starvation,
/// [`Error::ScanStarved`], and device I/O faults, [`Error::Io`]) and
/// panics caught from the stream's session task, which would previously
/// abort the entire workload run.
#[derive(Debug, Clone)]
pub enum StreamError {
    /// The stream's query returned a per-stream typed error.
    Failed {
        /// Label of the stream that failed (from its
        /// [`StreamSpec`](scanshare_workload::spec::StreamSpec)).
        stream: String,
        /// The typed error that ended the stream.
        error: Error,
    },
    /// The stream's session task panicked; the panic was caught on the
    /// scheduler worker instead of propagating into the driver.
    Panicked {
        /// Label of the stream that panicked.
        stream: String,
        /// The panic payload, when it was a string (the common case).
        message: String,
    },
}

impl StreamError {
    /// Label of the stream this failure ended.
    pub fn stream(&self) -> &str {
        match self {
            StreamError::Failed { stream, .. } | StreamError::Panicked { stream, .. } => stream,
        }
    }

    /// The typed error, for failures that have one (`None` for panics).
    pub fn error(&self) -> Option<&Error> {
        match self {
            StreamError::Failed { error, .. } => Some(error),
            StreamError::Panicked { .. } => None,
        }
    }

    /// Whether this failure was a caught panic.
    pub fn is_panic(&self) -> bool {
        matches!(self, StreamError::Panicked { .. })
    }
}

/// How one stream ended ahead of schedule: with a typed error from its own
/// queries, or with a panic caught on the scheduler worker that was
/// stepping it. Panics are always stream-local — a panicking stream must
/// never take the rest of the workload down with it.
enum StreamEnd {
    Error(Error),
    Panic(String),
}

/// Whether an error is a per-stream outcome (reported in
/// [`WorkloadReport::stream_errors`]) rather than a workload-level failure
/// (returned as `Err` from [`WorkloadDriver::run`]). Scheduling starvation
/// and device I/O faults end one stream; everything else fails the run.
fn is_stream_local(error: &Error) -> bool {
    matches!(error, Error::ScanStarved(_) | Error::Io(_))
}

/// What one driver run measured.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Name of the executed workload.
    pub workload: String,
    /// Number of concurrent streams (= driver threads).
    pub streams: usize,
    /// Queries executed across all streams.
    pub queries: u64,
    /// Tuples scanned across all *completed* queries (per the specs' scan
    /// ranges); queries a stream never ran because it ended early on a
    /// [`StreamError`] do not count.
    pub tuples: u64,
    /// Wall-clock time from the first query starting to the last finishing.
    pub wall: Duration,
    /// Virtual time the engine's clock advanced during the run.
    pub virtual_elapsed: VirtualDuration,
    /// Per-query wall-clock latencies, sorted ascending.
    pub latencies: Vec<Duration>,
    /// Buffer-manager counters accumulated during the run (aggregated
    /// across every pool shard).
    pub buffer: BufferStats,
    /// I/O-device counters accumulated during the run.
    pub io: IoStats,
    /// Per-kind wall-clock latency percentiles (p50/p95/p99) measured by
    /// the device, for devices that measure them: the file-backed device
    /// reports real `pread` timings, the simulated device reports `None`.
    /// Covers every request the device served since its statistics were
    /// last reset (the sample buffer is not differenced per run).
    pub device_latency: Option<IoLatency>,
    /// Streams that ended early — on a per-stream typed error or on a
    /// caught panic (see [`StreamError`]); empty on a clean run.
    pub stream_errors: Vec<StreamError>,
    /// Update operations applied by the workload's update streams (0 for
    /// read-only workloads).
    pub update_ops: u64,
    /// Checkpoints performed by the workload's update streams.
    pub checkpoints: u64,
}

impl WorkloadReport {
    /// Wall-clock queries per second.
    pub fn queries_per_sec(&self) -> f64 {
        self.queries as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Wall-clock tuples per second.
    pub fn tuples_per_sec(&self) -> f64 {
        self.tuples as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// The `q`-quantile (`0.0..=1.0`) of the per-query wall-clock latency
    /// (nearest-rank, via [`scanshare_common::quantile`]). `None` when the
    /// workload had no queries. Latencies are **pooled** across all streams
    /// before ranking — never computed per stream and averaged, which would
    /// underestimate the tail.
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        scanshare_common::quantile::nearest_rank(&self.latencies, q)
    }

    /// Median per-query latency.
    pub fn p50(&self) -> Option<Duration> {
        self.latency_quantile(0.50)
    }

    /// 95th-percentile per-query latency.
    pub fn p95(&self) -> Option<Duration> {
        self.latency_quantile(0.95)
    }

    /// 99th-percentile per-query latency.
    pub fn p99(&self) -> Option<Duration> {
        self.latency_quantile(0.99)
    }
}

impl WorkloadDriver {
    /// Creates a driver over `engine`. Queries run single-threaded inside
    /// their stream by default (the spec's streams provide the concurrency);
    /// see [`WorkloadDriver::with_parallelism`].
    pub fn new(engine: Arc<Engine>) -> Self {
        Self {
            engine,
            parallelism_per_query: 1,
        }
    }

    /// Sets the intra-query parallelism every lowered query runs with
    /// (the builder API's `.parallelism(n)` clause).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism_per_query = workers.max(1);
        self
    }

    /// The engine the driver executes against.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Executes `workload` and collects the merged report.
    ///
    /// All query execution runs on a [`TaskScheduler`] with
    /// [`ScanShareConfig::scheduler_workers`](scanshare_common::ScanShareConfig::scheduler_workers)
    /// worker threads, created for the duration of the run.
    ///
    /// **Read-only workloads** (no update streams) run free: one session
    /// task per [`StreamSpec`](scanshare_workload::spec::StreamSpec), each
    /// stream's queries back to back through
    /// the builder API, all sessions interleaving cooperatively on the
    /// worker pool. A failing query ends its own stream immediately;
    /// streams are independent sessions and are never aborted mid-query.
    /// Per-stream scheduling errors (Cooperative Scans starvation,
    /// [`Error::ScanStarved`]) are surfaced in
    /// [`WorkloadReport::stream_errors`] while the other streams' results
    /// still count; any other error is returned once the remaining streams
    /// have run to completion.
    ///
    /// **Mixed workloads** (non-empty
    /// [`WorkloadSpec::update_streams`](scanshare_workload::spec::WorkloadSpec::update_streams))
    /// run in rounds: at each barrier every update stream applies its batch
    /// as one snapshot-isolated transaction (checkpointing when due), then
    /// every read stream runs its next query concurrently on the scheduler.
    /// The discrete-event simulator executes the identical round schedule,
    /// which is what makes engine == simulator I/O parity exact under
    /// updates.
    pub fn run(&self, workload: &WorkloadSpec) -> Result<WorkloadReport> {
        let virtual_start = self.engine.now();
        let buffer_start = self.engine.buffer_stats();
        let io_start = self.engine.device().stats();
        let wall_start = Instant::now();
        let scheduler = TaskScheduler::new(self.engine.config().scheduler_workers);

        let (stream_results, update_ops, checkpoints) = if workload.has_updates() {
            self.run_rounds(workload, &scheduler)?
        } else {
            let sessions: Vec<_> = workload
                .streams
                .iter()
                .map(|stream| self.spawn_session(&scheduler, stream.queries.clone(), false))
                .collect();
            let results = sessions.into_iter().map(collect_session).collect();
            (results, 0, 0)
        };

        let wall = wall_start.elapsed();
        let mut latencies = Vec::with_capacity(workload.query_count());
        let mut tuples = 0u64;
        let mut stream_errors = Vec::new();
        let mut fatal: Option<Error> = None;
        for (spec, (stream_latencies, stream_tuples, error)) in
            workload.streams.iter().zip(stream_results)
        {
            latencies.extend(stream_latencies);
            tuples += stream_tuples;
            match error {
                Some(StreamEnd::Panic(message)) => stream_errors.push(StreamError::Panicked {
                    stream: spec.label.clone(),
                    message,
                }),
                Some(StreamEnd::Error(error)) if is_stream_local(&error) => {
                    stream_errors.push(StreamError::Failed {
                        stream: spec.label.clone(),
                        error,
                    })
                }
                Some(StreamEnd::Error(error)) => fatal = fatal.or(Some(error)),
                None => {}
            }
        }
        if let Some(error) = fatal {
            return Err(error);
        }
        latencies.sort_unstable();

        let buffer_end = self.engine.buffer_stats();
        let io_end = self.engine.device().stats();
        Ok(WorkloadReport {
            workload: workload.name.clone(),
            streams: workload.stream_count(),
            queries: latencies.len() as u64,
            tuples,
            wall,
            virtual_elapsed: self.engine.now().since(virtual_start),
            latencies,
            buffer: diff_buffer(&buffer_start, &buffer_end),
            io: diff_io(&io_start, &io_end),
            device_latency: self.engine.device().latency(),
            stream_errors,
            update_ops,
            checkpoints,
        })
    }

    /// Spawns one session task covering `queries` on the scheduler,
    /// returning the session's shared accumulator plus its handle.
    fn spawn_session(
        &self,
        scheduler: &TaskScheduler,
        queries: Vec<QuerySpec>,
        clamp_to_visible: bool,
    ) -> (Arc<Mutex<SessionAccum>>, TaskHandle<StreamSessionTask>) {
        let accum = Arc::new(Mutex::new(SessionAccum::default()));
        let task = StreamSessionTask {
            engine: Arc::clone(&self.engine),
            parallelism: self.parallelism_per_query,
            clamp_to_visible,
            pending: queries.into(),
            current: None,
            accum: Arc::clone(&accum),
        };
        (accum, scheduler.spawn(task))
    }

    /// The round-barrier executor for mixed read/write workloads; returns
    /// the per-stream results plus the applied update-op / checkpoint
    /// counts. See [`WorkloadDriver::run`] for the model.
    #[allow(clippy::type_complexity)]
    fn run_rounds(
        &self,
        workload: &WorkloadSpec,
        scheduler: &TaskScheduler,
    ) -> Result<(Vec<(Vec<Duration>, u64, Option<StreamEnd>)>, u64, u64)> {
        let mut generators: Vec<UpdateOpGen> = workload
            .update_streams
            .iter()
            .map(UpdateStreamSpec::ops)
            .collect();
        let mut results: Vec<(Vec<Duration>, u64, Option<StreamEnd>)> = workload
            .streams
            .iter()
            .map(|_| (Vec::new(), 0u64, None))
            .collect();
        let mut update_ops = 0u64;
        let mut checkpoints = 0u64;

        for round in 0..workload.rounds() {
            // Barrier phase: update batches apply sequentially in spec
            // order, each as one transaction, exactly as the simulator's
            // mirror applies them.
            for (spec, generator) in workload.update_streams.iter().zip(generators.iter_mut()) {
                let (ops, ckpts) = self.apply_update_batch(spec, generator, round)?;
                update_ops += ops;
                checkpoints += ckpts;
            }

            // Concurrent phase: one query per still-healthy stream, all
            // queries of the round interleaving on the scheduler. The
            // visible row count is barrier-stable, so the clamped
            // expectations stay exact however the tasks interleave.
            let phase: Vec<(usize, _)> = workload
                .streams
                .iter()
                .enumerate()
                .filter(|(s, stream)| results[*s].2.is_none() && round < stream.queries.len())
                .map(|(s, stream)| {
                    let query = stream.queries[round].clone();
                    (s, self.spawn_session(scheduler, vec![query], true))
                })
                .collect();
            for (s, session) in phase {
                let (latencies, tuples, end) = collect_session(session);
                results[s].0.extend(latencies);
                results[s].1 += tuples;
                if let Some(end) = end {
                    results[s].2 = Some(end);
                }
            }
        }
        Ok((results, update_ops, checkpoints))
    }

    /// Applies one update stream's batch for `round` as a single
    /// transaction, plus the periodic checkpoint when due.
    fn apply_update_batch(
        &self,
        spec: &UpdateStreamSpec,
        generator: &mut UpdateOpGen,
        round: usize,
    ) -> Result<(u64, u64)> {
        let columns = self.engine.storage().table(spec.table)?.spec.columns.len();
        if spec.ops_per_round > 0 {
            let mut txn = self.engine.begin();
            for _ in 0..spec.ops_per_round {
                let visible = txn.visible_rows(spec.table)?;
                match generator.next_op(visible, columns) {
                    UpdateOp::Insert { rid, row } => txn.insert(spec.table, rid, row)?,
                    UpdateOp::Delete { rid } => txn.delete(spec.table, rid)?,
                    UpdateOp::Modify { rid, col, value } => {
                        txn.modify(spec.table, rid, col, value)?
                    }
                }
            }
            txn.commit()?;
        }
        let mut checkpoints = 0;
        if spec.checkpoint_due(round) {
            self.engine.checkpoint(spec.table)?;
            checkpoints = 1;
        }
        Ok((spec.ops_per_round, checkpoints))
    }
}

/// What one session has completed so far. Shared between the session task
/// and the driver so results accumulated *before* a typed error are still
/// reported when the stream ends early (a caught panic discards them, like
/// the thread-per-stream driver did).
#[derive(Default)]
struct SessionAccum {
    latencies: Vec<Duration>,
    tuples: u64,
}

/// Waits for one session task and maps its outcome onto the driver's
/// per-stream result shape.
fn collect_session(
    session: (Arc<Mutex<SessionAccum>>, TaskHandle<StreamSessionTask>),
) -> (Vec<Duration>, u64, Option<StreamEnd>) {
    let (accum, handle) = session;
    let end = match handle.wait() {
        TaskOutcome::Finished(_) => None,
        TaskOutcome::Failed(error) => Some(StreamEnd::Error(error)),
        TaskOutcome::Panicked(message) => return (Vec::new(), 0, Some(StreamEnd::Panic(message))),
    };
    let mut accum = accum.lock();
    (std::mem::take(&mut accum.latencies), accum.tuples, end)
}

/// The build side of a lowered join query, attached to the probe unit via
/// the builder API's `.join(...)` clause: the query fully scans and hashes
/// `table` before any probe I/O starts.
struct JoinUnit {
    table: TableId,
    /// Probe-projection index of the join key.
    left_col: usize,
    /// Build-side join-key column name.
    right_key: String,
    /// The remaining build-projection column names, carried into the join
    /// output after the key.
    extras: Vec<String>,
}

/// One scan-range unit of a lowered [`QuerySpec`]: an aggregation query
/// (count + sum over the first column) over one SID range, so every
/// registered page is actually read and processed.
struct QueryUnit {
    table: TableId,
    columns: Vec<String>,
    range: TupleRange,
    /// Row-level predicate lowered from the spec (projection-relative), fed
    /// to the builder API's `.filter(...)` — and through it to zone-map
    /// pruning.
    predicate: Option<Predicate>,
    /// Broadcast-join build side for join queries (`None` for plain scans).
    join: Option<JoinUnit>,
    /// Exact tuple count the unit must produce; `None` for predicated
    /// units, whose count depends on the data.
    expected: Option<u64>,
    label: String,
}

/// One [`QuerySpec`] mid-execution inside a session task.
struct RunningQuery {
    started: Instant,
    tuples: u64,
    units: VecDeque<QueryUnit>,
    active: Option<(crate::sched::QueryTask, Option<u64>, String, TupleRange)>,
}

/// The row-level form of a spec's zone-predicate operator (1:1).
fn compare_op(op: ZoneOp) -> CompareOp {
    match op {
        ZoneOp::Lt => CompareOp::Lt,
        ZoneOp::Le => CompareOp::Le,
        ZoneOp::Gt => CompareOp::Gt,
        ZoneOp::Ge => CompareOp::Ge,
        ZoneOp::Eq => CompareOp::Eq,
    }
}

/// A workload stream as a cooperative session task: runs its
/// [`QuerySpec`]s back to back, one scan-range unit at a time, yielding at
/// every unit's batch boundaries via the embedded
/// [`QueryTask`](crate::sched::QueryTask).
struct StreamSessionTask {
    engine: Arc<Engine>,
    parallelism: usize,
    /// Relaxes the exact-count check to the rows currently visible — needed
    /// for mixed workloads, whose updates grow and shrink the row space
    /// between rounds (the visible count is barrier-stable, so the clamped
    /// expectation is still exact). Read-only workloads keep the strict
    /// check, so a spec range reaching past the table still surfaces as an
    /// error instead of silently scanning less.
    clamp_to_visible: bool,
    pending: VecDeque<QuerySpec>,
    current: Option<RunningQuery>,
    accum: Arc<Mutex<SessionAccum>>,
}

impl StreamSessionTask {
    /// Resolves a scan's table-relative column indices to column names.
    fn resolve_columns(&self, label: &str, scan: &ScanSpec) -> Result<Vec<String>> {
        let table = self.engine.storage().table(scan.table)?;
        scan.columns
            .iter()
            .map(|&idx| {
                table
                    .spec
                    .columns
                    .get(idx)
                    .map(|c| c.name.clone())
                    .ok_or_else(|| {
                        Error::plan(format!(
                            "scan of query {label:?} selects column index {idx}, but table {} has \
                             only {} columns",
                            table.spec.name,
                            table.spec.columns.len()
                        ))
                    })
            })
            .collect()
    }

    /// Lowers a scan's table-relative zone predicate into the builder API's
    /// projection-relative row predicate.
    fn resolve_predicate(label: &str, scan: &ScanSpec) -> Result<Option<Predicate>> {
        // The spec's predicate is table-relative; the builder API wants
        // the column's position within the projection.
        match &scan.predicate {
            Some(pred) => {
                let position = scan
                    .columns
                    .iter()
                    .position(|&idx| idx == pred.column)
                    .ok_or_else(|| {
                        Error::plan(format!(
                            "scan of query {label:?} filters on column index {}, which is not \
                             among its scanned columns {:?}",
                            pred.column, scan.columns
                        ))
                    })?;
                Ok(Some(Predicate::new(
                    position,
                    compare_op(pred.op),
                    pred.value,
                )))
            }
            None => Ok(None),
        }
    }

    /// Lowers one [`QuerySpec`] into its scan-range units, resolving column
    /// indices to names and fixing each unit's expected tuple count.
    fn lower(&self, query: &QuerySpec) -> Result<RunningQuery> {
        if let Some(join) = &query.join {
            return self.lower_join(query, join);
        }
        let mut units = VecDeque::new();
        for scan in &query.scans {
            let columns = self.resolve_columns(&query.label, scan)?;
            let predicate = Self::resolve_predicate(&query.label, scan)?;
            for &range in scan.ranges.ranges() {
                let expected = if predicate.is_some() {
                    // Predicated units count whatever matches; the spec
                    // cannot know the data-dependent cardinality.
                    None
                } else if self.clamp_to_visible {
                    let visible = self.engine.visible_rows(scan.table)?;
                    Some(range.intersect(&TupleRange::new(0, visible)).len())
                } else {
                    Some(range.len())
                };
                units.push_back(QueryUnit {
                    table: scan.table,
                    columns: columns.clone(),
                    range,
                    predicate,
                    join: None,
                    expected,
                    label: query.label.clone(),
                });
            }
        }
        Ok(RunningQuery {
            started: Instant::now(),
            tuples: query.total_tuples(),
            units,
            active: None,
        })
    }

    /// Lowers a broadcast-join [`QuerySpec`] (`scans[0]` = build, `scans[1]`
    /// = probe) into a single probe-side unit with the build side attached
    /// through the builder API's `.join(...)` clause — the build scan still
    /// registers with the backend and fully drains before any probe I/O.
    /// The joined cardinality is data-dependent, so the unit carries no
    /// expected count.
    fn lower_join(&self, query: &QuerySpec, join: &JoinSpec) -> Result<RunningQuery> {
        let [build, probe] = query.scans.as_slice() else {
            return Err(Error::plan(format!(
                "join query {:?} needs exactly two scans (build, probe), got {}",
                query.label,
                query.scans.len()
            )));
        };
        if build.predicate.is_some() {
            return Err(Error::plan(format!(
                "join query {:?} puts a predicate on its build scan; predicates are \
                 probe-side only",
                query.label
            )));
        }
        let visible = self.engine.visible_rows(build.table)?;
        if build.ranges.ranges() != [TupleRange::new(0, visible)] {
            return Err(Error::plan(format!(
                "join query {:?} must scan the full build table (0..{visible}), got {:?}",
                query.label,
                build.ranges.ranges()
            )));
        }
        let build_columns = self.resolve_columns(&query.label, build)?;
        let probe_columns = self.resolve_columns(&query.label, probe)?;
        let right_key = build_columns.get(join.right_col).cloned().ok_or_else(|| {
            Error::plan(format!(
                "join query {:?} keys on build column {} of {}",
                query.label,
                join.right_col,
                build_columns.len()
            ))
        })?;
        if join.left_col >= probe_columns.len() {
            return Err(Error::plan(format!(
                "join query {:?} keys on probe column {} of {}",
                query.label,
                join.left_col,
                probe_columns.len()
            )));
        }
        let extras: Vec<String> = build_columns
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != join.right_col)
            .map(|(_, name)| name.clone())
            .collect();
        let predicate = Self::resolve_predicate(&query.label, probe)?;
        let [range] = probe.ranges.ranges() else {
            return Err(Error::plan(format!(
                "join query {:?} needs a single-range probe scan, got {} ranges",
                query.label,
                probe.ranges.ranges().len()
            )));
        };
        let mut units = VecDeque::new();
        units.push_back(QueryUnit {
            table: probe.table,
            columns: probe_columns,
            range: *range,
            predicate,
            join: Some(JoinUnit {
                table: build.table,
                left_col: join.left_col,
                right_key,
                extras,
            }),
            expected: None,
            label: query.label.clone(),
        });
        Ok(RunningQuery {
            started: Instant::now(),
            tuples: query.total_tuples(),
            units,
            active: None,
        })
    }

    /// Opens one unit's scans as a [`QueryTask`](crate::sched::QueryTask).
    fn open_unit(
        &self,
        unit: QueryUnit,
    ) -> Result<(crate::sched::QueryTask, Option<u64>, String, TupleRange)> {
        let mut query = self
            .engine
            .query(unit.table)
            .columns(unit.columns.iter().map(String::as_str))
            .tuple_range(TupleRange::new(unit.range.start, unit.range.end))
            .aggregate(AggrSpec::global(vec![Aggregate::Count, Aggregate::Sum(0)]))
            .parallelism(self.parallelism);
        if let Some(predicate) = unit.predicate {
            query = query.filter(predicate);
        }
        if let Some(join) = unit.join {
            query = query
                .join(join.table, join.left_col, join.right_key)
                .join_columns(join.extras);
        }
        let task = query.into_task()?;
        Ok((task, unit.expected, unit.label, unit.range))
    }
}

impl Task for StreamSessionTask {
    fn step(&mut self) -> Result<TaskStep> {
        // The running query is taken out of `self` for the quantum (and put
        // back unless it completed); on an error path it stays out, but an
        // erroring step ends the whole session anyway.
        let Some(mut running) = self.current.take() else {
            // Between queries: lower the next spec or finish the session.
            return match self.pending.pop_front() {
                Some(query) => {
                    self.current = Some(self.lower(&query)?);
                    Ok(TaskStep::Yield)
                }
                None => Ok(TaskStep::Done),
            };
        };
        if let Some((task, expected, label, range)) = &mut running.active {
            match task.step()? {
                TaskStep::Yield => {
                    self.current = Some(running);
                    return Ok(TaskStep::Yield);
                }
                TaskStep::Done => {
                    let counted = task.result().get(&0).map(|g| g.count).unwrap_or(0);
                    if let Some(expected) = *expected {
                        if counted != expected {
                            return Err(Error::internal(format!(
                                "query {label:?} counted {counted} tuples in {range:?}, expected \
                                 {expected}"
                            )));
                        }
                    }
                    running.active = None;
                }
            }
        }
        match running.units.pop_front() {
            Some(unit) => {
                running.active = Some(self.open_unit(unit)?);
                self.current = Some(running);
            }
            None => {
                let mut accum = self.accum.lock();
                accum.latencies.push(running.started.elapsed());
                accum.tuples += running.tuples;
            }
        }
        Ok(TaskStep::Yield)
    }
}

fn diff_buffer(start: &BufferStats, end: &BufferStats) -> BufferStats {
    BufferStats {
        hits: end.hits - start.hits,
        misses: end.misses - start.misses,
        evictions: end.evictions - start.evictions,
        pages_loaded: end.pages_loaded - start.pages_loaded,
        io_bytes: end.io_bytes - start.io_bytes,
        prefetched_pages: end.prefetched_pages - start.prefetched_pages,
        prefetch_io_bytes: end.prefetch_io_bytes - start.prefetch_io_bytes,
        invalidated_pages: end.invalidated_pages - start.invalidated_pages,
        pruned_tuples: end.pruned_tuples - start.pruned_tuples,
    }
}

fn diff_io(start: &IoStats, end: &IoStats) -> IoStats {
    IoStats {
        bytes_read: end.bytes_read - start.bytes_read,
        pages_read: end.pages_read - start.pages_read,
        requests: end.requests - start.requests,
        demand_bytes: end.demand_bytes - start.demand_bytes,
        prefetch_bytes: end.prefetch_bytes - start.prefetch_bytes,
        demand_requests: end.demand_requests - start.demand_requests,
        prefetch_requests: end.prefetch_requests - start.prefetch_requests,
        queue_wait_nanos: end.queue_wait_nanos - start.queue_wait_nanos,
        service_nanos: end.service_nanos - start.service_nanos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::{PolicyKind, RangeList, ScanShareConfig, TableId};
    use scanshare_storage::storage::Storage;
    use scanshare_workload::microbench::{self, MicrobenchConfig};
    use scanshare_workload::spec::{ScanSpec, StreamSpec};

    const PAGE: u64 = 16 * 1024;

    fn setup() -> (Arc<Storage>, WorkloadSpec) {
        let config = MicrobenchConfig {
            streams: 3,
            queries_per_stream: 2,
            lineitem_tuples: 30_000,
            ..MicrobenchConfig::tiny()
        };
        microbench::build(&config, PAGE, 5_000).unwrap()
    }

    fn engine(storage: &Arc<Storage>, policy: PolicyKind, shards: usize) -> Arc<Engine> {
        Engine::new(
            Arc::clone(storage),
            ScanShareConfig {
                page_size_bytes: PAGE,
                chunk_tuples: 5_000,
                buffer_pool_bytes: 64 * PAGE,
                policy,
                pool_shards: shards,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn driver_executes_every_stream_and_reports_consistent_metrics() {
        let (storage, workload) = setup();
        for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
            let engine = engine(&storage, policy, 2);
            let report = WorkloadDriver::new(Arc::clone(&engine))
                .run(&workload)
                .unwrap();
            assert_eq!(report.streams, 3, "{policy}");
            assert_eq!(report.queries, 6, "{policy}");
            assert_eq!(report.tuples, workload.total_tuples(), "{policy}");
            assert_eq!(report.latencies.len(), 6, "{policy}");
            assert!(report.queries_per_sec() > 0.0, "{policy}");
            assert!(report.tuples_per_sec() > 0.0, "{policy}");
            assert!(report.virtual_elapsed > VirtualDuration::ZERO, "{policy}");
            // Percentiles are ordered and taken from the observed samples.
            let (p50, p99) = (report.p50().unwrap(), report.p99().unwrap());
            assert!(p50 <= p99, "{policy}");
            assert_eq!(p99, *report.latencies.last().unwrap(), "{policy}");
            // The pool and the device agree on the transferred volume.
            assert!(report.buffer.io_bytes > 0, "{policy}");
            assert_eq!(report.buffer.io_bytes, report.io.bytes_read, "{policy}");
        }
    }

    #[test]
    fn sharding_does_not_change_the_workload_io_volume() {
        let (storage, workload) = setup();
        let mut reference: Option<(u64, u64)> = None;
        for shards in [1usize, 2, 8] {
            let engine = engine(&storage, PolicyKind::Pbm, shards);
            let report = WorkloadDriver::new(engine).run(&workload).unwrap();
            let observed = (
                report.buffer.io_bytes,
                report.buffer.hits + report.buffer.misses,
            );
            match &reference {
                None => reference = Some(observed),
                Some(expected) => assert_eq!(*expected, observed, "shards {shards}"),
            }
        }
    }

    #[test]
    fn starvation_is_stream_local_and_clean_cscan_runs_report_no_stream_errors() {
        use scanshare_common::ScanId;
        // Classification: only starvation is surfaced per stream; anything
        // else fails the workload as before.
        assert!(is_stream_local(&Error::ScanStarved(ScanId::new(1))));
        assert!(is_stream_local(&Error::io("pread failed")));
        assert!(!is_stream_local(&Error::internal("boom")));
        assert!(!is_stream_local(&Error::UnknownScan(ScanId::new(1))));
        // A healthy multi-stream CScan workload reports no stream errors.
        let (storage, workload) = setup();
        let engine = engine(&storage, PolicyKind::CScan, 2);
        let report = WorkloadDriver::new(engine).run(&workload).unwrap();
        assert!(report.stream_errors.is_empty());
        assert_eq!(report.queries, 6);
    }

    #[test]
    fn driver_rejects_specs_with_out_of_range_columns() {
        let (storage, _) = setup();
        let engine = engine(&storage, PolicyKind::Lru, 1);
        let bogus = WorkloadSpec::read_only(
            "bogus",
            vec![StreamSpec {
                label: "s0".into(),
                queries: vec![QuerySpec {
                    label: "bad".into(),
                    scans: vec![ScanSpec {
                        table: TableId::new(0),
                        columns: vec![99],
                        ranges: RangeList::single(0, 10),
                        predicate: None,
                    }],
                    cpu_factor: 1.0,
                    join: None,
                }],
            }],
        );
        assert!(WorkloadDriver::new(engine).run(&bogus).is_err());
    }

    #[test]
    fn join_queries_run_through_the_driver() {
        use scanshare_storage::column::{ColumnSpec, ColumnType};
        use scanshare_storage::datagen::DataGen;
        use scanshare_storage::table::TableSpec;

        let (storage, _) = setup();
        let dim = storage
            .create_table_with_data(
                TableSpec::new(
                    "dim",
                    vec![
                        ColumnSpec::with_width("d_key", ColumnType::Dict { cardinality: 3 }, 0.5),
                        ColumnSpec::with_width("d_weight", ColumnType::Decimal, 2.0),
                    ],
                    3,
                ),
                vec![
                    DataGen::Cyclic {
                        period: 3,
                        min: 0,
                        max: 2,
                    },
                    DataGen::Uniform { min: 1, max: 9 },
                ],
            )
            .unwrap();
        // Probe lineitem's l_returnflag (cardinality 3) against the 3-row
        // dim key: every probe row matches exactly one build row.
        let workload = WorkloadSpec::read_only(
            "join",
            vec![StreamSpec {
                label: "s0".into(),
                queries: vec![QuerySpec {
                    label: "join-q".into(),
                    scans: vec![
                        ScanSpec {
                            table: dim,
                            columns: vec![0, 1],
                            ranges: RangeList::single(0, 3),
                            predicate: None,
                        },
                        ScanSpec {
                            table: TableId::new(0),
                            columns: vec![0, 4],
                            ranges: RangeList::single(0, 10_000),
                            predicate: None,
                        },
                    ],
                    cpu_factor: 1.0,
                    join: Some(JoinSpec {
                        left_col: 1,
                        right_col: 0,
                    }),
                }],
            }],
        );
        for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
            let engine = engine(&storage, policy, 2);
            let report = WorkloadDriver::new(engine).run(&workload).unwrap();
            assert!(report.stream_errors.is_empty(), "{policy}");
            assert_eq!(report.queries, 1, "{policy}");
            assert_eq!(report.tuples, 10_003, "{policy}");
            assert!(report.buffer.io_bytes > 0, "{policy}");
        }
        // A build scan that does not cover the full table is a plan error.
        let mut bad = workload.clone();
        bad.streams[0].queries[0].scans[0].ranges = RangeList::single(0, 2);
        let err = WorkloadDriver::new(engine(&storage, PolicyKind::Lru, 1))
            .run(&bad)
            .unwrap_err();
        assert!(err.to_string().contains("full build table"), "{err}");
    }

    #[test]
    fn empty_workloads_produce_an_empty_report() {
        let (storage, _) = setup();
        let engine = engine(&storage, PolicyKind::Lru, 1);
        let empty = WorkloadSpec::read_only("empty", Vec::new());
        let report = WorkloadDriver::new(engine).run(&empty).unwrap();
        assert_eq!(report.queries, 0);
        assert!(report.p50().is_none());
    }

    #[test]
    fn a_panicking_stream_is_reported_not_propagated() {
        use scanshare_core::policy::{ReplacementPolicy, ScanInfo};
        use scanshare_core::registry::PolicyRegistry;
        use scanshare_storage::layout::ScanPagePlan;
        use std::collections::HashSet;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc as StdArc;

        /// FIFO eviction that panics on the first scan registration — the
        /// stream that reaches the backend first dies mid-query.
        #[derive(Debug)]
        struct PanicOnce {
            tripped: StdArc<AtomicBool>,
            order: Vec<scanshare_common::PageId>,
        }

        impl ReplacementPolicy for PanicOnce {
            fn name(&self) -> &'static str {
                "panic-once"
            }
            fn register_scan(
                &mut self,
                _: &ScanInfo,
                _: &ScanPagePlan,
                _: scanshare_common::VirtualInstant,
            ) {
                if !self.tripped.swap(true, Ordering::SeqCst) {
                    panic!("injected register_scan panic");
                }
            }
            fn report_scan_position(
                &mut self,
                _: scanshare_common::ScanId,
                _: u64,
                _: scanshare_common::VirtualInstant,
            ) {
            }
            fn unregister_scan(
                &mut self,
                _: scanshare_common::ScanId,
                _: scanshare_common::VirtualInstant,
            ) {
            }
            fn on_access(
                &mut self,
                _: scanshare_common::PageId,
                _: Option<scanshare_common::ScanId>,
                _: scanshare_common::VirtualInstant,
            ) {
            }
            fn on_admit(
                &mut self,
                page: scanshare_common::PageId,
                _: scanshare_common::VirtualInstant,
            ) {
                self.order.push(page);
            }
            fn on_evict(&mut self, page: scanshare_common::PageId) {
                self.order.retain(|&p| p != page);
            }
            fn choose_victims(
                &mut self,
                count: usize,
                exclude: &HashSet<scanshare_common::PageId>,
                _: scanshare_common::VirtualInstant,
            ) -> Vec<scanshare_common::PageId> {
                self.order
                    .iter()
                    .copied()
                    .filter(|p| !exclude.contains(p))
                    .take(count)
                    .collect()
            }
        }

        let (storage, workload) = setup();
        let tripped = StdArc::new(AtomicBool::new(false));
        let mut registry = PolicyRegistry::default();
        let shared = StdArc::clone(&tripped);
        registry.register("panic-once", move |_| {
            Box::new(PanicOnce {
                tripped: StdArc::clone(&shared),
                order: Vec::new(),
            })
        });
        let config = ScanShareConfig {
            page_size_bytes: PAGE,
            chunk_tuples: 5_000,
            buffer_pool_bytes: 64 * PAGE,
            policy: PolicyKind::Lru,
            ..Default::default()
        }
        .with_custom_policy("panic-once");
        let engine = Engine::with_registry(storage, config, &registry).unwrap();
        let report = WorkloadDriver::new(engine).run(&workload).unwrap();
        assert!(tripped.load(Ordering::SeqCst), "the panic fired");
        // Exactly one stream ends on the caught panic; the others run to
        // completion (3 streams x 2 queries - the panicked stream's 2).
        assert_eq!(report.stream_errors.len(), 1);
        assert!(report.stream_errors[0].is_panic());
        assert!(report.stream_errors[0].error().is_none());
        assert!(format!("{:?}", report.stream_errors[0]).contains("injected register_scan panic"));
        assert_eq!(report.queries, 4);
    }

    #[test]
    fn intra_query_parallelism_is_applied_and_results_stay_exact() {
        let (storage, workload) = setup();
        let engine = engine(&storage, PolicyKind::Pbm, 4);
        let report = WorkloadDriver::new(Arc::clone(&engine))
            .with_parallelism(2)
            .run(&workload)
            .unwrap();
        assert_eq!(report.queries, 6);
        assert!(report.buffer.io_bytes > 0);
    }
}
