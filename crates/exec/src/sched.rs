//! The morsel-driven task scheduler: thousands of logical sessions on a
//! fixed pool of OS threads.
//!
//! The thread-per-stream [`WorkloadDriver`](crate::driver::WorkloadDriver)
//! capped scenario realism at tens of streams — one OS thread per session
//! does not survive contact with a server facing thousands of concurrent
//! query streams, which is exactly the regime the paper's buffer-management
//! policies were designed for. This module replaces it with cooperative
//! scheduling:
//!
//! * a **fixed worker pool** ([`ScanShareConfig::scheduler_workers`]
//!   threads) owns all query execution;
//! * each logical session is a [`Task`]: a resumable state machine whose
//!   [`Task::step`] runs one *quantum* of work and then yields. For queries
//!   the natural yield point is the [`ScanOperator`] batch boundary — the
//!   scan produces a bounded number of batches per quantum
//!   ([`BATCHES_PER_QUANTUM`]) and hands the worker back;
//! * every worker keeps its own run queue and **steals from the back** of
//!   other workers' queues when it runs dry, so an uneven session mix still
//!   saturates the pool;
//! * a task that yields goes to the **back** of its worker's queue, so
//!   sessions on one worker interleave round-robin: a short query never
//!   stalls behind a long scan (see the starvation test in
//!   `tests/scheduler_semantics.rs`).
//!
//! Scheduling never changes results: queries compute order-insensitive
//! aggregates over snapshot-pinned scans, so the same sessions produce
//! byte-identical per-session results at 1 worker and at N (the determinism
//! test relies on this). Panics are task-local — a panicking task completes
//! its handle with [`TaskOutcome::Panicked`] and the worker moves on, the
//! cooperative analogue of the driver's caught stream panics.
//!
//! [`QueryTask`] lowers a builder [`Query`] onto the
//! scheduler: the query's RID range is split into `parallelism` parts
//! (Equation 1) forming the *per-query task queue*; each quantum produces
//! batches from the front part and rotates it to the back, so one session
//! interleaves its own partial scans exactly like the scheduler interleaves
//! sessions.
//!
//! [`ScanShareConfig::scheduler_workers`]: scanshare_common::ScanShareConfig::scheduler_workers
//! [`ScanOperator`]: crate::scan::ScanOperator

#![deny(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;

use scanshare_common::sync::Mutex;
use scanshare_common::{Error, Result};

use scanshare_common::TupleRange;

use crate::ops::{fold_batch, AggrResult, AggrSpec, BatchSource, JoinBuild, Predicate};
use crate::query::Query;

/// How many scan batches a [`QueryTask`] produces per scheduler quantum
/// before yielding. With the operator's 1024-tuple batches this makes a
/// quantum a few thousand tuples: long enough to amortize queue traffic,
/// short enough that thousands of sessions interleave at millisecond
/// granularity.
pub const BATCHES_PER_QUANTUM: usize = 8;

/// What one [`Task::step`] quantum reports back to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStep {
    /// The task has more work; requeue it behind its worker's other tasks.
    Yield,
    /// The task is finished; complete its handle.
    Done,
}

/// A cooperatively scheduled unit of work (one logical session, one query,
/// one serving-layer request, ...). `step` runs one bounded quantum; a task
/// that needs something unavailable right now (buffer space, a full
/// outbound queue) returns [`TaskStep::Yield`] and is retried after the
/// worker's other tasks have had their turn.
pub trait Task: Send {
    /// Runs one quantum. Errors complete the task's handle with
    /// [`TaskOutcome::Failed`]; panics are caught and complete it with
    /// [`TaskOutcome::Panicked`].
    fn step(&mut self) -> Result<TaskStep>;
}

/// How a scheduled task ended.
#[derive(Debug)]
pub enum TaskOutcome<T> {
    /// The task ran to completion; the task value is handed back so the
    /// caller can extract its results.
    Finished(T),
    /// The task returned a typed error from one of its quanta (or was
    /// cancelled by scheduler shutdown before completing).
    Failed(Error),
    /// The task panicked mid-quantum; the panic was caught on the worker.
    Panicked(String),
}

impl<T> TaskOutcome<T> {
    /// Converts the outcome into a `Result`, mapping panics onto
    /// [`Error::Internal`].
    pub fn into_result(self) -> Result<T> {
        match self {
            TaskOutcome::Finished(task) => Ok(task),
            TaskOutcome::Failed(error) => Err(error),
            TaskOutcome::Panicked(message) => {
                Err(Error::internal(format!("task panicked: {message}")))
            }
        }
    }
}

/// Extracts a readable message from a caught panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked with a non-string payload".to_string()
    }
}

/// Completion slot shared between a [`TaskHandle`] and the worker that
/// finishes the task.
struct HandleState<T> {
    slot: Mutex<Option<TaskOutcome<T>>>,
    done: Condvar,
}

impl<T> HandleState<T> {
    fn complete(&self, outcome: TaskOutcome<T>) {
        *self.slot.lock() = Some(outcome);
        self.done.notify_all();
    }
}

/// Waits for one spawned task; returned by [`TaskScheduler::spawn`].
/// Dropping the handle detaches the task — it still runs to completion,
/// its outcome is simply discarded (the serving layer does this: its tasks
/// deliver results over the wire themselves).
pub struct TaskHandle<T> {
    state: Arc<HandleState<T>>,
}

impl<T> TaskHandle<T> {
    /// Blocks until the task completes and returns its outcome.
    pub fn wait(self) -> TaskOutcome<T> {
        let mut guard = self.state.slot.lock();
        loop {
            if let Some(outcome) = guard.take() {
                return outcome;
            }
            guard = self.state.done.wait(guard).expect("condvar poisoned");
        }
    }

    /// Whether the task has already completed (non-blocking).
    pub fn is_done(&self) -> bool {
        self.state.slot.lock().is_some()
    }
}

impl<T> std::fmt::Debug for TaskHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("done", &self.is_done())
            .finish()
    }
}

/// What the worker does with a runnable after one quantum.
enum StepResult {
    Requeue,
    Complete,
}

/// Type-erased task + completion slot living on the run queues. The
/// `before_complete` callback runs just before the handle is signalled so
/// the scheduler's counters are consistent by the time a waiter wakes.
trait Runnable: Send {
    fn run_step(&mut self, before_complete: &dyn Fn()) -> StepResult;
    fn cancel(&mut self, error: Error, before_complete: &dyn Fn());
}

struct TypedRun<T: Task> {
    task: Option<T>,
    state: Arc<HandleState<T>>,
}

impl<T: Task> Runnable for TypedRun<T> {
    fn run_step(&mut self, before_complete: &dyn Fn()) -> StepResult {
        let task = self.task.as_mut().expect("task present until completion");
        let outcome = match catch_unwind(AssertUnwindSafe(|| task.step())) {
            Ok(Ok(TaskStep::Yield)) => return StepResult::Requeue,
            Ok(Ok(TaskStep::Done)) => {
                let task = self.task.take().expect("checked above");
                TaskOutcome::Finished(task)
            }
            Ok(Err(error)) => {
                self.task = None;
                TaskOutcome::Failed(error)
            }
            Err(payload) => {
                self.task = None;
                TaskOutcome::Panicked(panic_message(payload))
            }
        };
        before_complete();
        self.state.complete(outcome);
        StepResult::Complete
    }

    fn cancel(&mut self, error: Error, before_complete: &dyn Fn()) {
        if self.task.take().is_some() {
            before_complete();
            self.state.complete(TaskOutcome::Failed(error));
        }
    }
}

/// Counters the scheduler accumulates over its lifetime; snapshot with
/// [`TaskScheduler::stats`]. Useful for benches (`fig_serving` reports
/// them) and for asserting scheduling behaviour in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Tasks accepted by [`TaskScheduler::spawn`].
    pub submitted: u64,
    /// Tasks that completed (finished, failed or panicked).
    pub completed: u64,
    /// Quanta after which a task yielded and was requeued.
    pub yields: u64,
    /// Tasks a worker stole from another worker's queue.
    pub steals: u64,
}

struct Shared {
    /// One run queue per worker; a yielding task goes to the back of the
    /// queue of the worker that ran it.
    queues: Vec<Mutex<VecDeque<Box<dyn Runnable>>>>,
    /// Freshly spawned tasks land here; each worker moves at most one
    /// injector task into its own queue per scheduling iteration, so new
    /// sessions are admitted round-robin with the already-running ones.
    injector: Mutex<VecDeque<Box<dyn Runnable>>>,
    /// Version counter + condvar parking: bumped (with a wake) on every
    /// push, so a worker that observed version V and then found no work can
    /// sleep until the version moves.
    park: std::sync::Mutex<u64>,
    wake: Condvar,
    shutdown: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    yields: AtomicU64,
    steals: AtomicU64,
}

impl Shared {
    fn bump(&self) {
        *self.park.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        self.wake.notify_all();
    }

    fn version(&self) -> u64 {
        *self.park.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The fixed worker pool executing [`Task`]s; see the [module docs](self).
pub struct TaskScheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TaskScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskScheduler")
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl TaskScheduler {
    /// Starts a scheduler with `workers` OS threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            park: std::sync::Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            yields: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sched-worker-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Self {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Submits a task; it starts running as soon as a worker frees up.
    /// After [`TaskScheduler::shutdown`] the task is not run — the returned
    /// handle completes immediately with [`TaskOutcome::Failed`].
    pub fn spawn<T: Task + 'static>(&self, task: T) -> TaskHandle<T> {
        spawn_on(&self.shared, task)
    }

    /// A cloneable spawning handle that stays valid after the scheduler is
    /// moved or borrowed elsewhere — tasks and callbacks (e.g. the serving
    /// layer's admission release) use it to submit follow-up work from any
    /// thread, including scheduler workers. Spawning through a handle after
    /// shutdown behaves like [`TaskScheduler::spawn`] after shutdown: the
    /// task fails immediately.
    pub fn handle(&self) -> SchedHandle {
        SchedHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A snapshot of the scheduler's lifetime counters.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            yields: self.shared.yields.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
        }
    }

    /// Stops the pool: workers finish the quantum they are on and exit,
    /// every task still queued (including tasks mid-flight that had
    /// yielded) completes its handle with [`TaskOutcome::Failed`], and the
    /// worker threads are joined. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.bump();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        let mut cancelled: Vec<Box<dyn Runnable>> = self.shared.injector.lock().drain(..).collect();
        for queue in &self.shared.queues {
            cancelled.extend(queue.lock().drain(..));
        }
        let shared = Arc::clone(&self.shared);
        for mut run in cancelled {
            run.cancel(shutdown_error(), &|| {
                shared.completed.fetch_add(1, Ordering::Relaxed);
            });
        }
    }
}

impl Drop for TaskScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// See [`TaskScheduler::handle`].
#[derive(Clone)]
pub struct SchedHandle {
    shared: Arc<Shared>,
}

impl SchedHandle {
    /// Submits a task through the handle; see [`TaskScheduler::spawn`].
    pub fn spawn<T: Task + 'static>(&self, task: T) -> TaskHandle<T> {
        spawn_on(&self.shared, task)
    }
}

impl std::fmt::Debug for SchedHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedHandle")
            .field("workers", &self.shared.queues.len())
            .finish()
    }
}

fn spawn_on<T: Task + 'static>(shared: &Arc<Shared>, task: T) -> TaskHandle<T> {
    let state = Arc::new(HandleState {
        slot: Mutex::new(None),
        done: Condvar::new(),
    });
    let handle = TaskHandle {
        state: Arc::clone(&state),
    };
    let mut run = TypedRun {
        task: Some(task),
        state,
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        run.cancel(shutdown_error(), &|| {});
        return handle;
    }
    shared.submitted.fetch_add(1, Ordering::Relaxed);
    shared.injector.lock().push_back(Box::new(run));
    shared.bump();
    handle
}

/// The typed error queued-but-never-run tasks fail with on shutdown.
fn shutdown_error() -> Error {
    Error::Unsupported("task scheduler shut down before the task completed".into())
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Snapshot the park version *before* looking for work: any push
        // that races with the scan below bumps it, which keeps the final
        // wait from sleeping through the wakeup.
        let version = shared.version();
        if let Some(mut run) = find_work(shared, me) {
            let step = run.run_step(&|| {
                shared.completed.fetch_add(1, Ordering::Relaxed);
            });
            if let StepResult::Requeue = step {
                shared.yields.fetch_add(1, Ordering::Relaxed);
                shared.queues[me].lock().push_back(run);
                shared.bump();
            }
            continue;
        }
        let mut guard = shared.park.lock().unwrap_or_else(|e| e.into_inner());
        while *guard == version && !shared.shutdown.load(Ordering::SeqCst) {
            guard = shared.wake.wait(guard).expect("condvar poisoned");
        }
    }
}

/// One scheduling decision for worker `me`: admit at most one freshly
/// spawned task behind the already-running ones (round-robin admission),
/// run the front of the own queue, and steal from the back of a busy
/// worker's queue when the own queue is dry.
fn find_work(shared: &Shared, me: usize) -> Option<Box<dyn Runnable>> {
    if let Some(fresh) = shared.injector.lock().pop_front() {
        shared.queues[me].lock().push_back(fresh);
    }
    if let Some(run) = shared.queues[me].lock().pop_front() {
        return Some(run);
    }
    let workers = shared.queues.len();
    for offset in 1..workers {
        let victim = (me + offset) % workers;
        if let Some(run) = shared.queues[victim].lock().pop_back() {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            return Some(run);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// QueryTask: a builder query as a cooperative task
// ---------------------------------------------------------------------------

/// One partial scan of a query (one Equation-1 range part).
struct ScanPart {
    scan: Box<dyn BatchSource + Send>,
}

/// The deferred join-build phase of a [`QueryTask`]: the build scan is
/// drained cooperatively (at most [`BATCHES_PER_QUANTUM`] batches per
/// quantum); when it runs dry the hash table is frozen, the build scan is
/// dropped (unregistering it from the backend) and the probe scans open —
/// the same build-then-probe sequence as the inline `Query::run` path.
struct JoinPhase {
    scan: Box<dyn BatchSource + Send>,
    build: JoinBuild,
    /// The probe query, pin already resolved; opens the probe scans once
    /// the build finishes.
    probe: Query,
    /// The Equation-1 probe range parts still to open.
    parts: Vec<TupleRange>,
}

/// A builder [`Query`] lowered onto the scheduler: the
/// morsel-driven form of [`Query::run`](crate::query::Query::run).
///
/// The query's RID range is split into `parallelism` parts exactly like the
/// thread-based path; the parts form the query's own task queue. Each
/// [`Task::step`] produces up to [`BATCHES_PER_QUANTUM`] batches from the
/// front part, folds them into the running aggregation
/// ([`fold_batch`] — equivalent to the
/// partial-aggregate-then-merge of the exchange plan, since every supported
/// aggregate commutes), rotates the part to the back and yields. A join
/// plan first drains its build scan through a `JoinPhase`, one quantum at
/// a time, before the probe parts open. Obtain one
/// with [`Query::into_task`](crate::query::Query::into_task), run it with
/// [`TaskScheduler::spawn`], and take the result from the finished task
/// with [`QueryTask::into_result`].
pub struct QueryTask {
    /// `Some` while a join plan is still draining its build side.
    join: Option<JoinPhase>,
    parts: VecDeque<ScanPart>,
    filter: Option<Predicate>,
    spec: AggrSpec,
    groups: AggrResult,
}

impl std::fmt::Debug for QueryTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryTask")
            .field("parts_remaining", &self.parts.len())
            .field("groups", &self.groups.len())
            .finish()
    }
}

impl QueryTask {
    pub(crate) fn new(
        parts: Vec<Box<dyn BatchSource + Send>>,
        filter: Option<Predicate>,
        spec: AggrSpec,
    ) -> Self {
        Self {
            join: None,
            parts: parts.into_iter().map(|scan| ScanPart { scan }).collect(),
            filter,
            spec,
            groups: AggrResult::new(),
        }
    }

    /// A join plan lowered onto the scheduler: `scan` is the already-open
    /// build scan, `probe` the query (pin resolved) whose probe scans open
    /// over `parts` once the build completes. The probe filter is applied
    /// inside the join source, so the fold filter stays `None`.
    pub(crate) fn with_join(
        scan: Box<dyn BatchSource + Send>,
        build: JoinBuild,
        probe: Query,
        parts: Vec<TupleRange>,
        spec: AggrSpec,
    ) -> Self {
        Self {
            join: Some(JoinPhase {
                scan,
                build,
                probe,
                parts,
            }),
            parts: VecDeque::new(),
            filter: None,
            spec,
            groups: AggrResult::new(),
        }
    }

    /// The aggregation accumulated so far (complete once the task has
    /// finished).
    pub fn result(&self) -> &AggrResult {
        &self.groups
    }

    /// Consumes the finished task, returning the aggregation result.
    pub fn into_result(self) -> AggrResult {
        self.groups
    }
}

impl Task for QueryTask {
    fn step(&mut self) -> Result<TaskStep> {
        if let Some(phase) = self.join.as_mut() {
            for _ in 0..BATCHES_PER_QUANTUM {
                match phase.scan.next_batch()? {
                    Some(batch) => phase.build.push_batch(&batch),
                    None => {
                        // Build exhausted: unregister the build scan first
                        // (dropping its operator), then open the probes.
                        let phase = self.join.take().expect("checked above");
                        drop(phase.scan);
                        let table = std::sync::Arc::new(phase.build.finish());
                        for part in phase.parts {
                            let scan = phase.probe.open_scan(part)?;
                            self.parts.push_back(ScanPart {
                                scan: phase.probe.wrap_probe(scan, Some(&table)),
                            });
                        }
                        return Ok(TaskStep::Yield);
                    }
                }
            }
            return Ok(TaskStep::Yield);
        }
        let Some(mut part) = self.parts.pop_front() else {
            return Ok(TaskStep::Done);
        };
        for _ in 0..BATCHES_PER_QUANTUM {
            match part.scan.next_batch()? {
                Some(batch) => {
                    fold_batch(&mut self.groups, batch, self.filter.as_ref(), &self.spec)
                }
                None => {
                    // Part exhausted; drop its operator (unregistering the
                    // scan) before deciding whether the query is done.
                    return Ok(if self.parts.is_empty() {
                        TaskStep::Done
                    } else {
                        TaskStep::Yield
                    });
                }
            }
        }
        self.parts.push_back(part);
        Ok(TaskStep::Yield)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counts down `left` quanta, appending its label to `log` when done.
    struct CountTask {
        label: usize,
        left: usize,
        log: Arc<Mutex<Vec<usize>>>,
    }

    impl Task for CountTask {
        fn step(&mut self) -> Result<TaskStep> {
            if self.left == 0 {
                self.log.lock().push(self.label);
                return Ok(TaskStep::Done);
            }
            self.left -= 1;
            Ok(TaskStep::Yield)
        }
    }

    #[test]
    fn tasks_complete_at_any_worker_count() {
        for workers in [1usize, 4] {
            let sched = TaskScheduler::new(workers);
            let log = Arc::new(Mutex::new(Vec::new()));
            let handles: Vec<_> = (0..32)
                .map(|label| {
                    sched.spawn(CountTask {
                        label,
                        left: label % 5,
                        log: Arc::clone(&log),
                    })
                })
                .collect();
            for handle in handles {
                let outcome = handle.wait();
                assert!(matches!(outcome, TaskOutcome::Finished(_)), "{workers}");
            }
            assert_eq!(log.lock().len(), 32);
            let stats = sched.stats();
            assert_eq!(stats.submitted, 32);
            assert_eq!(stats.completed, 32);
        }
    }

    #[test]
    fn single_worker_round_robins_so_short_tasks_finish_first() {
        // The long task spins in its first quantum until both tasks are
        // spawned, so the single worker cannot burn through all 200 quanta
        // before the short task even reaches the injector.
        struct GatedCount {
            start: Arc<AtomicBool>,
            inner: CountTask,
        }
        impl Task for GatedCount {
            fn step(&mut self) -> Result<TaskStep> {
                while !self.start.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                self.inner.step()
            }
        }
        let sched = TaskScheduler::new(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        let start = Arc::new(AtomicBool::new(false));
        // The long task is submitted first and needs 200 quanta; the short
        // one needs 2. Round-robin admission and requeueing mean the short
        // task must complete long before the long one.
        let long = sched.spawn(GatedCount {
            start: Arc::clone(&start),
            inner: CountTask {
                label: 0,
                left: 200,
                log: Arc::clone(&log),
            },
        });
        let short = sched.spawn(CountTask {
            label: 1,
            left: 2,
            log: Arc::clone(&log),
        });
        start.store(true, Ordering::SeqCst);
        let _ = short.wait();
        let _ = long.wait();
        assert_eq!(*log.lock(), vec![1, 0], "short task completed first");
    }

    #[test]
    fn task_errors_and_panics_are_task_local() {
        struct FailTask;
        impl Task for FailTask {
            fn step(&mut self) -> Result<TaskStep> {
                Err(Error::internal("typed failure"))
            }
        }
        #[derive(Debug)]
        struct PanicTask;
        impl Task for PanicTask {
            fn step(&mut self) -> Result<TaskStep> {
                panic!("injected task panic");
            }
        }
        let sched = TaskScheduler::new(2);
        let log = Arc::new(Mutex::new(Vec::new()));
        let ok = sched.spawn(CountTask {
            label: 7,
            left: 10,
            log: Arc::clone(&log),
        });
        let failed = sched.spawn(FailTask);
        let panicked = sched.spawn(PanicTask);
        assert!(matches!(
            failed.wait(),
            TaskOutcome::Failed(Error::Internal(_))
        ));
        match panicked.wait() {
            TaskOutcome::Panicked(message) => assert!(message.contains("injected task panic")),
            other => panic!("expected a caught panic, got {other:?}"),
        }
        // The healthy task is unaffected by its neighbours' failures.
        assert!(matches!(ok.wait(), TaskOutcome::Finished(_)));
    }

    #[test]
    fn spawn_after_shutdown_fails_immediately() {
        let mut sched = TaskScheduler::new(1);
        sched.shutdown();
        let log = Arc::new(Mutex::new(Vec::new()));
        let handle = sched.spawn(CountTask {
            label: 0,
            left: 5,
            log,
        });
        assert!(handle.is_done());
        assert!(matches!(
            handle.wait(),
            TaskOutcome::Failed(Error::Unsupported(_))
        ));
    }

    #[test]
    fn shutdown_cancels_queued_tasks_with_a_typed_error() {
        // A task that parks its worker until released, so tasks behind it
        // are still queued when shutdown fires.
        struct GateTask {
            release: Arc<AtomicBool>,
            entered: Arc<AtomicUsize>,
        }
        impl Task for GateTask {
            fn step(&mut self) -> Result<TaskStep> {
                self.entered.fetch_add(1, Ordering::SeqCst);
                while !self.release.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                Ok(TaskStep::Done)
            }
        }
        let mut sched = TaskScheduler::new(1);
        let release = Arc::new(AtomicBool::new(false));
        let entered = Arc::new(AtomicUsize::new(0));
        let gate = sched.spawn(GateTask {
            release: Arc::clone(&release),
            entered: Arc::clone(&entered),
        });
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let queued = sched.spawn(CountTask {
            label: 0,
            left: 1,
            log,
        });
        // Release the gate as shutdown runs so the worker can finish its
        // current quantum; the queued task never runs.
        release.store(true, Ordering::SeqCst);
        sched.shutdown();
        assert!(matches!(gate.wait(), TaskOutcome::Finished(_)));
        assert!(matches!(
            queued.wait(),
            TaskOutcome::Failed(Error::Unsupported(_))
        ));
    }

    #[test]
    fn outcome_into_result_maps_variants() {
        assert!(TaskOutcome::Finished(1u8).into_result().is_ok());
        assert!(matches!(
            TaskOutcome::<u8>::Failed(Error::internal("x")).into_result(),
            Err(Error::Internal(_))
        ));
        assert!(matches!(
            TaskOutcome::<u8>::Panicked("boom".into()).into_result(),
            Err(Error::Internal(_))
        ));
    }

    #[test]
    fn work_stealing_keeps_many_workers_busy() {
        // 4 workers x 64 yieldy tasks: not deterministic enough to assert a
        // steal count, but every task must complete and the yield counter
        // must reflect the requeues.
        let sched = TaskScheduler::new(4);
        let log = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..64)
            .map(|label| {
                sched.spawn(CountTask {
                    label,
                    left: 20,
                    log: Arc::clone(&log),
                })
            })
            .collect();
        for handle in handles {
            assert!(matches!(handle.wait(), TaskOutcome::Finished(_)));
        }
        let stats = sched.stats();
        assert_eq!(stats.completed, 64);
        assert_eq!(stats.yields, 64 * 20);
    }
}
