//! The engine/session object tying storage, updates and buffer management
//! together.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use scanshare_common::sync::{Mutex, RwLock};
use scanshare_common::{
    DeviceKind, Error, PageId, PolicyKind, Result, Rid, ScanShareConfig, SnapshotId, TableId,
    TupleRange, VirtualClock, VirtualDuration, VirtualInstant,
};
use scanshare_core::abm::{Abm, AbmConfig};
use scanshare_core::backend::{CScanBackend, PooledBackend, ScanBackend};
use scanshare_core::metrics::BufferStats;
use scanshare_core::opt::{simulate_opt, OptResult};
use scanshare_core::registry::PolicyRegistry;
use scanshare_core::sharded::ShardedPool;
use scanshare_iosim::{BlockDevice, FileIoDevice, IoDevice, ReferenceTrace};
use scanshare_pdt::checkpoint::checkpoint_stack;
use scanshare_pdt::pdt::Pdt;
use scanshare_pdt::stack::PdtStack;
use scanshare_pdt::wal::{decode_commit, encode_commit, CommitTableRecord};
use scanshare_storage::datagen::Value;
use scanshare_storage::snapshot::Snapshot;
use scanshare_storage::storage::Storage;
use scanshare_storage::wal::{decode_marker, Wal, WalRecordKind};
use scanshare_storage::zone::{ZoneOp, ZonePredicate};

use crate::ops::{BatchSource, CompareOp, Predicate};
use crate::query::Query;
use crate::scan::ScanOperator;
use crate::txn::{TablePin, Txn};

/// Summary of the work an engine performed (virtual time and I/O volume).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Virtual time elapsed on the engine's clock.
    pub elapsed: VirtualDuration,
    /// Buffer-manager counters (hits, misses, I/O bytes).
    pub buffer: BufferStats,
}

/// The published transactional state of one table: an immutable
/// `(Snapshot, PdtStack)` pair that scans and transactions pin with two
/// `Arc` clones, swapped atomically under the state mutex by commits,
/// checkpoints and storage-append adoption. Writers hold the mutex only for
/// the duration of the swap itself, never across I/O or materialization.
#[derive(Debug)]
pub(crate) struct TableTxnState {
    /// The stable storage image the stack is anchored on (the engine's
    /// adopted master snapshot; see
    /// [`Engine::checkpoint`] for when it diverges from the storage-level
    /// master).
    pub snapshot: Arc<Snapshot>,
    /// The shared differential-update layers (depth 1 normally; a second,
    /// fresh top layer exists while a checkpoint materializes the frozen
    /// layers below it).
    pub stack: Arc<PdtStack>,
    /// Bumped by every committed write (transactions, auto-commit updates
    /// and adopted bulk appends); the first-committer-wins conflict check
    /// compares against it.
    pub commit_seq: u64,
    /// Bumped by every completed checkpoint; tags the stale-page
    /// invalidations sent to the scan backend.
    pub epoch: u64,
}

/// Per-table transaction bookkeeping: the published state plus the mutex
/// that serializes checkpoints of this table (checkpoints of different
/// tables, and writers of this one, proceed concurrently).
#[derive(Debug)]
pub(crate) struct TableUpdates {
    state: Mutex<TableTxnState>,
    checkpoint: Mutex<()>,
}

impl TableUpdates {
    /// The published state mutex.
    pub(crate) fn state(&self) -> &Mutex<TableTxnState> {
        &self.state
    }
}

/// A query-execution session: storage + differential updates + the
/// configured concurrent-scan buffer-management backend.
///
/// The engine holds exactly one [`ScanBackend`]: a [`PooledBackend`] for the
/// page-level policies (LRU / PBM / OPT / anything registered with a
/// [`PolicyRegistry`]) or a [`CScanBackend`] for Cooperative Scans. Scans
/// never branch on the policy — they drive whichever backend is installed.
#[derive(Debug)]
pub struct Engine {
    storage: Arc<Storage>,
    config: ScanShareConfig,
    backend: Box<dyn ScanBackend>,
    device: Arc<dyn BlockDevice>,
    clock: Arc<VirtualClock>,
    trace: Option<Arc<ReferenceTrace>>,
    tables: RwLock<HashMap<TableId, Arc<TableUpdates>>>,
    /// The write-ahead log, present when
    /// [`ScanShareConfig::wal_dir`] selects a durability directory. Commits
    /// append to it before they are acknowledged; [`Engine::recover`]
    /// replays it over the last durable segment image.
    wal: Option<Arc<Wal>>,
}

impl Engine {
    /// Creates an engine over `storage` with the policy selected in `config`,
    /// resolving page-level policies from the default [`PolicyRegistry`]
    /// (`"lru"`, `"pbm"`, `"pbm-lru"`).
    ///
    /// `PolicyKind::Opt` runs the engine under PBM while recording the page
    /// reference trace; [`Engine::opt_result`] then replays that trace under
    /// Belady's algorithm, exactly like the paper's OPT methodology.
    pub fn new(storage: Arc<Storage>, config: ScanShareConfig) -> Result<Arc<Self>> {
        Self::with_registry(storage, config, &PolicyRegistry::default())
    }

    /// Like [`Engine::new`], resolving the replacement policy from a caller
    /// supplied registry. `config.custom_policy` selects a registered policy
    /// by name; otherwise `config.policy` maps to the built-in names.
    pub fn with_registry(
        storage: Arc<Storage>,
        config: ScanShareConfig,
        registry: &PolicyRegistry,
    ) -> Result<Arc<Self>> {
        config.validate()?;
        // A durability directory needs a base image for every table before
        // the device is built: `DeviceKind::File` requires the file store
        // the materialization creates.
        Self::ensure_durable_base(&storage, &config)?;
        let device: Arc<dyn BlockDevice> = match config.device {
            DeviceKind::Sim => Arc::new(IoDevice::new(
                config.io_bandwidth,
                VirtualDuration::from_nanos(config.io_latency_nanos),
            )),
            DeviceKind::File => {
                let store = storage.file_store().ok_or_else(|| {
                    Error::config(
                        "device = file requires file-backed storage: materialize the tables \
                         (Storage::materialize_table) or open an on-disk directory \
                         (Storage::open_directory) first",
                    )
                })?;
                if config.o_direct {
                    // Best effort: O_DIRECT is a performance knob, and some
                    // filesystems (notably tmpfs) reject it. Buffered reads
                    // keep every other property of the file device.
                    store.set_o_direct(true);
                }
                Arc::new(FileIoDevice::new(
                    store,
                    config.io_workers,
                    config.io_queue_depth,
                ))
            }
        };
        Self::with_device(storage, config, registry, device)
    }

    /// Like [`Engine::with_registry`], running all I/O through a caller
    /// supplied [`BlockDevice`] — the hook used by fault-injection tests and
    /// custom device wrappers. The device's virtual-time completions drive
    /// the engine's clock exactly as the built-in devices do.
    pub fn with_device(
        storage: Arc<Storage>,
        config: ScanShareConfig,
        registry: &PolicyRegistry,
        device: Arc<dyn BlockDevice>,
    ) -> Result<Arc<Self>> {
        config.validate()?;
        Self::ensure_durable_base(&storage, &config)?;
        let wal = match &config.wal_dir {
            Some(dir) => Some(Arc::new(Wal::open(dir, config.wal_group_commit)?)),
            None => None,
        };
        let clock = VirtualClock::shared();
        let mut trace = None;

        let backend: Box<dyn ScanBackend> = match (config.policy, &config.custom_policy) {
            (PolicyKind::CScan, None) => {
                // The ABM's chunk directory is partitioned across the same
                // `pool_shards` lock domains the page pool would use;
                // relevance decisions stay globally exact, so the shard
                // count changes contention, never I/O volume.
                let abm = Abm::new(
                    AbmConfig::new(config.buffer_pool_bytes, config.page_size_bytes)
                        .with_shards(config.pool_shards),
                );
                Box::new(
                    CScanBackend::new(abm, Arc::clone(&clock), Arc::clone(&device))
                        .with_load_window(config.cscan_load_window),
                )
            }
            (policy, _custom) => {
                let name = scanshare_core::registry::pooled_policy_name(&config, policy);
                let replacement = registry.build(name, &config)?;
                // The page space is partitioned across `pool_shards` lock
                // domains; replacement decisions stay globally exact, so the
                // shard count changes contention, never I/O volume.
                let mut pool = ShardedPool::new(
                    config.buffer_pool_pages().max(1),
                    config.page_size_bytes,
                    replacement,
                    config.pool_shards,
                );
                if policy == PolicyKind::Opt {
                    let t = Arc::new(ReferenceTrace::new());
                    trace = Some(Arc::clone(&t));
                    pool = pool.with_trace(t);
                }
                Box::new(
                    PooledBackend::new(pool, Arc::clone(&clock), Arc::clone(&device), policy)
                        .with_prefetch_window(config.prefetch_pages),
                )
            }
        };

        Ok(Arc::new(Self {
            storage,
            config,
            backend,
            device,
            clock,
            trace,
            tables: RwLock::new(HashMap::new()),
            wal,
        }))
    }

    /// When `config.wal_dir` selects a durability directory, materializes
    /// every catalog table that has no on-disk manifest there yet, so the
    /// WAL always replays over a complete durable base image. Idempotent:
    /// already-materialized tables (including everything restored by
    /// [`Storage::open_directory`]) are left untouched.
    fn ensure_durable_base(storage: &Arc<Storage>, config: &ScanShareConfig) -> Result<()> {
        let Some(dir) = &config.wal_dir else {
            return Ok(());
        };
        for table in storage.table_ids() {
            if !storage.table_is_materialized(table, dir)? {
                let snapshot = storage.master_snapshot(table)?;
                storage.materialize_snapshot(&snapshot, dir)?;
            }
        }
        Ok(())
    }

    /// Whether commits of this engine are logged to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// The engine's write-ahead log, when durability is configured.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Appends one commit's per-table write sets to the WAL without
    /// syncing, returning the record's log sequence (or `None` when the
    /// engine has no WAL). Callers must hold the written tables' state
    /// locks across this call so the log order matches the commit-sequence
    /// order, and pair it with [`Engine::wal_commit_sync`] after the locks
    /// are released.
    pub(crate) fn wal_append_commit(&self, records: &[CommitTableRecord]) -> Result<Option<u64>> {
        match &self.wal {
            Some(wal) => Ok(Some(wal.append_commit(&encode_commit(records))?)),
            None => Ok(None),
        }
    }

    /// Makes the commit record `seq` durable subject to group commit; a
    /// no-op for engines without a WAL.
    pub(crate) fn wal_commit_sync(&self, seq: Option<u64>) -> Result<()> {
        if let (Some(wal), Some(seq)) = (&self.wal, seq) {
            wal.commit_sync(seq)?;
        }
        Ok(())
    }

    /// The underlying storage engine.
    pub fn storage(&self) -> &Arc<Storage> {
        &self.storage
    }

    /// The engine configuration.
    pub fn config(&self) -> &ScanShareConfig {
        &self.config
    }

    /// The configured policy.
    pub fn policy(&self) -> PolicyKind {
        self.config.policy
    }

    /// The engine's virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The I/O device every backend charge goes through: the simulated
    /// device by default, the file-backed device under
    /// [`DeviceKind::File`], or whatever [`Engine::with_device`] injected.
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.device
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualInstant {
        self.clock.now()
    }

    /// The scan backend every scan of this engine drives.
    pub fn backend(&self) -> &dyn ScanBackend {
        self.backend.as_ref()
    }

    /// Aggregated buffer-manager statistics.
    pub fn buffer_stats(&self) -> BufferStats {
        self.backend.stats()
    }

    /// Replays the recorded page-reference trace under Belady's OPT with the
    /// configured buffer capacity. Only available when the engine was created
    /// with `PolicyKind::Opt`.
    pub fn opt_result(&self) -> Result<OptResult> {
        let trace = self
            .trace
            .as_ref()
            .ok_or_else(|| Error::Unsupported("OPT trace recording is not enabled".into()))?;
        Ok(simulate_opt(
            &trace.pages(),
            self.config.buffer_pool_pages().max(1),
        ))
    }

    /// Summary of the engine's work so far.
    pub fn query_stats(&self) -> QueryStats {
        QueryStats {
            elapsed: self.now().since(VirtualInstant::EPOCH),
            buffer: self.buffer_stats(),
        }
    }

    // ------------------------------------------------------------------
    // Differential updates: snapshot-isolated transactions over stacked
    // PDTs (see `txn` for the isolation model)
    // ------------------------------------------------------------------

    /// The transaction bookkeeping of a table (created on first use from
    /// the current storage master snapshot).
    pub(crate) fn table_updates(&self, table: TableId) -> Result<Arc<TableUpdates>> {
        {
            let tables = self.tables.read();
            if let Some(updates) = tables.get(&table) {
                return Ok(Arc::clone(updates));
            }
        }
        let columns = self.storage.table(table)?.spec.columns.len();
        let snapshot = self.storage.master_snapshot(table)?;
        // Start the commit sequence at the WAL sequence the durable image
        // already covers (0 for in-memory tables), so replay after
        // `Storage::open_directory` can tell folded-in commits from the ones
        // it must re-apply.
        let commit_seq = self.storage.durable_wal_seq(table);
        let mut tables = self.tables.write();
        Ok(Arc::clone(tables.entry(table).or_insert_with(|| {
            Arc::new(TableUpdates {
                state: Mutex::new(TableTxnState {
                    snapshot,
                    stack: Arc::new(PdtStack::new(columns, 1)),
                    commit_seq,
                    epoch: 0,
                }),
                checkpoint: Mutex::new(()),
            })
        })))
    }

    /// Adopts a storage-level master change (a committed bulk append, or a
    /// checkpoint installed by another engine over the same storage) into
    /// the published state, when it is safe: always when no differential
    /// updates are pending, and for append-derived snapshots — whose stable
    /// stream extends the adopted one — even with pending updates, which are
    /// then interpreted over the appended image. Adoption counts as a commit
    /// (the visible stream changed), so open transactions conflict.
    pub(crate) fn sync_state_with_storage(
        &self,
        table: TableId,
        state: &mut TableTxnState,
    ) -> Result<()> {
        let master = self.storage.master_snapshot(table)?;
        if master.id() == state.snapshot.id() {
            return Ok(());
        }
        if state.stack.is_empty() || self.derives_from(&master, state.snapshot.id())? {
            state.snapshot = master;
            state.commit_seq += 1;
        }
        Ok(())
    }

    /// Whether `snapshot` was derived (through any chain of appends) from
    /// the snapshot with id `ancestor`.
    fn derives_from(&self, snapshot: &Snapshot, ancestor: SnapshotId) -> Result<bool> {
        let mut current = snapshot.parent();
        while let Some(id) = current {
            if id == ancestor {
                return Ok(true);
            }
            current = self.storage.snapshot(id)?.parent();
        }
        Ok(false)
    }

    /// Pins the current published `(Snapshot, PdtStack)` pair of `table`:
    /// the consistent view every scan (and every transaction, at its first
    /// touch of the table) works against. Cheap — two `Arc` clones under a
    /// short mutex.
    pub fn table_pin(&self, table: TableId) -> Result<TablePin> {
        let updates = self.table_updates(table)?;
        let mut state = updates.state().lock();
        self.sync_state_with_storage(table, &mut state)?;
        Ok(TablePin {
            table,
            snapshot: Arc::clone(&state.snapshot),
            stack: Arc::clone(&state.stack),
            commit_seq: state.commit_seq,
            epoch: state.epoch,
        })
    }

    /// Begins a snapshot-isolated update transaction; see [`Txn`].
    pub fn begin(self: &Arc<Self>) -> Txn {
        Txn::new(Arc::clone(self))
    }

    /// Applies one auto-committed update under the state mutex (a one-op
    /// transaction that can never conflict). The op runs against a private
    /// top layer — exactly like a [`Txn`] — so the committed delta can be
    /// logged to the WAL before it is folded into the shared stack.
    fn autocommit<R>(
        &self,
        table: TableId,
        op: impl FnOnce(&mut PdtStack, u64) -> Result<R>,
    ) -> Result<R> {
        let updates = self.table_updates(table)?;
        let mut state = updates.state().lock();
        self.sync_state_with_storage(table, &mut state)?;
        let stable = state.snapshot.stable_tuples();
        let visible_before = state.stack.visible_count(stable);
        let stack = Arc::make_mut(&mut state.stack);
        stack.push_layer(Pdt::new(stack.column_count()));
        let result = match op(stack, stable) {
            Ok(result) => result,
            Err(err) => {
                stack.pop_layer();
                return Err(err);
            }
        };
        let private = stack.pop_layer().expect("the private layer pushed above");
        if private.is_empty() {
            return Ok(result);
        }
        let record = CommitTableRecord {
            table,
            commit_seq: state.commit_seq + 1,
            visible_before,
            pdt: private,
        };
        let wal_seq = self.wal_append_commit(std::slice::from_ref(&record))?;
        Arc::make_mut(&mut state.stack).absorb_top(&record.pdt, stable)?;
        state.commit_seq += 1;
        drop(state);
        self.wal_commit_sync(wal_seq)?;
        Ok(result)
    }

    /// Number of rows currently visible in `table` (stable tuples of the
    /// adopted snapshot plus PDT inserts minus deletes).
    pub fn visible_rows(&self, table: TableId) -> Result<u64> {
        Ok(self.table_pin(table)?.visible_rows())
    }

    /// Inserts a row at visible position `rid` (use `visible_rows` to append
    /// at the end) as a single auto-committed transaction.
    pub fn insert_row(&self, table: TableId, rid: u64, row: Vec<Value>) -> Result<()> {
        self.autocommit(table, |stack, stable| {
            stack.insert(Rid::new(rid), row, stable)
        })
    }

    /// Deletes the visible row at `rid` as a single auto-committed
    /// transaction.
    pub fn delete_row(&self, table: TableId, rid: u64) -> Result<()> {
        self.autocommit(table, |stack, stable| stack.delete(Rid::new(rid), stable))
    }

    /// Updates column `col` of the visible row at `rid` as a single
    /// auto-committed transaction.
    pub fn update_value(&self, table: TableId, rid: u64, col: usize, value: Value) -> Result<()> {
        self.autocommit(table, |stack, stable| {
            stack.modify(Rid::new(rid), col, value, stable)
        })
    }

    /// Checkpoints `table`: materializes the pending differential updates
    /// into a brand-new stable image (Figure 7) and swaps it in as the
    /// table's published snapshot, with a fresh (empty apart from
    /// mid-checkpoint commits) PDT stack on top.
    ///
    /// The checkpoint is **background-safe**: the table's state mutex is
    /// held only for the freeze and the final swap, never across the
    /// materialization itself, so writers commit and scans start throughout
    /// (a regression test drives writers mid-checkpoint). Concretely:
    ///
    /// 1. **Freeze** — pin the current `(snapshot, stack)` pair and push a
    ///    fresh top layer; commits arriving while the checkpoint runs fold
    ///    into that top layer, whose positions refer to the frozen stream —
    ///    which is exactly the new image's stable stream.
    /// 2. **Materialize** — scan the pinned snapshot, merge the frozen
    ///    layers, install the result as a new storage snapshot sharing no
    ///    pages with the old one. Scans pinned to the old pair keep reading
    ///    the old pages.
    /// 3. **Swap** — atomically publish (new snapshot, during-checkpoint
    ///    layers), bump the checkpoint epoch and hand the old snapshot's
    ///    now-unreachable pages to the scan backend's epoch-tagged
    ///    [`invalidate_stale`](scanshare_core::backend::ScanBackend::invalidate_stale)
    ///    hook so the buffer manager returns their capacity immediately.
    ///
    /// Checkpoints of the same table serialize; checkpoints of different
    /// tables run concurrently. Returns the new master snapshot.
    pub fn checkpoint(&self, table: TableId) -> Result<Arc<Snapshot>> {
        let updates = self.table_updates(table)?;
        let _one_at_a_time = updates.checkpoint.lock();

        // Phase 1: freeze.
        let (old_snapshot, frozen, frozen_depth, through_seq) = {
            let mut state = updates.state().lock();
            self.sync_state_with_storage(table, &mut state)?;
            let old_snapshot = Arc::clone(&state.snapshot);
            let frozen = Arc::clone(&state.stack);
            let depth = frozen.depth();
            Arc::make_mut(&mut state.stack).push_layer(Pdt::new(frozen.column_count()));
            (old_snapshot, frozen, depth, state.commit_seq)
        };

        // Phase 2: materialize without holding the state mutex. For durable
        // engines the phase is bracketed by WAL markers and additionally
        // writes the new image's segments + manifest (atomically renamed —
        // the real durable commit point of the checkpoint); the manifest is
        // stamped with `through_seq`, so recovery replays exactly the
        // commits that arrived while the checkpoint ran.
        let materialized = (|| -> Result<Arc<Snapshot>> {
            if let Some(wal) = &self.wal {
                wal.append_marker(WalRecordKind::CheckpointBegin, table, through_seq)?;
            }
            let new_snapshot = checkpoint_stack(&self.storage, table, &old_snapshot, &frozen)?;
            if let Some(dir) = &self.config.wal_dir {
                self.storage
                    .materialize_snapshot_logged(&new_snapshot, dir, through_seq)?;
            }
            Ok(new_snapshot)
        })();
        let new_snapshot = match materialized {
            Ok(snapshot) => snapshot,
            Err(err) => {
                // Undo the freeze: fold the during-checkpoint layer back
                // into the layer it was pushed onto.
                let mut state = updates.state().lock();
                let stable = state.snapshot.stable_tuples();
                let stack = Arc::make_mut(&mut state.stack);
                if let Some(top) = stack.pop_layer() {
                    stack.absorb_top(&top, stable)?;
                }
                return Err(err);
            }
        };

        // Phase 3: swap and invalidate.
        let stale: Vec<PageId> = old_snapshot.pages().collect();
        let epoch = {
            let mut state = updates.state().lock();
            state.stack = Arc::new(state.stack.split_upper(frozen_depth));
            state.snapshot = Arc::clone(&new_snapshot);
            state.epoch += 1;
            state.epoch
        };
        self.backend.invalidate_stale(table, epoch, &stale);
        if let Some(wal) = &self.wal {
            wal.append_marker(WalRecordKind::CheckpointEnd, table, through_seq)?;
            // The durable images now cover everything up to `through_seq`
            // for this table: rotate the covered prefix out of the log so it
            // stops growing without bound across checkpoints.
            self.rotate_wal(wal)?;
        }
        Ok(new_snapshot)
    }

    /// Rotates the WAL, dropping every record the durable segment manifests
    /// already cover: commit records whose *every* table entry is at or
    /// below that table's manifest `wal_seq`, and checkpoint markers of
    /// completed checkpoints. Records that fail to decode are conservatively
    /// kept (recovery, not rotation, is the place to diagnose them).
    fn rotate_wal(&self, wal: &Wal) -> Result<()> {
        let storage = &self.storage;
        wal.rotate(|record| match record.kind {
            WalRecordKind::Commit => match decode_commit(&record.body) {
                Ok(entries) => entries
                    .iter()
                    .all(|e| e.commit_seq <= storage.durable_wal_seq(e.table)),
                Err(_) => false,
            },
            WalRecordKind::CheckpointBegin | WalRecordKind::CheckpointEnd => {
                match decode_marker(&record.body) {
                    Ok((table, seq)) => seq <= storage.durable_wal_seq(table),
                    Err(_) => false,
                }
            }
            // Never surfaced by record iteration; unreachable in practice.
            WalRecordKind::Rotate => false,
        })?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Crash recovery
    // ------------------------------------------------------------------

    /// Recovers an engine from a durability directory after a crash: reopens
    /// the last durable segment images cold ([`Storage::open_directory`]),
    /// then replays the write-ahead log's commit records on top — skipping
    /// everything a completed checkpoint already folded into the segments —
    /// so the recovered engine sees exactly the durable prefix of the
    /// committed history (every synced commit; under group commit, possibly
    /// minus up to `group_commit - 1` of the newest unsynced ones).
    ///
    /// `config`'s physical layout (`page_size_bytes`, `chunk_tuples`) is
    /// overridden by what the manifests record, and `wal_dir` is pointed at
    /// `dir`, so the recovered engine keeps logging to the same WAL.
    ///
    /// Torn state is handled, never fatal: a torn final WAL record is
    /// truncated away, and a checkpoint that crashed between its begin/end
    /// markers is ignored (the atomically-renamed manifest means the old
    /// image is still the authoritative base). Structural contradictions
    /// surface as typed errors instead of panics:
    /// [`Error::WalCorrupt`] for records that contradict the rebuilt state
    /// and [`Error::WalUnknownTable`] for records naming a table absent
    /// from the recovered catalog.
    pub fn recover(dir: impl AsRef<Path>, config: ScanShareConfig) -> Result<Arc<Self>> {
        let dir = dir.as_ref();
        let storage = Storage::open_directory(dir)?;
        let mut config = config;
        config.page_size_bytes = storage.page_size_bytes();
        config.chunk_tuples = storage.chunk_tuples();
        config.wal_dir = Some(dir.to_path_buf());
        let engine = Self::new(storage, config)?;
        engine.replay_wal(dir)?;
        Ok(engine)
    }

    /// Replays every verified WAL record over the freshly opened durable
    /// images. Commit records re-apply their serialized private PDTs through
    /// the same [`PdtStack::absorb_top`] a live commit uses; checkpoint
    /// markers are validated but drive no state (the manifest rename is the
    /// checkpoint's durable commit point).
    fn replay_wal(&self, dir: &Path) -> Result<()> {
        for record in Wal::read_records(dir)? {
            match record.kind {
                WalRecordKind::Commit => {
                    for entry in decode_commit(&record.body)? {
                        self.replay_commit(entry)?;
                    }
                }
                WalRecordKind::CheckpointBegin | WalRecordKind::CheckpointEnd => {
                    let (table, _seq) = decode_marker(&record.body)?;
                    if self.storage.table(table).is_err() {
                        return Err(Error::WalUnknownTable(table));
                    }
                }
                // Rotation bases are folded into record sequences by the
                // reader and never surface as records.
                WalRecordKind::Rotate => {}
            }
        }
        Ok(())
    }

    /// Re-applies one table's share of a logged commit. Records the durable
    /// image already covers (per-table sequence at or below the manifest's
    /// `wal_seq`) are skipped; sequence *gaps* are tolerated — adopted bulk
    /// appends bump the live commit sequence without writing WAL records —
    /// but the logged pre-commit visible row count must match the rebuilt
    /// state exactly, which catches a stale image, a lost append or record
    /// misordering as [`Error::WalCorrupt`] instead of silently diverging.
    fn replay_commit(&self, entry: CommitTableRecord) -> Result<()> {
        if self.storage.table(entry.table).is_err() {
            return Err(Error::WalUnknownTable(entry.table));
        }
        let updates = self.table_updates(entry.table)?;
        let mut state = updates.state().lock();
        if entry.commit_seq <= state.commit_seq {
            return Ok(());
        }
        let stable = state.snapshot.stable_tuples();
        let visible = state.stack.visible_count(stable);
        if visible != entry.visible_before {
            return Err(Error::WalCorrupt(format!(
                "commit {} of table {} expects {} visible rows but the recovered state has {}",
                entry.commit_seq, entry.table, entry.visible_before, visible
            )));
        }
        Arc::make_mut(&mut state.stack).absorb_top(&entry.pdt, stable)?;
        state.commit_seq = entry.commit_seq;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Queries and scans
    // ------------------------------------------------------------------

    /// Starts building a query over `table`; see [`Query`] for the available
    /// clauses. This is the primary entry point for running queries:
    ///
    /// ```ignore
    /// let result = engine
    ///     .query(table)
    ///     .columns(["k", "v"])
    ///     .range(..)
    ///     .filter(Predicate::new(1, CompareOp::Le, 50))
    ///     .aggregate(AggrSpec::global(vec![Aggregate::Count]))
    ///     .parallelism(4)
    ///     .run()?;
    /// ```
    pub fn query(self: &Arc<Self>, table: TableId) -> Query {
        Query::new(Arc::clone(self), table)
    }

    /// Opens a scan over `columns` (by name) of `table` for the visible row
    /// range `rid_range`, driven by the engine's backend: sequential range
    /// delivery for pooled backends, ABM chunk dispatch (out of table order)
    /// for Cooperative Scans.
    pub fn scan(
        self: &Arc<Self>,
        table: TableId,
        columns: &[&str],
        rid_range: TupleRange,
    ) -> Result<Box<dyn BatchSource + Send>> {
        self.scan_with_order(table, columns, rid_range, false)
    }

    /// Like [`Engine::scan`] but forcing in-order delivery even under
    /// Cooperative Scans (the "CScan as drop-in replacement for Scan" mode of
    /// Section 2.3).
    pub fn scan_in_order(
        self: &Arc<Self>,
        table: TableId,
        columns: &[&str],
        rid_range: TupleRange,
    ) -> Result<Box<dyn BatchSource + Send>> {
        self.scan_with_order(table, columns, rid_range, true)
    }

    fn scan_with_order(
        self: &Arc<Self>,
        table: TableId,
        columns: &[&str],
        rid_range: TupleRange,
        in_order: bool,
    ) -> Result<Box<dyn BatchSource + Send>> {
        let pin = self.table_pin(table)?;
        self.scan_pinned(pin, columns, rid_range, in_order, None)
    }

    /// Like [`Engine::scan`] but reading through an explicit [`TablePin`]
    /// (a transaction's view, or a pin captured earlier for a consistent
    /// multi-scan read). `filter` is the row-level predicate the plan will
    /// apply (column index within the `columns` projection); the engine uses
    /// it for zone-map pruning — chunks whose min/max metadata proves no row
    /// can match are removed from the scan's stable interest *before* the
    /// backend sees the chunk list — while the row-level filtering itself
    /// stays the caller's job.
    pub fn scan_pinned(
        self: &Arc<Self>,
        pin: TablePin,
        columns: &[&str],
        rid_range: TupleRange,
        in_order: bool,
        filter: Option<&Predicate>,
    ) -> Result<Box<dyn BatchSource + Send>> {
        let column_indices = self.storage.resolve_columns(pin.table, columns)?;
        // Translate the projection-relative predicate into a table-relative
        // zone predicate. A predicate naming a column outside the projection
        // is left to the row-level filter to reject; it never prunes.
        let zone_pred = match filter {
            Some(pred) if self.config.zone_maps => column_indices
                .get(pred.column)
                .map(|&table_col| ZonePredicate::new(table_col, zone_op(pred.op), pred.value)),
            _ => None,
        };
        Ok(Box::new(ScanOperator::with_pin(
            Arc::clone(self),
            pin,
            column_indices,
            rid_range,
            in_order,
            zone_pred,
        )?))
    }

    /// Charges `tuples` of CPU work to the engine's virtual clock.
    pub(crate) fn charge_cpu(&self, tuples: u64) {
        let secs = tuples as f64 / self.config.cpu_tuples_per_sec as f64;
        self.clock.advance(VirtualDuration::from_secs_f64(secs));
    }
}

/// The zone-map form of a row-level comparison operator (1:1 — both sides
/// compare a column against an inclusive/exclusive constant bound).
fn zone_op(op: CompareOp) -> ZoneOp {
    match op {
        CompareOp::Lt => ZoneOp::Lt,
        CompareOp::Le => ZoneOp::Le,
        CompareOp::Gt => ZoneOp::Gt,
        CompareOp::Ge => ZoneOp::Ge,
        CompareOp::Eq => ZoneOp::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_core::policy::{ReplacementPolicy, ScanInfo};
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::datagen::DataGen;
    use scanshare_storage::layout::ScanPagePlan;
    use scanshare_storage::table::TableSpec;

    fn storage_with_table(tuples: u64) -> (Arc<Storage>, TableId) {
        let storage = Storage::with_seed(1024, 500, 5);
        let spec = TableSpec::new(
            "t",
            vec![
                ColumnSpec::with_width("k", ColumnType::Int64, 8.0),
                ColumnSpec::with_width("v", ColumnType::Int64, 4.0),
            ],
            tuples,
        );
        let id = storage
            .create_table_with_data(
                spec,
                vec![
                    DataGen::Sequential { start: 0, step: 1 },
                    DataGen::Constant(2),
                ],
            )
            .unwrap();
        (storage, id)
    }

    fn config(policy: PolicyKind) -> ScanShareConfig {
        ScanShareConfig {
            page_size_bytes: 1024,
            chunk_tuples: 500,
            buffer_pool_bytes: 64 * 1024,
            policy,
            ..Default::default()
        }
    }

    #[test]
    fn engine_selects_backend_by_policy() {
        let (storage, _) = storage_with_table(100);
        let lru = Engine::new(Arc::clone(&storage), config(PolicyKind::Lru)).unwrap();
        assert_eq!(lru.backend().kind(), PolicyKind::Lru);
        assert_eq!(lru.backend().name(), "lru");
        let pbm = Engine::new(Arc::clone(&storage), config(PolicyKind::Pbm)).unwrap();
        assert_eq!(pbm.backend().name(), "pbm");
        let cscan = Engine::new(Arc::clone(&storage), config(PolicyKind::CScan)).unwrap();
        assert_eq!(cscan.backend().kind(), PolicyKind::CScan);
        assert_eq!(cscan.backend().name(), "cscan");
        let opt = Engine::new(storage, config(PolicyKind::Opt)).unwrap();
        assert_eq!(opt.backend().name(), "pbm", "OPT records a trace under PBM");
        assert!(opt.opt_result().is_ok());
        assert!(lru.opt_result().is_err());
    }

    #[derive(Debug)]
    struct NeverEvict;

    impl ReplacementPolicy for NeverEvict {
        fn name(&self) -> &'static str {
            "never-evict"
        }
        fn register_scan(&mut self, _: &ScanInfo, _: &ScanPagePlan, _: VirtualInstant) {}
        fn report_scan_position(&mut self, _: scanshare_common::ScanId, _: u64, _: VirtualInstant) {
        }
        fn unregister_scan(&mut self, _: scanshare_common::ScanId, _: VirtualInstant) {}
        fn on_access(
            &mut self,
            _: scanshare_common::PageId,
            _: Option<scanshare_common::ScanId>,
            _: VirtualInstant,
        ) {
        }
        fn on_admit(&mut self, _: scanshare_common::PageId, _: VirtualInstant) {}
        fn on_evict(&mut self, _: scanshare_common::PageId) {}
        fn choose_victims(
            &mut self,
            _: usize,
            _: &std::collections::HashSet<scanshare_common::PageId>,
            _: VirtualInstant,
        ) -> Vec<scanshare_common::PageId> {
            Vec::new()
        }
    }

    #[test]
    fn custom_policies_plug_in_through_the_registry() {
        let (storage, table) = storage_with_table(200);
        let mut registry = PolicyRegistry::default();
        registry.register("never-evict", |_| Box::new(NeverEvict));
        let cfg = config(PolicyKind::Lru).with_custom_policy("never-evict");
        let engine = Engine::with_registry(Arc::clone(&storage), cfg, &registry).unwrap();
        assert_eq!(engine.backend().name(), "never-evict");
        // The engine actually scans through the custom policy.
        let count = engine
            .query(table)
            .columns(["k"])
            .aggregate(crate::ops::AggrSpec::global(vec![
                crate::ops::Aggregate::Count,
            ]))
            .run()
            .unwrap()[&0]
            .count;
        assert_eq!(count, 200);

        // Unknown names surface a configuration error.
        let bad = config(PolicyKind::Lru).with_custom_policy("does-not-exist");
        assert!(Engine::with_registry(storage, bad, &registry).is_err());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (storage, _) = storage_with_table(10);
        let bad = ScanShareConfig {
            page_size_bytes: 0,
            ..config(PolicyKind::Lru)
        };
        assert!(Engine::new(Arc::clone(&storage), bad).is_err());
        let conflicting = config(PolicyKind::CScan).with_custom_policy("lru");
        assert!(Engine::new(storage, conflicting).is_err());
    }

    #[test]
    fn updates_change_visible_rows() {
        let (storage, table) = storage_with_table(100);
        let engine = Engine::new(storage, config(PolicyKind::Lru)).unwrap();
        assert_eq!(engine.visible_rows(table).unwrap(), 100);
        engine.insert_row(table, 0, vec![-1, -1]).unwrap();
        assert_eq!(engine.visible_rows(table).unwrap(), 101);
        engine.delete_row(table, 5).unwrap();
        engine.delete_row(table, 5).unwrap();
        assert_eq!(engine.visible_rows(table).unwrap(), 99);
        engine.update_value(table, 0, 1, 42).unwrap();
        // Bad positions surface errors.
        assert!(engine.insert_row(table, 10_000, vec![0, 0]).is_err());
    }

    #[test]
    fn checkpoint_clears_the_pdt_and_keeps_visible_data() {
        let (storage, table) = storage_with_table(200);
        let engine = Engine::new(Arc::clone(&storage), config(PolicyKind::Lru)).unwrap();
        engine.delete_row(table, 0).unwrap();
        engine.insert_row(table, 0, vec![-7, -8]).unwrap();
        let before = engine.visible_rows(table).unwrap();
        let snapshot = engine.checkpoint(table).unwrap();
        assert_eq!(snapshot.stable_tuples(), before);
        assert!(engine.table_pin(table).unwrap().stack.is_empty());
        assert_eq!(engine.visible_rows(table).unwrap(), before);
        // The checkpointed data starts with the inserted row.
        let layout = storage.layout(table).unwrap();
        let head = storage
            .read_range(&layout, &snapshot, 0, TupleRange::new(0, 2))
            .unwrap();
        assert_eq!(head, vec![-7, 1]);
    }

    struct TestDir(std::path::PathBuf);

    impl TestDir {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU32, Ordering};
            static SEQ: AtomicU32 = AtomicU32::new(0);
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!(
                "scanshare-engine-{tag}-{}-{seq}",
                std::process::id()
            ));
            std::fs::create_dir_all(&path).unwrap();
            Self(path)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn head_rows(engine: &Arc<Engine>, table: TableId, n: u64) -> Vec<Vec<Value>> {
        engine
            .query(table)
            .columns(["k", "v"])
            .range(..n)
            .in_order()
            .rows()
            .unwrap()
    }

    #[test]
    fn committed_updates_survive_recovery() {
        let dir = TestDir::new("recover");
        let (storage, table) = storage_with_table(100);
        let cfg = config(PolicyKind::Lru).with_wal_dir(&dir.0);
        let engine = Engine::new(storage, cfg).unwrap();
        assert!(engine.is_durable());
        engine.insert_row(table, 0, vec![-1, -2]).unwrap();
        engine.delete_row(table, 50).unwrap();
        engine.update_value(table, 1, 1, 99).unwrap();
        let mut txn = engine.begin();
        txn.insert(table, 0, vec![-3, -4]).unwrap();
        txn.delete(table, 2).unwrap();
        txn.commit().unwrap();
        let visible = engine.visible_rows(table).unwrap();
        let head = head_rows(&engine, table, 4);
        drop(engine);

        // "Crash": recover cold from the directory, replaying the WAL.
        let recovered = Engine::recover(&dir.0, config(PolicyKind::Lru)).unwrap();
        assert_eq!(recovered.visible_rows(table).unwrap(), visible);
        assert_eq!(head_rows(&recovered, table, 4), head);

        // A checkpoint folds the replayed updates into a new durable image;
        // commits after it land in the WAL and survive another recovery.
        recovered.checkpoint(table).unwrap();
        recovered.delete_row(table, 0).unwrap();
        drop(recovered);
        let again = Engine::recover(&dir.0, config(PolicyKind::Lru)).unwrap();
        assert_eq!(again.visible_rows(table).unwrap(), visible - 1);
    }

    #[test]
    fn recovery_rejects_records_for_unknown_tables() {
        use scanshare_pdt::wal::{encode_commit, CommitTableRecord};
        use scanshare_storage::wal::{Wal, WalRecordKind};

        let dir = TestDir::new("unknown");
        let (storage, table) = storage_with_table(50);
        let engine = Engine::new(storage, config(PolicyKind::Lru).with_wal_dir(&dir.0)).unwrap();
        engine.delete_row(table, 0).unwrap();
        drop(engine);

        // Forge a commit record naming a table the catalog never had.
        let wal = Wal::open(&dir.0, 1).unwrap();
        let mut pdt = Pdt::new(2);
        pdt.delete(Rid::new(0), 10).unwrap();
        let body = encode_commit(&[CommitTableRecord {
            table: TableId::new(9),
            commit_seq: 1,
            visible_before: 10,
            pdt,
        }]);
        wal.append_commit(&body).unwrap();
        wal.sync_all().unwrap();
        drop(wal);
        let err = Engine::recover(&dir.0, config(PolicyKind::Lru)).unwrap_err();
        assert!(
            matches!(err, Error::WalUnknownTable(t) if t == TableId::new(9)),
            "got {err:?}"
        );

        // The same applies to checkpoint markers naming absent tables.
        let wal = Wal::open(&dir.0, 1).unwrap();
        // Drop the forged commit by rewriting the log: truncate to empty.
        drop(wal);
        std::fs::write(dir.0.join("wal.log"), b"").unwrap();
        let wal = Wal::open(&dir.0, 1).unwrap();
        wal.append_marker(WalRecordKind::CheckpointBegin, TableId::new(8), 1)
            .unwrap();
        drop(wal);
        let err = Engine::recover(&dir.0, config(PolicyKind::Lru)).unwrap_err();
        assert!(matches!(err, Error::WalUnknownTable(t) if t == TableId::new(8)));
    }

    #[test]
    fn recovery_detects_visible_count_contradictions() {
        use scanshare_pdt::wal::{encode_commit, CommitTableRecord};
        use scanshare_storage::wal::Wal;

        let dir = TestDir::new("contradict");
        let (storage, table) = storage_with_table(50);
        let engine = Engine::new(storage, config(PolicyKind::Lru).with_wal_dir(&dir.0)).unwrap();
        engine.delete_row(table, 0).unwrap();
        drop(engine);

        // A record whose pre-commit visible count contradicts the rebuilt
        // state (50 stable - 1 replayed delete = 49, not 42).
        let wal = Wal::open(&dir.0, 1).unwrap();
        let mut pdt = Pdt::new(2);
        pdt.delete(Rid::new(0), 50).unwrap();
        let body = encode_commit(&[CommitTableRecord {
            table,
            commit_seq: 5,
            visible_before: 42,
            pdt,
        }]);
        wal.append_commit(&body).unwrap();
        wal.sync_all().unwrap();
        drop(wal);
        let err = Engine::recover(&dir.0, config(PolicyKind::Lru)).unwrap_err();
        assert!(matches!(err, Error::WalCorrupt(_)), "got {err:?}");
    }

    #[test]
    fn charge_cpu_advances_the_clock() {
        let (storage, _) = storage_with_table(10);
        let engine = Engine::new(storage, config(PolicyKind::Lru)).unwrap();
        let t0 = engine.now();
        engine.charge_cpu(1_000_000);
        assert!(engine.now() > t0);
        let stats = engine.query_stats();
        assert!(stats.elapsed > VirtualDuration::ZERO);
    }
}
