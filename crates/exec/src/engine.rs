//! The engine/session object tying storage, updates and buffer management
//! together.

use std::collections::HashMap;
use std::sync::Arc;

use scanshare_common::sync::RwLock;
use scanshare_common::{
    Error, PolicyKind, Result, Rid, ScanShareConfig, TableId, TupleRange, VirtualClock,
    VirtualDuration, VirtualInstant,
};
use scanshare_core::abm::{Abm, AbmConfig};
use scanshare_core::backend::{CScanBackend, PooledBackend, ScanBackend};
use scanshare_core::metrics::BufferStats;
use scanshare_core::opt::{simulate_opt, OptResult};
use scanshare_core::registry::PolicyRegistry;
use scanshare_core::sharded::ShardedPool;
use scanshare_iosim::{IoDevice, ReferenceTrace};
use scanshare_pdt::checkpoint::checkpoint_table;
use scanshare_pdt::pdt::Pdt;
use scanshare_storage::datagen::Value;
use scanshare_storage::snapshot::Snapshot;
use scanshare_storage::storage::Storage;

use crate::ops::BatchSource;
use crate::query::Query;
use crate::scan::ScanOperator;

/// Summary of the work an engine performed (virtual time and I/O volume).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Virtual time elapsed on the engine's clock.
    pub elapsed: VirtualDuration,
    /// Buffer-manager counters (hits, misses, I/O bytes).
    pub buffer: BufferStats,
}

/// A query-execution session: storage + differential updates + the
/// configured concurrent-scan buffer-management backend.
///
/// The engine holds exactly one [`ScanBackend`]: a [`PooledBackend`] for the
/// page-level policies (LRU / PBM / OPT / anything registered with a
/// [`PolicyRegistry`]) or a [`CScanBackend`] for Cooperative Scans. Scans
/// never branch on the policy — they drive whichever backend is installed.
#[derive(Debug)]
pub struct Engine {
    storage: Arc<Storage>,
    config: ScanShareConfig,
    backend: Box<dyn ScanBackend>,
    device: Arc<IoDevice>,
    clock: Arc<VirtualClock>,
    trace: Option<Arc<ReferenceTrace>>,
    pdts: RwLock<HashMap<TableId, Arc<RwLock<Pdt>>>>,
}

impl Engine {
    /// Creates an engine over `storage` with the policy selected in `config`,
    /// resolving page-level policies from the default [`PolicyRegistry`]
    /// (`"lru"`, `"pbm"`, `"pbm-lru"`).
    ///
    /// `PolicyKind::Opt` runs the engine under PBM while recording the page
    /// reference trace; [`Engine::opt_result`] then replays that trace under
    /// Belady's algorithm, exactly like the paper's OPT methodology.
    pub fn new(storage: Arc<Storage>, config: ScanShareConfig) -> Result<Arc<Self>> {
        Self::with_registry(storage, config, &PolicyRegistry::default())
    }

    /// Like [`Engine::new`], resolving the replacement policy from a caller
    /// supplied registry. `config.custom_policy` selects a registered policy
    /// by name; otherwise `config.policy` maps to the built-in names.
    pub fn with_registry(
        storage: Arc<Storage>,
        config: ScanShareConfig,
        registry: &PolicyRegistry,
    ) -> Result<Arc<Self>> {
        config.validate()?;
        let device = Arc::new(IoDevice::new(
            config.io_bandwidth,
            VirtualDuration::from_nanos(config.io_latency_nanos),
        ));
        let clock = VirtualClock::shared();
        let mut trace = None;

        let backend: Box<dyn ScanBackend> = match (config.policy, &config.custom_policy) {
            (PolicyKind::CScan, None) => {
                // The ABM's chunk directory is partitioned across the same
                // `pool_shards` lock domains the page pool would use;
                // relevance decisions stay globally exact, so the shard
                // count changes contention, never I/O volume.
                let abm = Abm::new(
                    AbmConfig::new(config.buffer_pool_bytes, config.page_size_bytes)
                        .with_shards(config.pool_shards),
                );
                Box::new(
                    CScanBackend::new(abm, Arc::clone(&clock), Arc::clone(&device))
                        .with_load_window(config.cscan_load_window),
                )
            }
            (policy, _custom) => {
                let name = scanshare_core::registry::pooled_policy_name(&config, policy);
                let replacement = registry.build(name, &config)?;
                // The page space is partitioned across `pool_shards` lock
                // domains; replacement decisions stay globally exact, so the
                // shard count changes contention, never I/O volume.
                let mut pool = ShardedPool::new(
                    config.buffer_pool_pages().max(1),
                    config.page_size_bytes,
                    replacement,
                    config.pool_shards,
                );
                if policy == PolicyKind::Opt {
                    let t = Arc::new(ReferenceTrace::new());
                    trace = Some(Arc::clone(&t));
                    pool = pool.with_trace(t);
                }
                Box::new(
                    PooledBackend::new(pool, Arc::clone(&clock), Arc::clone(&device), policy)
                        .with_prefetch_window(config.prefetch_pages),
                )
            }
        };

        Ok(Arc::new(Self {
            storage,
            config,
            backend,
            device,
            clock,
            trace,
            pdts: RwLock::new(HashMap::new()),
        }))
    }

    /// The underlying storage engine.
    pub fn storage(&self) -> &Arc<Storage> {
        &self.storage
    }

    /// The engine configuration.
    pub fn config(&self) -> &ScanShareConfig {
        &self.config
    }

    /// The configured policy.
    pub fn policy(&self) -> PolicyKind {
        self.config.policy
    }

    /// The engine's virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The simulated I/O device.
    pub fn device(&self) -> &Arc<IoDevice> {
        &self.device
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualInstant {
        self.clock.now()
    }

    /// The scan backend every scan of this engine drives.
    pub fn backend(&self) -> &dyn ScanBackend {
        self.backend.as_ref()
    }

    /// Aggregated buffer-manager statistics.
    pub fn buffer_stats(&self) -> BufferStats {
        self.backend.stats()
    }

    /// Replays the recorded page-reference trace under Belady's OPT with the
    /// configured buffer capacity. Only available when the engine was created
    /// with `PolicyKind::Opt`.
    pub fn opt_result(&self) -> Result<OptResult> {
        let trace = self
            .trace
            .as_ref()
            .ok_or_else(|| Error::Unsupported("OPT trace recording is not enabled".into()))?;
        Ok(simulate_opt(
            &trace.pages(),
            self.config.buffer_pool_pages().max(1),
        ))
    }

    /// Summary of the engine's work so far.
    pub fn query_stats(&self) -> QueryStats {
        QueryStats {
            elapsed: self.now().since(VirtualInstant::EPOCH),
            buffer: self.buffer_stats(),
        }
    }

    // ------------------------------------------------------------------
    // Differential updates (PDT)
    // ------------------------------------------------------------------

    /// The shared PDT of a table (created on first use).
    pub fn pdt(&self, table: TableId) -> Result<Arc<RwLock<Pdt>>> {
        {
            let pdts = self.pdts.read();
            if let Some(pdt) = pdts.get(&table) {
                return Ok(Arc::clone(pdt));
            }
        }
        let columns = self.storage.table(table)?.spec.columns.len();
        let mut pdts = self.pdts.write();
        Ok(Arc::clone(pdts.entry(table).or_insert_with(|| {
            Arc::new(RwLock::new(Pdt::new(columns)))
        })))
    }

    /// Number of rows currently visible in `table` (stable tuples of the
    /// master snapshot plus PDT inserts minus deletes).
    pub fn visible_rows(&self, table: TableId) -> Result<u64> {
        let stable = self.storage.master_snapshot(table)?.stable_tuples();
        Ok(self.pdt(table)?.read().visible_count(stable))
    }

    /// Inserts a row at visible position `rid` (use `visible_rows` to append
    /// at the end).
    pub fn insert_row(&self, table: TableId, rid: u64, row: Vec<Value>) -> Result<()> {
        let stable = self.storage.master_snapshot(table)?.stable_tuples();
        self.pdt(table)?.write().insert(Rid::new(rid), row, stable)
    }

    /// Deletes the visible row at `rid`.
    pub fn delete_row(&self, table: TableId, rid: u64) -> Result<()> {
        let stable = self.storage.master_snapshot(table)?.stable_tuples();
        self.pdt(table)?.write().delete(Rid::new(rid), stable)
    }

    /// Updates column `col` of the visible row at `rid`.
    pub fn update_value(&self, table: TableId, rid: u64, col: usize, value: Value) -> Result<()> {
        let stable = self.storage.master_snapshot(table)?.stable_tuples();
        self.pdt(table)?
            .write()
            .modify(Rid::new(rid), col, value, stable)
    }

    /// Checkpoints `table`: merges its PDT into a brand-new stable image and
    /// clears the PDT. Returns the new master snapshot.
    pub fn checkpoint(&self, table: TableId) -> Result<Arc<Snapshot>> {
        let snapshot = self.storage.master_snapshot(table)?;
        let pdt_handle = self.pdt(table)?;
        let mut pdt = pdt_handle.write();
        let new_snapshot = checkpoint_table(&self.storage, table, &snapshot, &pdt)?;
        *pdt = Pdt::new(pdt.column_count());
        Ok(new_snapshot)
    }

    // ------------------------------------------------------------------
    // Queries and scans
    // ------------------------------------------------------------------

    /// Starts building a query over `table`; see [`Query`] for the available
    /// clauses. This is the primary entry point for running queries:
    ///
    /// ```ignore
    /// let result = engine
    ///     .query(table)
    ///     .columns(["k", "v"])
    ///     .range(..)
    ///     .filter(Predicate::new(1, CompareOp::Le, 50))
    ///     .aggregate(AggrSpec::global(vec![Aggregate::Count]))
    ///     .parallelism(4)
    ///     .run()?;
    /// ```
    pub fn query(self: &Arc<Self>, table: TableId) -> Query {
        Query::new(Arc::clone(self), table)
    }

    /// Opens a scan over `columns` (by name) of `table` for the visible row
    /// range `rid_range`, driven by the engine's backend: sequential range
    /// delivery for pooled backends, ABM chunk dispatch (out of table order)
    /// for Cooperative Scans.
    pub fn scan(
        self: &Arc<Self>,
        table: TableId,
        columns: &[&str],
        rid_range: TupleRange,
    ) -> Result<Box<dyn BatchSource + Send>> {
        self.scan_with_order(table, columns, rid_range, false)
    }

    /// Like [`Engine::scan`] but forcing in-order delivery even under
    /// Cooperative Scans (the "CScan as drop-in replacement for Scan" mode of
    /// Section 2.3).
    pub fn scan_in_order(
        self: &Arc<Self>,
        table: TableId,
        columns: &[&str],
        rid_range: TupleRange,
    ) -> Result<Box<dyn BatchSource + Send>> {
        self.scan_with_order(table, columns, rid_range, true)
    }

    fn scan_with_order(
        self: &Arc<Self>,
        table: TableId,
        columns: &[&str],
        rid_range: TupleRange,
        in_order: bool,
    ) -> Result<Box<dyn BatchSource + Send>> {
        let column_indices = self.storage.resolve_columns(table, columns)?;
        Ok(Box::new(ScanOperator::new(
            Arc::clone(self),
            table,
            column_indices,
            rid_range,
            in_order,
        )?))
    }

    /// Charges `tuples` of CPU work to the engine's virtual clock.
    pub(crate) fn charge_cpu(&self, tuples: u64) {
        let secs = tuples as f64 / self.config.cpu_tuples_per_sec as f64;
        self.clock.advance(VirtualDuration::from_secs_f64(secs));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_core::policy::{ReplacementPolicy, ScanInfo};
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::datagen::DataGen;
    use scanshare_storage::layout::ScanPagePlan;
    use scanshare_storage::table::TableSpec;

    fn storage_with_table(tuples: u64) -> (Arc<Storage>, TableId) {
        let storage = Storage::with_seed(1024, 500, 5);
        let spec = TableSpec::new(
            "t",
            vec![
                ColumnSpec::with_width("k", ColumnType::Int64, 8.0),
                ColumnSpec::with_width("v", ColumnType::Int64, 4.0),
            ],
            tuples,
        );
        let id = storage
            .create_table_with_data(
                spec,
                vec![
                    DataGen::Sequential { start: 0, step: 1 },
                    DataGen::Constant(2),
                ],
            )
            .unwrap();
        (storage, id)
    }

    fn config(policy: PolicyKind) -> ScanShareConfig {
        ScanShareConfig {
            page_size_bytes: 1024,
            chunk_tuples: 500,
            buffer_pool_bytes: 64 * 1024,
            policy,
            ..Default::default()
        }
    }

    #[test]
    fn engine_selects_backend_by_policy() {
        let (storage, _) = storage_with_table(100);
        let lru = Engine::new(Arc::clone(&storage), config(PolicyKind::Lru)).unwrap();
        assert_eq!(lru.backend().kind(), PolicyKind::Lru);
        assert_eq!(lru.backend().name(), "lru");
        let pbm = Engine::new(Arc::clone(&storage), config(PolicyKind::Pbm)).unwrap();
        assert_eq!(pbm.backend().name(), "pbm");
        let cscan = Engine::new(Arc::clone(&storage), config(PolicyKind::CScan)).unwrap();
        assert_eq!(cscan.backend().kind(), PolicyKind::CScan);
        assert_eq!(cscan.backend().name(), "cscan");
        let opt = Engine::new(storage, config(PolicyKind::Opt)).unwrap();
        assert_eq!(opt.backend().name(), "pbm", "OPT records a trace under PBM");
        assert!(opt.opt_result().is_ok());
        assert!(lru.opt_result().is_err());
    }

    #[derive(Debug)]
    struct NeverEvict;

    impl ReplacementPolicy for NeverEvict {
        fn name(&self) -> &'static str {
            "never-evict"
        }
        fn register_scan(&mut self, _: &ScanInfo, _: &ScanPagePlan, _: VirtualInstant) {}
        fn report_scan_position(&mut self, _: scanshare_common::ScanId, _: u64, _: VirtualInstant) {
        }
        fn unregister_scan(&mut self, _: scanshare_common::ScanId, _: VirtualInstant) {}
        fn on_access(
            &mut self,
            _: scanshare_common::PageId,
            _: Option<scanshare_common::ScanId>,
            _: VirtualInstant,
        ) {
        }
        fn on_admit(&mut self, _: scanshare_common::PageId, _: VirtualInstant) {}
        fn on_evict(&mut self, _: scanshare_common::PageId) {}
        fn choose_victims(
            &mut self,
            _: usize,
            _: &std::collections::HashSet<scanshare_common::PageId>,
            _: VirtualInstant,
        ) -> Vec<scanshare_common::PageId> {
            Vec::new()
        }
    }

    #[test]
    fn custom_policies_plug_in_through_the_registry() {
        let (storage, table) = storage_with_table(200);
        let mut registry = PolicyRegistry::default();
        registry.register("never-evict", |_| Box::new(NeverEvict));
        let cfg = config(PolicyKind::Lru).with_custom_policy("never-evict");
        let engine = Engine::with_registry(Arc::clone(&storage), cfg, &registry).unwrap();
        assert_eq!(engine.backend().name(), "never-evict");
        // The engine actually scans through the custom policy.
        let count = engine
            .query(table)
            .columns(["k"])
            .aggregate(crate::ops::AggrSpec::global(vec![
                crate::ops::Aggregate::Count,
            ]))
            .run()
            .unwrap()[&0]
            .count;
        assert_eq!(count, 200);

        // Unknown names surface a configuration error.
        let bad = config(PolicyKind::Lru).with_custom_policy("does-not-exist");
        assert!(Engine::with_registry(storage, bad, &registry).is_err());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (storage, _) = storage_with_table(10);
        let bad = ScanShareConfig {
            page_size_bytes: 0,
            ..config(PolicyKind::Lru)
        };
        assert!(Engine::new(Arc::clone(&storage), bad).is_err());
        let conflicting = config(PolicyKind::CScan).with_custom_policy("lru");
        assert!(Engine::new(storage, conflicting).is_err());
    }

    #[test]
    fn updates_change_visible_rows() {
        let (storage, table) = storage_with_table(100);
        let engine = Engine::new(storage, config(PolicyKind::Lru)).unwrap();
        assert_eq!(engine.visible_rows(table).unwrap(), 100);
        engine.insert_row(table, 0, vec![-1, -1]).unwrap();
        assert_eq!(engine.visible_rows(table).unwrap(), 101);
        engine.delete_row(table, 5).unwrap();
        engine.delete_row(table, 5).unwrap();
        assert_eq!(engine.visible_rows(table).unwrap(), 99);
        engine.update_value(table, 0, 1, 42).unwrap();
        // Bad positions surface errors.
        assert!(engine.insert_row(table, 10_000, vec![0, 0]).is_err());
    }

    #[test]
    fn checkpoint_clears_the_pdt_and_keeps_visible_data() {
        let (storage, table) = storage_with_table(200);
        let engine = Engine::new(Arc::clone(&storage), config(PolicyKind::Lru)).unwrap();
        engine.delete_row(table, 0).unwrap();
        engine.insert_row(table, 0, vec![-7, -8]).unwrap();
        let before = engine.visible_rows(table).unwrap();
        let snapshot = engine.checkpoint(table).unwrap();
        assert_eq!(snapshot.stable_tuples(), before);
        assert!(engine.pdt(table).unwrap().read().is_empty());
        assert_eq!(engine.visible_rows(table).unwrap(), before);
        // The checkpointed data starts with the inserted row.
        let layout = storage.layout(table).unwrap();
        let head = storage
            .read_range(&layout, &snapshot, 0, TupleRange::new(0, 2))
            .unwrap();
        assert_eq!(head, vec![-7, 1]);
    }

    #[test]
    fn charge_cpu_advances_the_clock() {
        let (storage, _) = storage_with_table(10);
        let engine = Engine::new(storage, config(PolicyKind::Lru)).unwrap();
        let t0 = engine.now();
        engine.charge_cpu(1_000_000);
        assert!(engine.now() > t0);
        let stats = engine.query_stats();
        assert!(stats.elapsed > VirtualDuration::ZERO);
    }
}
