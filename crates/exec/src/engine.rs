//! The engine/session object tying storage, updates and buffer management
//! together.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use scanshare_common::{
    Error, PolicyKind, Result, Rid, ScanShareConfig, TableId, TupleRange, VirtualClock,
    VirtualDuration, VirtualInstant,
};
use scanshare_core::bufferpool::BufferPool;
use scanshare_core::cscan::{Abm, AbmConfig};
use scanshare_core::lru::LruPolicy;
use scanshare_core::metrics::BufferStats;
use scanshare_core::opt::{simulate_opt, OptResult};
use scanshare_core::pbm::{PbmConfig, PbmPolicy};
use scanshare_core::policy::ReplacementPolicy;
use scanshare_iosim::{IoDevice, ReferenceTrace};
use scanshare_pdt::checkpoint::checkpoint_table;
use scanshare_pdt::pdt::Pdt;
use scanshare_storage::datagen::Value;
use scanshare_storage::snapshot::Snapshot;
use scanshare_storage::storage::Storage;

use crate::cscan_op::CScanOperator;
use crate::ops::BatchSource;
use crate::scan::ScanOperator;

/// Summary of the work an engine performed (virtual time and I/O volume).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Virtual time elapsed on the engine's clock.
    pub elapsed: VirtualDuration,
    /// Buffer-manager counters (hits, misses, I/O bytes).
    pub buffer: BufferStats,
}

/// A query-execution session: storage + differential updates + the
/// configured concurrent-scan buffer-management policy.
#[derive(Debug)]
pub struct Engine {
    storage: Arc<Storage>,
    config: ScanShareConfig,
    pool: Option<Mutex<BufferPool>>,
    abm: Option<Mutex<Abm>>,
    device: Arc<IoDevice>,
    clock: Arc<VirtualClock>,
    trace: Option<Arc<ReferenceTrace>>,
    pdts: RwLock<HashMap<TableId, Arc<RwLock<Pdt>>>>,
}

impl Engine {
    /// Creates an engine over `storage` with the policy selected in `config`.
    ///
    /// `PolicyKind::Opt` runs the engine under PBM while recording the page
    /// reference trace; [`Engine::opt_result`] then replays that trace under
    /// Belady's algorithm, exactly like the paper's OPT methodology.
    pub fn new(storage: Arc<Storage>, config: ScanShareConfig) -> Result<Arc<Self>> {
        config.validate()?;
        let device = Arc::new(IoDevice::new(
            config.io_bandwidth,
            VirtualDuration::from_nanos(config.io_latency_nanos),
        ));
        let clock = VirtualClock::shared();
        let mut trace = None;

        let (pool, abm) = match config.policy {
            PolicyKind::CScan => {
                let abm = Abm::new(AbmConfig::new(config.buffer_pool_bytes, config.page_size_bytes));
                (None, Some(Mutex::new(abm)))
            }
            policy => {
                let replacement: Box<dyn ReplacementPolicy> = match policy {
                    PolicyKind::Lru => Box::new(LruPolicy::new()),
                    PolicyKind::Pbm | PolicyKind::Opt => Box::new(PbmPolicy::new(PbmConfig {
                        default_scan_speed: config.cpu_tuples_per_sec as f64,
                        ..PbmConfig::default()
                    })),
                    PolicyKind::CScan => unreachable!("handled above"),
                };
                let mut pool = BufferPool::new(
                    config.buffer_pool_pages().max(1),
                    config.page_size_bytes,
                    replacement,
                );
                if policy == PolicyKind::Opt {
                    let t = Arc::new(ReferenceTrace::new());
                    trace = Some(Arc::clone(&t));
                    pool = pool.with_trace(t);
                }
                (Some(Mutex::new(pool)), None)
            }
        };

        Ok(Arc::new(Self {
            storage,
            config,
            pool,
            abm,
            device,
            clock,
            trace,
            pdts: RwLock::new(HashMap::new()),
        }))
    }

    /// The underlying storage engine.
    pub fn storage(&self) -> &Arc<Storage> {
        &self.storage
    }

    /// The engine configuration.
    pub fn config(&self) -> &ScanShareConfig {
        &self.config
    }

    /// The configured policy.
    pub fn policy(&self) -> PolicyKind {
        self.config.policy
    }

    /// The engine's virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The simulated I/O device.
    pub fn device(&self) -> &Arc<IoDevice> {
        &self.device
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualInstant {
        self.clock.now()
    }

    /// The page-level buffer pool (LRU / PBM / OPT engines).
    pub(crate) fn pool(&self) -> Option<&Mutex<BufferPool>> {
        self.pool.as_ref()
    }

    /// The Active Buffer Manager (Cooperative Scans engines).
    pub(crate) fn abm(&self) -> Option<&Mutex<Abm>> {
        self.abm.as_ref()
    }

    /// Aggregated buffer-manager statistics.
    pub fn buffer_stats(&self) -> BufferStats {
        if let Some(pool) = &self.pool {
            pool.lock().stats()
        } else if let Some(abm) = &self.abm {
            abm.lock().stats()
        } else {
            BufferStats::default()
        }
    }

    /// Replays the recorded page-reference trace under Belady's OPT with the
    /// configured buffer capacity. Only available when the engine was created
    /// with `PolicyKind::Opt`.
    pub fn opt_result(&self) -> Result<OptResult> {
        let trace = self
            .trace
            .as_ref()
            .ok_or_else(|| Error::Unsupported("OPT trace recording is not enabled".into()))?;
        Ok(simulate_opt(&trace.pages(), self.config.buffer_pool_pages().max(1)))
    }

    /// Summary of the engine's work so far.
    pub fn query_stats(&self) -> QueryStats {
        QueryStats {
            elapsed: self.now().since(VirtualInstant::EPOCH),
            buffer: self.buffer_stats(),
        }
    }

    // ------------------------------------------------------------------
    // Differential updates (PDT)
    // ------------------------------------------------------------------

    /// The shared PDT of a table (created on first use).
    pub fn pdt(&self, table: TableId) -> Result<Arc<RwLock<Pdt>>> {
        {
            let pdts = self.pdts.read();
            if let Some(pdt) = pdts.get(&table) {
                return Ok(Arc::clone(pdt));
            }
        }
        let columns = self.storage.table(table)?.spec.columns.len();
        let mut pdts = self.pdts.write();
        Ok(Arc::clone(
            pdts.entry(table).or_insert_with(|| Arc::new(RwLock::new(Pdt::new(columns)))),
        ))
    }

    /// Number of rows currently visible in `table` (stable tuples of the
    /// master snapshot plus PDT inserts minus deletes).
    pub fn visible_rows(&self, table: TableId) -> Result<u64> {
        let stable = self.storage.master_snapshot(table)?.stable_tuples();
        Ok(self.pdt(table)?.read().visible_count(stable))
    }

    /// Inserts a row at visible position `rid` (use `visible_rows` to append
    /// at the end).
    pub fn insert_row(&self, table: TableId, rid: u64, row: Vec<Value>) -> Result<()> {
        let stable = self.storage.master_snapshot(table)?.stable_tuples();
        self.pdt(table)?.write().insert(Rid::new(rid), row, stable)
    }

    /// Deletes the visible row at `rid`.
    pub fn delete_row(&self, table: TableId, rid: u64) -> Result<()> {
        let stable = self.storage.master_snapshot(table)?.stable_tuples();
        self.pdt(table)?.write().delete(Rid::new(rid), stable)
    }

    /// Updates column `col` of the visible row at `rid`.
    pub fn update_value(&self, table: TableId, rid: u64, col: usize, value: Value) -> Result<()> {
        let stable = self.storage.master_snapshot(table)?.stable_tuples();
        self.pdt(table)?.write().modify(Rid::new(rid), col, value, stable)
    }

    /// Checkpoints `table`: merges its PDT into a brand-new stable image and
    /// clears the PDT. Returns the new master snapshot.
    pub fn checkpoint(&self, table: TableId) -> Result<Arc<Snapshot>> {
        let snapshot = self.storage.master_snapshot(table)?;
        let pdt_handle = self.pdt(table)?;
        let mut pdt = pdt_handle.write();
        let new_snapshot = checkpoint_table(&self.storage, table, &snapshot, &pdt)?;
        *pdt = Pdt::new(pdt.column_count());
        Ok(new_snapshot)
    }

    // ------------------------------------------------------------------
    // Scans
    // ------------------------------------------------------------------

    /// Opens a scan over `columns` (by name) of `table` for the visible row
    /// range `rid_range`, using the engine's configured policy: a traditional
    /// in-order Scan for LRU / PBM / OPT, a CScan attached to the ABM for
    /// Cooperative Scans.
    pub fn scan(
        self: &Arc<Self>,
        table: TableId,
        columns: &[&str],
        rid_range: TupleRange,
    ) -> Result<Box<dyn BatchSource + Send>> {
        self.scan_with_order(table, columns, rid_range, false)
    }

    /// Like [`Engine::scan`] but forcing in-order delivery even under
    /// Cooperative Scans (the "CScan as drop-in replacement for Scan" mode of
    /// Section 2.3).
    pub fn scan_in_order(
        self: &Arc<Self>,
        table: TableId,
        columns: &[&str],
        rid_range: TupleRange,
    ) -> Result<Box<dyn BatchSource + Send>> {
        self.scan_with_order(table, columns, rid_range, true)
    }

    fn scan_with_order(
        self: &Arc<Self>,
        table: TableId,
        columns: &[&str],
        rid_range: TupleRange,
        force_in_order: bool,
    ) -> Result<Box<dyn BatchSource + Send>> {
        let column_indices = self.storage.resolve_columns(table, columns)?;
        match self.config.policy {
            PolicyKind::CScan => Ok(Box::new(CScanOperator::new(
                Arc::clone(self),
                table,
                column_indices,
                rid_range,
                force_in_order,
            )?)),
            _ => Ok(Box::new(ScanOperator::new(
                Arc::clone(self),
                table,
                column_indices,
                rid_range,
            )?)),
        }
    }

    /// Charges `tuples` of CPU work to the engine's virtual clock.
    pub(crate) fn charge_cpu(&self, tuples: u64) {
        let secs = tuples as f64 / self.config.cpu_tuples_per_sec as f64;
        self.clock.advance(VirtualDuration::from_secs_f64(secs));
    }

    /// Charges an I/O of `bytes` to the device and waits (in virtual time)
    /// for it to complete.
    pub(crate) fn charge_io(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let done = self.device.submit(self.clock.now(), bytes);
        self.clock.advance_to(done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::datagen::DataGen;
    use scanshare_storage::table::TableSpec;

    fn storage_with_table(tuples: u64) -> (Arc<Storage>, TableId) {
        let storage = Storage::with_seed(1024, 500, 5);
        let spec = TableSpec::new(
            "t",
            vec![
                ColumnSpec::with_width("k", ColumnType::Int64, 8.0),
                ColumnSpec::with_width("v", ColumnType::Int64, 4.0),
            ],
            tuples,
        );
        let id = storage
            .create_table_with_data(
                spec,
                vec![DataGen::Sequential { start: 0, step: 1 }, DataGen::Constant(2)],
            )
            .unwrap();
        (storage, id)
    }

    fn config(policy: PolicyKind) -> ScanShareConfig {
        ScanShareConfig {
            page_size_bytes: 1024,
            chunk_tuples: 500,
            buffer_pool_bytes: 64 * 1024,
            policy,
            ..Default::default()
        }
    }

    #[test]
    fn engine_selects_pool_or_abm_by_policy() {
        let (storage, _) = storage_with_table(100);
        let lru = Engine::new(Arc::clone(&storage), config(PolicyKind::Lru)).unwrap();
        assert!(lru.pool().is_some() && lru.abm().is_none());
        let cscan = Engine::new(Arc::clone(&storage), config(PolicyKind::CScan)).unwrap();
        assert!(cscan.pool().is_none() && cscan.abm().is_some());
        let opt = Engine::new(storage, config(PolicyKind::Opt)).unwrap();
        assert!(opt.opt_result().is_ok());
        assert!(lru.opt_result().is_err());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (storage, _) = storage_with_table(10);
        let bad = ScanShareConfig { page_size_bytes: 0, ..config(PolicyKind::Lru) };
        assert!(Engine::new(storage, bad).is_err());
    }

    #[test]
    fn updates_change_visible_rows() {
        let (storage, table) = storage_with_table(100);
        let engine = Engine::new(storage, config(PolicyKind::Lru)).unwrap();
        assert_eq!(engine.visible_rows(table).unwrap(), 100);
        engine.insert_row(table, 0, vec![-1, -1]).unwrap();
        assert_eq!(engine.visible_rows(table).unwrap(), 101);
        engine.delete_row(table, 5).unwrap();
        engine.delete_row(table, 5).unwrap();
        assert_eq!(engine.visible_rows(table).unwrap(), 99);
        engine.update_value(table, 0, 1, 42).unwrap();
        // Bad positions surface errors.
        assert!(engine.insert_row(table, 10_000, vec![0, 0]).is_err());
    }

    #[test]
    fn checkpoint_clears_the_pdt_and_keeps_visible_data() {
        let (storage, table) = storage_with_table(200);
        let engine = Engine::new(Arc::clone(&storage), config(PolicyKind::Lru)).unwrap();
        engine.delete_row(table, 0).unwrap();
        engine.insert_row(table, 0, vec![-7, -8]).unwrap();
        let before = engine.visible_rows(table).unwrap();
        let snapshot = engine.checkpoint(table).unwrap();
        assert_eq!(snapshot.stable_tuples(), before);
        assert!(engine.pdt(table).unwrap().read().is_empty());
        assert_eq!(engine.visible_rows(table).unwrap(), before);
        // The checkpointed data starts with the inserted row.
        let layout = storage.layout(table).unwrap();
        let head = storage.read_range(&layout, &snapshot, 0, TupleRange::new(0, 2)).unwrap();
        assert_eq!(head, vec![-7, 1]);
    }

    #[test]
    fn charge_cpu_and_io_advance_the_clock() {
        let (storage, _) = storage_with_table(10);
        let engine = Engine::new(storage, config(PolicyKind::Lru)).unwrap();
        let t0 = engine.now();
        engine.charge_cpu(1_000_000);
        let t1 = engine.now();
        assert!(t1 > t0);
        engine.charge_io(1024 * 1024);
        assert!(engine.now() > t1);
        engine.charge_io(0);
        let stats = engine.query_stats();
        assert!(stats.elapsed > VirtualDuration::ZERO);
    }
}
