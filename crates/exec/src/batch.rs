//! Column-major batches of tuples.

use scanshare_storage::datagen::Value;

/// A vectorized batch: a set of equally long column vectors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Batch {
    columns: Vec<Vec<Value>>,
}

impl Batch {
    /// Creates a batch from column vectors (all must have equal length).
    pub fn new(columns: Vec<Vec<Value>>) -> Self {
        if let Some(first) = columns.first() {
            assert!(
                columns.iter().all(|c| c.len() == first.len()),
                "all batch columns must have the same length"
            );
        }
        Self { columns }
    }

    /// An empty batch with `width` columns.
    pub fn empty(width: usize) -> Self {
        Self {
            columns: vec![Vec::new(); width],
        }
    }

    /// Builds a batch from row-major data.
    pub fn from_rows(width: usize, rows: &[Vec<Value>]) -> Self {
        let mut columns = vec![Vec::with_capacity(rows.len()); width];
        for row in rows {
            assert_eq!(row.len(), width, "row arity mismatch");
            for (c, &v) in row.iter().enumerate() {
                columns[c].push(v);
            }
        }
        Self { columns }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map(Vec::len).unwrap_or(0)
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Column `i` as a slice.
    pub fn column(&self, i: usize) -> &[Value] {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[Vec<Value>] {
        &self.columns
    }

    /// The value at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col][row]
    }

    /// Appends the rows of `other` (same width) to this batch.
    pub fn append(&mut self, other: &Batch) {
        assert_eq!(self.width(), other.width(), "batch width mismatch");
        for (dst, src) in self.columns.iter_mut().zip(other.columns.iter()) {
            dst.extend_from_slice(src);
        }
    }

    /// Keeps only the rows at positions where `keep` is true.
    pub fn filter(&self, keep: &[bool]) -> Batch {
        assert_eq!(keep.len(), self.len());
        let columns = self
            .columns
            .iter()
            .map(|col| {
                col.iter()
                    .zip(keep.iter())
                    .filter_map(|(&v, &k)| k.then_some(v))
                    .collect()
            })
            .collect();
        Batch { columns }
    }

    /// Returns a batch containing only the given columns, in order.
    pub fn project(&self, cols: &[usize]) -> Batch {
        Batch {
            columns: cols.iter().map(|&c| self.columns[c].clone()).collect(),
        }
    }

    /// Converts to row-major form (convenient in tests).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len())
            .map(|r| self.columns.iter().map(|c| c[r]).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let b = Batch::new(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(b.width(), 2);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.value(1, 1), 5);
        assert_eq!(b.column(0), &[1, 2, 3]);
        assert!(Batch::empty(3).is_empty());
    }

    #[test]
    fn from_rows_and_to_rows_round_trip() {
        let rows = vec![vec![1, 10], vec![2, 20], vec![3, 30]];
        let b = Batch::from_rows(2, &rows);
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn append_filter_project() {
        let mut a = Batch::new(vec![vec![1, 2], vec![10, 20]]);
        let b = Batch::new(vec![vec![3], vec![30]]);
        a.append(&b);
        assert_eq!(a.len(), 3);
        let filtered = a.filter(&[true, false, true]);
        assert_eq!(filtered.column(0), &[1, 3]);
        let projected = filtered.project(&[1]);
        assert_eq!(projected.width(), 1);
        assert_eq!(projected.column(0), &[10, 30]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_columns_are_rejected() {
        let _ = Batch::new(vec![vec![1], vec![2, 3]]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn append_width_mismatch_is_rejected() {
        let mut a = Batch::new(vec![vec![1]]);
        a.append(&Batch::new(vec![vec![1], vec![2]]));
    }
}
