//! A vectorized mini query engine on top of the scanshare storage and
//! buffer-management layers.
//!
//! The engine exists for two reasons:
//!
//! 1. **Functional correctness of the reproduced mechanisms.** The unified
//!    [`scan::ScanOperator`] runs real queries against real data through
//!    whatever [`ScanBackend`](scanshare_core::backend::ScanBackend) the
//!    engine is configured with — in-order page-level delivery for
//!    LRU / PBM / OPT, out-of-order ABM chunk dispatch for Cooperative
//!    Scans — with PDT merging, snapshot isolation for appends,
//!    checkpointing and intra-query parallelism (XChg-style range
//!    partitioning, Figure 8 / Equation 1). Integration tests assert that
//!    every buffer-management policy returns byte-identical query results.
//! 2. **Realistic driving of the buffer managers.** The engine issues the
//!    same `RegisterScan` / `ReportScanPosition` / `GetChunk` call sequences
//!    the paper describes, so the policies that the benchmarks measure are
//!    the policies that the engine actually exercises.
//!
//! Queries are built with the fluent [`query::Query`] API
//! (`engine.query(table).columns(...).aggregate(...).run()`); the engine is
//! deliberately small: batches are plain `Vec<i64>` columns and the operator
//! set (`Scan`, `Select`, `Project`, `Aggr`, XChg-style parallel merge) is
//! just large enough to run the TPC-H Q1 / Q6 style workloads of the paper's
//! microbenchmarks. Whole multi-stream workload specifications run through
//! the [`driver::WorkloadDriver`] — one thread per stream against the shared
//! (sharded) buffer-management backend, reporting throughput and latency
//! percentiles.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod driver;
pub mod engine;
pub mod ops;
pub mod query;
pub mod scan;
pub mod sched;
pub mod txn;

pub use batch::Batch;
pub use driver::{StreamError, WorkloadDriver, WorkloadReport};
pub use engine::{Engine, QueryStats};
pub use ops::{AggrSpec, Aggregate, Predicate};
pub use query::Query;
pub use scan::ScanOperator;
pub use sched::{
    QueryTask, SchedHandle, SchedulerStats, Task, TaskHandle, TaskOutcome, TaskScheduler, TaskStep,
};
pub use txn::{TablePin, Txn};
