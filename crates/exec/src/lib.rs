//! A vectorized mini query engine on top of the scanshare storage and
//! buffer-management layers.
//!
//! The engine exists for two reasons:
//!
//! 1. **Functional correctness of the reproduced mechanisms.** Scans (both
//!    the traditional in-order [`scan::ScanOperator`] and the out-of-order
//!    [`cscan_op::CScanOperator`]) run real queries against real data, with
//!    PDT merging, snapshot isolation for appends, checkpointing and
//!    intra-query parallelism (XChg-style range partitioning, Figure 8 /
//!    Equation 1). Integration tests assert that every buffer-management
//!    policy returns byte-identical query results.
//! 2. **Realistic driving of the buffer managers.** The engine issues the
//!    same `RegisterScan` / `ReportScanPosition` / `GetChunk` call sequences
//!    the paper describes, so the policies that the benchmarks measure are
//!    the policies that the engine actually exercises.
//!
//! The engine is deliberately small: batches are plain `Vec<i64>` columns,
//! expressions are closures, and the operator set (`Scan`, `CScan`, `Select`,
//! `Project`, `Aggr`, XChg-style parallel merge) is just large enough to run
//! the TPC-H Q1 / Q6 style workloads of the paper's microbenchmarks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod cscan_op;
pub mod engine;
pub mod ops;
pub mod parallel;
pub mod scan;

pub use batch::Batch;
pub use engine::{Engine, QueryStats};
pub use ops::{AggrSpec, Aggregate, Predicate};
pub use parallel::parallel_scan_aggregate;
