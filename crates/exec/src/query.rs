//! The builder-style query API — the single entry point for running queries
//! against an [`Engine`].
//!
//! A [`Query`] expresses the `Scan -> Select -> Aggr` plans of the paper's
//! microbenchmarks (optionally parallelized with the XChg-style static range
//! partitioning of Figure 8 / Equation 1) without positional arguments:
//!
//! ```ignore
//! let result = engine
//!     .query(table)
//!     .columns(["l_flag", "l_quantity"])
//!     .range(1000..5000)
//!     .filter(Predicate::new(1, CompareOp::Le, 24))
//!     .aggregate(AggrSpec::grouped(0, vec![Aggregate::Sum(1), Aggregate::Count]))
//!     .parallelism(4)
//!     .run()?;
//! ```
//!
//! Every clause has a default: all visible rows (`range`), no filter, one
//! worker (`parallelism`), backend-chosen delivery order. Only `columns` is
//! mandatory, and `run` requires an `aggregate`; use [`Query::rows`] to
//! materialize filtered rows without aggregating.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

use scanshare_common::{Error, Result, TableId, TupleRange};
use scanshare_storage::datagen::Value;

use crate::engine::Engine;
use crate::ops::{
    aggregate, aggregate_grouped, merge_aggregates, merge_grouped, AggrResult, AggrSpec,
    BatchSource, GroupSpec, GroupedResult, JoinBuild, JoinSource, JoinTable, Predicate, SortOrder,
    TopKSpec, TopKState,
};
use crate::txn::TablePin;

/// The join clause of a [`Query`]: a broadcast hash join against another
/// table. The build side (the other table) is fully scanned and hashed
/// before the probe side opens; the probe side is the query's own scan.
#[derive(Debug, Clone)]
pub(crate) struct JoinClause {
    /// The build-side table.
    pub table: TableId,
    /// Probe-projection column index joined against the build key.
    pub left_col: usize,
    /// Build-side join key column (by name).
    pub right_col: String,
    /// Extra build-side columns carried into the join output after the key.
    pub extra_columns: Vec<String>,
}

impl JoinClause {
    /// The build-side projection: the key column first, then the extras —
    /// the layout the join output appends after the probe columns.
    pub fn build_columns(&self) -> Vec<&str> {
        let mut columns = Vec::with_capacity(1 + self.extra_columns.len());
        columns.push(self.right_col.as_str());
        columns.extend(self.extra_columns.iter().map(String::as_str));
        columns
    }
}

/// A query under construction; see the [module docs](self) for the clause
/// semantics. Created with [`Engine::query`] (reading the committed state)
/// or [`Txn::query`](crate::txn::Txn::query) (reading a transaction's
/// private view).
#[derive(Debug, Clone)]
#[must_use = "a Query does nothing until `.run()` or `.rows()` is called"]
pub struct Query {
    engine: Arc<Engine>,
    table: TableId,
    /// The `(Snapshot, PdtStack)` pair the query reads through. `None`
    /// until execution, when the table's published state is pinned; a query
    /// built by a transaction carries the transaction's view instead.
    /// Either way every scan of the query — including all parallel workers —
    /// shares one consistent pin.
    pin: Option<TablePin>,
    columns: Vec<String>,
    start: u64,
    end: Option<u64>,
    filter: Option<Predicate>,
    aggregate: Option<AggrSpec>,
    group_keys: Option<Vec<usize>>,
    top_k: Option<TopKSpec>,
    join: Option<JoinClause>,
    /// Extra build columns from [`Query::join_columns`], merged into the
    /// join clause at validation (calling it without a join is a plan
    /// error, reported there).
    join_extra: Option<Vec<String>>,
    parallelism: usize,
    in_order: bool,
}

impl Query {
    pub(crate) fn new(engine: Arc<Engine>, table: TableId) -> Self {
        Self {
            engine,
            table,
            pin: None,
            columns: Vec::new(),
            start: 0,
            end: None,
            filter: None,
            aggregate: None,
            group_keys: None,
            top_k: None,
            join: None,
            join_extra: None,
            parallelism: 1,
            in_order: false,
        }
    }

    /// A query that reads through an explicit pin (a transaction's view).
    pub(crate) fn with_pin(engine: Arc<Engine>, table: TableId, pin: TablePin) -> Self {
        let mut query = Self::new(engine, table);
        query.pin = Some(pin);
        query
    }

    /// Sets the columns (by name) the query scans. Predicate and aggregate
    /// column indices refer to positions in this projection.
    pub fn columns<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.columns = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Restricts the query to a visible-row (RID) range; accepts any range
    /// expression (`..`, `500..`, `..4500`, `500..4500`). Defaults to all
    /// visible rows; the end is clamped to the table's visible row count.
    pub fn range<R: RangeBounds<u64>>(mut self, range: R) -> Self {
        self.start = match range.start_bound() {
            Bound::Included(&start) => start,
            Bound::Excluded(&start) => start + 1,
            Bound::Unbounded => 0,
        };
        self.end = match range.end_bound() {
            Bound::Included(&end) => Some(end + 1),
            Bound::Excluded(&end) => Some(end),
            Bound::Unbounded => None,
        };
        self
    }

    /// Restricts the query to `rid_range` (the [`TupleRange`] form of
    /// [`Query::range`]).
    pub fn tuple_range(self, rid_range: TupleRange) -> Self {
        self.range(rid_range.start..rid_range.end)
    }

    /// Filters scanned rows with `predicate` (column index within the
    /// projection).
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.filter = Some(predicate);
        self
    }

    /// Sets the aggregation computed over the (filtered) rows; required by
    /// [`Query::run`].
    pub fn aggregate(mut self, spec: AggrSpec) -> Self {
        self.aggregate = Some(spec);
        self
    }

    /// Groups by the composite key formed by `keys` (column indices within
    /// the operator output — the joined row when a [`Query::join`] is
    /// present). Combine with [`Query::aggregate`] (a global [`AggrSpec`]
    /// supplying the per-group aggregates) and execute with
    /// [`Query::run_grouped`].
    pub fn group_by(mut self, keys: &[usize]) -> Self {
        self.group_keys = Some(keys.to_vec());
        self
    }

    /// Keeps only the `k` rows with the smallest (`Asc`) or largest
    /// (`Desc`) values in `column` (an operator-output index), value ties
    /// broken by full-row lexicographic order so the result is independent
    /// of delivery order. Consumed by [`Query::rows`].
    pub fn top_k(mut self, column: usize, k: usize, order: SortOrder) -> Self {
        self.top_k = Some(TopKSpec { column, k, order });
        self
    }

    /// Joins the scanned rows against `table` with a broadcast hash join:
    /// `table` is fully scanned (key column `right_col` plus any
    /// [`Query::join_columns`]) and hashed up front, then the query's own
    /// scan streams through the probe. Output rows are the probe projection
    /// followed by the build key and the extra build columns; downstream
    /// aggregate / group-by / top-k indices refer to that joined layout,
    /// while [`Query::filter`] keeps referring to the probe projection (it
    /// is applied before the probe).
    pub fn join(mut self, table: TableId, left_col: usize, right_col: impl Into<String>) -> Self {
        self.join = Some(JoinClause {
            table,
            left_col,
            right_col: right_col.into(),
            extra_columns: Vec::new(),
        });
        self
    }

    /// Adds build-side columns (beyond the join key) to the join output;
    /// requires a preceding [`Query::join`].
    pub fn join_columns<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.join_extra = Some(columns.into_iter().map(Into::into).collect());
        self
    }

    /// Parallelizes the plan over `workers` threads using static range
    /// partitioning (Equation 1). Defaults to 1 (inline execution).
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Forces in-order row delivery even on backends that prefer to reorder
    /// (the "CScan as drop-in Scan replacement" mode). Aggregations are
    /// order-insensitive; this matters for [`Query::rows`].
    pub fn in_order(mut self) -> Self {
        self.in_order = true;
        self
    }

    fn validate(&mut self) -> Result<()> {
        if self.columns.is_empty() {
            return Err(Error::plan(
                "query selects no columns; call .columns([...]) with at least one column name",
            ));
        }
        if self.parallelism == 0 {
            return Err(Error::plan("query parallelism must be at least 1"));
        }
        if let Some(extra) = self.join_extra.take() {
            match self.join.as_mut() {
                Some(join) => join.extra_columns = extra,
                None => {
                    return Err(Error::plan(
                        "join_columns without a join; call .join(table, left, right) first",
                    ))
                }
            }
        }
        if let Some(join) = &self.join {
            if join.left_col >= self.columns.len() {
                return Err(Error::plan(format!(
                    "join key column {} is outside the {}-column probe projection",
                    join.left_col,
                    self.columns.len()
                )));
            }
        }
        Ok(())
    }

    /// The width of the operator output rows: the probe projection plus, in
    /// join plans, the build key and extra build columns.
    fn output_width(&self) -> usize {
        self.columns.len()
            + self
                .join
                .as_ref()
                .map(|j| 1 + j.extra_columns.len())
                .unwrap_or(0)
    }

    /// Pins the table's published state unless the query already carries a
    /// pin (a transaction's view, or a retried `run`).
    fn resolve_pin(&mut self) -> Result<&TablePin> {
        if self.pin.is_none() {
            self.pin = Some(self.engine.table_pin(self.table)?);
        }
        Ok(self.pin.as_ref().expect("pinned above"))
    }

    /// The effective RID range: the requested bounds clamped to the rows
    /// visible through the query's pin.
    fn resolve_range(&mut self) -> Result<TupleRange> {
        let (start, end) = (self.start, self.end);
        let visible = self.resolve_pin()?.visible_rows();
        let end = end.unwrap_or(visible).min(visible);
        Ok(TupleRange::new(start.min(end), end))
    }

    fn column_refs(&self) -> Vec<&str> {
        self.columns.iter().map(String::as_str).collect()
    }

    pub(crate) fn open_scan(&self, range: TupleRange) -> Result<Box<dyn BatchSource + Send>> {
        let columns = self.column_refs();
        let pin = self
            .pin
            .clone()
            .expect("resolve_range pinned the table before any scan opens");
        self.engine
            .scan_pinned(pin, &columns, range, self.in_order, self.filter.as_ref())
    }

    /// Opens the build-side scan of the join clause: a full scan of the
    /// build table's key + extra columns through a fresh pin. The scan
    /// registers with the backend like any other; dropping the returned
    /// source unregisters it — the caller drains it fully *before* opening
    /// any probe scan, which is what makes the join "broadcast": one
    /// build pass, shared by every probe fragment.
    pub(crate) fn open_build_scan(&self) -> Result<Box<dyn BatchSource + Send>> {
        let join = self.join.as_ref().expect("caller checked the join clause");
        let columns = join.build_columns();
        let pin = self.engine.table_pin(join.table)?;
        let range = TupleRange::new(0, pin.visible_rows());
        self.engine.scan_pinned(pin, &columns, range, false, None)
    }

    /// Fully builds the join hash table (register → drain → unregister the
    /// build scan) for the inline execution paths. The cooperative path
    /// drains the same scan incrementally inside
    /// [`QueryTask`](crate::sched::QueryTask).
    fn build_join_table(&self) -> Result<Arc<JoinTable>> {
        let join = self.join.as_ref().expect("caller checked the join clause");
        let mut scan = self.open_build_scan()?;
        let mut build = JoinBuild::new(0, 1 + join.extra_columns.len());
        while let Some(batch) = scan.next_batch()? {
            build.push_batch(&batch);
        }
        Ok(Arc::new(build.finish()))
    }

    /// Wraps a probe scan with the join probe when the query has a join
    /// clause (applying the filter pre-join), or leaves it untouched.
    /// Returns the filter the *downstream* operators should apply: `None`
    /// once the join source has consumed it.
    pub(crate) fn wrap_probe(
        &self,
        scan: Box<dyn BatchSource + Send>,
        table: Option<&Arc<JoinTable>>,
    ) -> Box<dyn BatchSource + Send> {
        match (table, self.join.as_ref()) {
            (Some(table), Some(join)) => Box::new(JoinSource::new(
                scan,
                Arc::clone(table),
                join.left_col,
                self.filter,
            )),
            _ => scan,
        }
    }

    /// The filter the operators above the (possibly join-wrapped) scan
    /// apply: the join source already applied it pre-probe.
    fn downstream_filter(&self) -> Option<Predicate> {
        if self.join.is_some() {
            None
        } else {
            self.filter
        }
    }

    /// Executes the query and returns the aggregation result.
    ///
    /// With `parallelism > 1` the plan is duplicated below an XChg-style
    /// exchange: the RID range is split evenly over the workers
    /// (Equation 1), each worker runs scan → filter → partial aggregate
    /// against the shared engine (and therefore the shared buffer-management
    /// backend), and the partials are merged by an upper aggregation.
    pub fn run(mut self) -> Result<AggrResult> {
        self.validate()?;
        if self.group_keys.is_some() {
            return Err(Error::plan(
                "query has group_by keys; use .run_grouped() instead of .run()",
            ));
        }
        if self.top_k.is_some() {
            return Err(Error::plan("top_k applies to .rows(), not .run()"));
        }
        let spec = self.aggregate.clone().ok_or_else(|| {
            Error::plan("query has no aggregate; call .aggregate(...) or use .rows()")
        })?;
        let range = self.resolve_range()?;
        let join = self.join_table_if_any()?;
        let filter = self.downstream_filter();

        if self.parallelism == 1 || range.len() < self.parallelism as u64 {
            let scan = self.open_scan(range)?;
            let mut scan = self.wrap_probe(scan, join.as_ref());
            return aggregate(scan.as_mut(), filter, &spec);
        }

        let parts = range.split_even(self.parallelism);
        let partials: Vec<Result<AggrResult>> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .filter(|part| !part.is_empty())
                .map(|part| {
                    let query = &self;
                    let spec = &spec;
                    let join = &join;
                    let part = *part;
                    scope.spawn(move || {
                        let scan = query.open_scan(part)?;
                        let mut scan = query.wrap_probe(scan, join.as_ref());
                        aggregate(scan.as_mut(), filter, spec)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });

        let mut results = Vec::with_capacity(partials.len());
        for partial in partials {
            results.push(partial?);
        }
        Ok(merge_aggregates(&spec, results))
    }

    /// Executes a multi-key grouped aggregation: requires [`Query::group_by`]
    /// keys and a *global* [`Query::aggregate`] spec supplying the per-group
    /// aggregates. Parallelized exactly like [`Query::run`] (partial
    /// grouped aggregates per Equation-1 range part, merged by an upper
    /// GroupBy).
    pub fn run_grouped(mut self) -> Result<GroupedResult> {
        self.validate()?;
        if self.top_k.is_some() {
            return Err(Error::plan("top_k applies to .rows(), not .run_grouped()"));
        }
        let keys = self.group_keys.clone().ok_or_else(|| {
            Error::plan("run_grouped without group keys; call .group_by(&[...]) first")
        })?;
        let aggr = self.aggregate.clone().ok_or_else(|| {
            Error::plan("run_grouped needs aggregates; call .aggregate(AggrSpec::global(...))")
        })?;
        if aggr.group_by.is_some() {
            return Err(Error::plan(
                "run_grouped takes its keys from .group_by(); pass a global AggrSpec",
            ));
        }
        let width = self.output_width();
        if let Some(&bad) = keys.iter().find(|&&k| k >= width) {
            return Err(Error::plan(format!(
                "group key column {bad} is outside the {width}-column operator output"
            )));
        }
        let spec = GroupSpec {
            keys,
            aggregates: aggr.aggregates,
        };
        let range = self.resolve_range()?;
        let join = self.join_table_if_any()?;
        let filter = self.downstream_filter();

        if self.parallelism == 1 || range.len() < self.parallelism as u64 {
            let scan = self.open_scan(range)?;
            let mut scan = self.wrap_probe(scan, join.as_ref());
            return aggregate_grouped(scan.as_mut(), filter, &spec);
        }

        let parts = range.split_even(self.parallelism);
        let partials: Vec<Result<GroupedResult>> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .filter(|part| !part.is_empty())
                .map(|part| {
                    let query = &self;
                    let spec = &spec;
                    let join = &join;
                    let part = *part;
                    scope.spawn(move || {
                        let scan = query.open_scan(part)?;
                        let mut scan = query.wrap_probe(scan, join.as_ref());
                        aggregate_grouped(scan.as_mut(), filter, spec)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });

        let mut results = Vec::with_capacity(partials.len());
        for partial in partials {
            results.push(partial?);
        }
        Ok(merge_grouped(&spec, results))
    }

    /// Builds the join hash table when the query has a join clause; `None`
    /// otherwise. Must run after `resolve_range` (probe pinned) and before
    /// any probe scan opens, so the backend sees the paper-shaped sequence:
    /// build scan registers, drains and unregisters first.
    fn join_table_if_any(&self) -> Result<Option<Arc<JoinTable>>> {
        match self.join {
            Some(_) => Ok(Some(self.build_join_table()?)),
            None => Ok(None),
        }
    }

    /// Lowers the query onto the task scheduler instead of executing it
    /// inline: validates the plan, pins the table, opens one scan per
    /// Equation-1 range part and returns a [`QueryTask`](crate::sched::QueryTask) ready for
    /// [`TaskScheduler::spawn`](crate::sched::TaskScheduler::spawn).
    ///
    /// Semantics match [`Query::run`] exactly (same validation errors, same
    /// results — the per-quantum [`fold_batch`](crate::ops::fold_batch) is
    /// equivalent to the partial-aggregate-then-merge of the threaded
    /// exchange plan), but execution is cooperative: the task yields at
    /// batch boundaries so thousands of queries share a fixed worker pool.
    /// `parallelism` here controls how many partial scans the task
    /// *interleaves*, not how many OS threads it occupies — cross-worker
    /// parallelism comes from running many tasks, and from work stealing.
    pub fn into_task(mut self) -> Result<crate::sched::QueryTask> {
        self.validate()?;
        if self.group_keys.is_some() || self.top_k.is_some() {
            return Err(Error::plan(
                "the task path computes aggregates; group_by/top_k plans run inline",
            ));
        }
        let spec = self.aggregate.clone().ok_or_else(|| {
            Error::plan("query has no aggregate; call .aggregate(...) or use .rows()")
        })?;
        let range = self.resolve_range()?;
        let parts: Vec<TupleRange> =
            if self.parallelism == 1 || range.len() < self.parallelism as u64 {
                vec![range]
            } else {
                range.split_even(self.parallelism)
            }
            .into_iter()
            .filter(|part| !part.is_empty())
            .collect();

        if let Some(join) = &self.join {
            // Join plans defer the probe: the task drains the build scan
            // cooperatively (a bounded number of batches per quantum), and
            // only once it finishes — build scan unregistered, hash table
            // frozen — do the probe scans open. The backend therefore sees
            // the same register/drain/unregister-then-probe sequence as the
            // inline path, just interleaved with other sessions.
            let build_scan = self.open_build_scan()?;
            let build = JoinBuild::new(0, 1 + join.extra_columns.len());
            return Ok(crate::sched::QueryTask::with_join(
                build_scan, build, self, parts, spec,
            ));
        }

        let mut scans = Vec::with_capacity(parts.len());
        for part in parts {
            scans.push(self.open_scan(part)?);
        }
        Ok(crate::sched::QueryTask::new(scans, self.filter, spec))
    }

    /// Executes the query and materializes the (filtered) rows instead of
    /// aggregating. Rows arrive in backend delivery order unless
    /// [`Query::in_order`] is set. Single-threaded: materialization is for
    /// result inspection, not for the throughput paths.
    pub fn rows(mut self) -> Result<Vec<Vec<Value>>> {
        self.validate()?;
        if self.group_keys.is_some() {
            return Err(Error::plan(
                "query has group_by keys; use .run_grouped() instead of .rows()",
            ));
        }
        if let Some(top_k) = &self.top_k {
            let width = self.output_width();
            if top_k.column >= width {
                return Err(Error::plan(format!(
                    "top_k column {} is outside the {width}-column operator output",
                    top_k.column
                )));
            }
        }
        let range = self.resolve_range()?;
        let join = self.join_table_if_any()?;
        let filter = self.downstream_filter();
        let scan = self.open_scan(range)?;
        let mut scan = self.wrap_probe(scan, join.as_ref());
        match self.top_k {
            Some(spec) => {
                let mut state = TopKState::new(spec);
                while let Some(batch) = scan.next_batch()? {
                    let batch = match &filter {
                        Some(predicate) => batch.filter(&predicate.mask(&batch)),
                        None => batch,
                    };
                    state.push_batch(&batch);
                }
                Ok(state.finish())
            }
            None => {
                let mut rows = Vec::new();
                while let Some(batch) = scan.next_batch()? {
                    let batch = match &filter {
                        Some(predicate) => batch.filter(&predicate.mask(&batch)),
                        None => batch,
                    };
                    rows.extend(batch.to_rows());
                }
                Ok(rows)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Aggregate, CompareOp};
    use scanshare_common::{PolicyKind, ScanShareConfig};
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::datagen::DataGen;
    use scanshare_storage::storage::Storage;
    use scanshare_storage::table::TableSpec;

    fn engine(policy: PolicyKind, tuples: u64) -> (Arc<Engine>, TableId) {
        let storage = Storage::with_seed(1024, 500, 13);
        let spec = TableSpec::new(
            "lineitem",
            vec![
                ColumnSpec::with_width("l_flag", ColumnType::Dict { cardinality: 4 }, 1.0),
                ColumnSpec::with_width("l_quantity", ColumnType::Decimal, 4.0),
                ColumnSpec::with_width("l_price", ColumnType::Decimal, 4.0),
            ],
            tuples,
        );
        let table = storage
            .create_table_with_data(
                spec,
                vec![
                    DataGen::Cyclic {
                        period: 4,
                        min: 0,
                        max: 3,
                    },
                    DataGen::Uniform { min: 1, max: 50 },
                    DataGen::Uniform {
                        min: 100,
                        max: 10_000,
                    },
                ],
            )
            .unwrap();
        let config = ScanShareConfig {
            page_size_bytes: 1024,
            chunk_tuples: 500,
            buffer_pool_bytes: 256 * 1024,
            policy,
            threads_per_query: 4,
            ..Default::default()
        };
        (Engine::new(storage, config).unwrap(), table)
    }

    fn q1_spec() -> AggrSpec {
        AggrSpec::grouped(
            0,
            vec![Aggregate::Sum(1), Aggregate::Sum(2), Aggregate::Count],
        )
    }

    /// Like [`engine`], plus a small dimension table `part` whose `p_key`
    /// column cycles over the same 0..=3 domain as `l_flag`, so
    /// `lineitem.l_flag = part.p_key` is a one-to-many broadcast join
    /// (each key matches `dim_tuples / 4` build rows).
    fn engine_with_dim(
        policy: PolicyKind,
        tuples: u64,
        dim_tuples: u64,
    ) -> (Arc<Engine>, TableId, TableId) {
        let storage = Storage::with_seed(1024, 500, 13);
        let spec = TableSpec::new(
            "lineitem",
            vec![
                ColumnSpec::with_width("l_flag", ColumnType::Dict { cardinality: 4 }, 1.0),
                ColumnSpec::with_width("l_quantity", ColumnType::Decimal, 4.0),
                ColumnSpec::with_width("l_price", ColumnType::Decimal, 4.0),
            ],
            tuples,
        );
        let table = storage
            .create_table_with_data(
                spec,
                vec![
                    DataGen::Cyclic {
                        period: 4,
                        min: 0,
                        max: 3,
                    },
                    DataGen::Uniform { min: 1, max: 50 },
                    DataGen::Uniform {
                        min: 100,
                        max: 10_000,
                    },
                ],
            )
            .unwrap();
        let dim_spec = TableSpec::new(
            "part",
            vec![
                ColumnSpec::with_width("p_key", ColumnType::Dict { cardinality: 4 }, 1.0),
                ColumnSpec::with_width("p_weight", ColumnType::Decimal, 4.0),
            ],
            dim_tuples,
        );
        let dim = storage
            .create_table_with_data(
                dim_spec,
                vec![
                    DataGen::Cyclic {
                        period: 4,
                        min: 0,
                        max: 3,
                    },
                    DataGen::Uniform { min: 1, max: 9 },
                ],
            )
            .unwrap();
        let config = ScanShareConfig {
            page_size_bytes: 1024,
            chunk_tuples: 500,
            buffer_pool_bytes: 256 * 1024,
            policy,
            threads_per_query: 4,
            ..Default::default()
        };
        (Engine::new(storage, config).unwrap(), table, dim)
    }

    /// Reference nested-loop join of the two test tables' raw rows:
    /// (probe columns..., build key, build extras...) for every matching
    /// pair, used to check the hash join against first principles.
    fn nested_loop_join(
        probe: &[Vec<Value>],
        build: &[Vec<Value>],
        left_col: usize,
    ) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        for p in probe {
            for b in build {
                if p[left_col] == b[0] {
                    let mut row = p.clone();
                    row.extend(b.iter().copied());
                    out.push(row);
                }
            }
        }
        out
    }

    #[test]
    fn defaults_cover_all_visible_rows_single_threaded() {
        let (engine, table) = engine(PolicyKind::Pbm, 4000);
        let result = engine
            .query(table)
            .columns(["l_flag"])
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .run()
            .unwrap();
        assert_eq!(result[&0].count, 4000);
    }

    #[test]
    fn range_clauses_accept_every_bound_shape() {
        let (engine, table) = engine(PolicyKind::Lru, 2000);
        let count = |query: Query| {
            query
                .aggregate(AggrSpec::global(vec![Aggregate::Count]))
                .run()
                .unwrap()[&0]
                .count
        };
        let base = || engine.query(table).columns(["l_flag"]);
        assert_eq!(count(base().range(..)), 2000);
        assert_eq!(count(base().range(100..300)), 200);
        assert_eq!(count(base().range(1900..)), 100);
        assert_eq!(count(base().range(..=99)), 100);
        assert_eq!(count(base().tuple_range(TupleRange::new(5, 10))), 5);
        // Ranges beyond the visible rows are clamped, inverted ranges empty.
        assert_eq!(count(base().range(1000..100_000)), 1000);
        let inverted = (Bound::Included(300u64), Bound::Excluded(100u64));
        let empty = base()
            .range(inverted)
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .run()
            .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn missing_columns_and_bad_clauses_error() {
        let (engine, table) = engine(PolicyKind::Pbm, 100);
        let no_columns = engine
            .query(table)
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .run();
        assert!(matches!(no_columns.unwrap_err(), Error::InvalidPlan(_)));

        let no_aggregate = engine.query(table).columns(["l_flag"]).run();
        assert!(matches!(no_aggregate.unwrap_err(), Error::InvalidPlan(_)));

        let zero_workers = engine
            .query(table)
            .columns(["l_flag"])
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .parallelism(0)
            .run();
        assert!(matches!(zero_workers.unwrap_err(), Error::InvalidPlan(_)));

        let unknown_column = engine
            .query(table)
            .columns(["no_such_column"])
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .run();
        assert!(matches!(
            unknown_column.unwrap_err(),
            Error::UnknownColumn { .. }
        ));
    }

    #[test]
    fn parallel_results_match_sequential() {
        for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
            let (engine, table) = engine(policy, 6000);
            let query = || {
                engine
                    .query(table)
                    .columns(["l_flag", "l_quantity", "l_price"])
                    .filter(Predicate::new(1, CompareOp::Le, 24))
                    .aggregate(q1_spec())
            };
            let sequential = query().run().unwrap();
            let parallel = query().parallelism(4).run().unwrap();
            assert_eq!(sequential, parallel, "policy {policy}");
            assert_eq!(sequential.len(), 4, "four flag groups");
            let total: u64 = sequential.values().map(|g| g.count).sum();
            assert!(total > 0 && total < 6000, "the filter removes some rows");
        }
    }

    #[test]
    fn all_policies_compute_identical_answers() {
        let mut reference: Option<AggrResult> = None;
        for policy in [
            PolicyKind::Lru,
            PolicyKind::Pbm,
            PolicyKind::Opt,
            PolicyKind::CScan,
        ] {
            let (engine, table) = engine(policy, 5000);
            let result = engine
                .query(table)
                .columns(["l_flag", "l_quantity", "l_price"])
                .range(500..4500)
                .aggregate(q1_spec())
                .parallelism(4)
                .run()
                .unwrap();
            match &reference {
                None => reference = Some(result),
                Some(expected) => assert_eq!(expected, &result, "policy {policy} diverged"),
            }
        }
    }

    #[test]
    fn rows_materializes_the_filtered_projection() {
        let (engine, table) = engine(PolicyKind::CScan, 3000);
        let rows = engine
            .query(table)
            .columns(["l_flag", "l_quantity"])
            .filter(Predicate::new(0, CompareOp::Eq, 2))
            .in_order()
            .rows()
            .unwrap();
        assert_eq!(rows.len(), 750, "one of four cyclic flag values");
        assert!(rows.iter().all(|row| row[0] == 2));
        // In-order delivery holds even under Cooperative Scans.
        let unfiltered = engine
            .query(table)
            .columns(["l_flag"])
            .in_order()
            .rows()
            .unwrap();
        let expected: Vec<i64> = (0..3000).map(|i| i % 4).collect();
        assert_eq!(
            unfiltered.iter().map(|r| r[0]).collect::<Vec<_>>(),
            expected
        );
    }

    #[test]
    fn equation_1_partitioning_covers_range_without_overlap() {
        let parts = TupleRange::new(0, 1000).split_even(8);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts[0], TupleRange::new(0, 125));
        assert_eq!(parts[7], TupleRange::new(875, 1000));
        let covered: u64 = parts.iter().map(TupleRange::len).sum();
        assert_eq!(covered, 1000);
    }

    #[test]
    fn join_matches_the_nested_loop_reference() {
        for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
            let (engine, lineitem, part) = engine_with_dim(policy, 600, 8);
            let probe_rows = engine
                .query(lineitem)
                .columns(["l_flag", "l_quantity"])
                .filter(Predicate::new(1, CompareOp::Le, 24))
                .in_order()
                .rows()
                .unwrap();
            let build_rows = engine
                .query(part)
                .columns(["p_key", "p_weight"])
                .in_order()
                .rows()
                .unwrap();
            let mut expected = nested_loop_join(&probe_rows, &build_rows, 0);
            expected.sort_unstable();
            let mut joined = engine
                .query(lineitem)
                .columns(["l_flag", "l_quantity"])
                .filter(Predicate::new(1, CompareOp::Le, 24))
                .join(part, 0, "p_key")
                .join_columns(["p_weight"])
                .rows()
                .unwrap();
            joined.sort_unstable();
            assert_eq!(joined, expected, "policy {policy}");
            // Each probe row matches dim_tuples/4 = 2 build rows.
            assert_eq!(joined.len(), 2 * probe_rows.len(), "policy {policy}");
        }
    }

    #[test]
    fn join_aggregates_are_parallelism_invariant() {
        let (engine, lineitem, part) = engine_with_dim(PolicyKind::Pbm, 5000, 12);
        let query = || {
            engine
                .query(lineitem)
                .columns(["l_flag", "l_price"])
                .join(part, 0, "p_key")
                .join_columns(["p_weight"])
                // Indices refer to the joined layout:
                // 0=l_flag 1=l_price 2=p_key 3=p_weight.
                .aggregate(AggrSpec::grouped(
                    3,
                    vec![Aggregate::Count, Aggregate::Sum(1)],
                ))
        };
        let sequential = query().run().unwrap();
        let parallel = query().parallelism(4).run().unwrap();
        assert_eq!(sequential, parallel);
        let total: u64 = sequential.values().map(|g| g.count).sum();
        assert_eq!(total, 3 * 5000, "12 build rows / 4 keys = 3 matches each");
    }

    #[test]
    fn join_task_path_matches_inline_run() {
        let (engine, lineitem, part) = engine_with_dim(PolicyKind::Lru, 3000, 8);
        let query = || {
            engine
                .query(lineitem)
                .columns(["l_flag", "l_quantity"])
                .filter(Predicate::new(1, CompareOp::Le, 30))
                .join(part, 0, "p_key")
                .join_columns(["p_weight"])
                .aggregate(AggrSpec::grouped(
                    0,
                    vec![Aggregate::Count, Aggregate::Sum(3)],
                ))
                .parallelism(2)
        };
        let inline = query().run().unwrap();
        // Drive the cooperative form by hand: build quanta first, then the
        // probe parts, exactly like a scheduler worker would.
        use crate::sched::{Task, TaskStep};
        let mut task = query().into_task().unwrap();
        while !matches!(task.step().unwrap(), TaskStep::Done) {}
        assert_eq!(task.into_result(), inline);
    }

    #[test]
    fn group_by_multiple_keys_is_parallelism_invariant() {
        let (engine, table) = engine(PolicyKind::Pbm, 4000);
        let query = || {
            engine
                .query(table)
                .columns(["l_flag", "l_quantity", "l_price"])
                .filter(Predicate::new(2, CompareOp::Ge, 2000))
                .group_by(&[0, 1])
                .aggregate(AggrSpec::global(vec![
                    Aggregate::Count,
                    Aggregate::Sum(2),
                    Aggregate::Min(2),
                ]))
        };
        let sequential = query().run_grouped().unwrap();
        let parallel = query().parallelism(4).run_grouped().unwrap();
        assert_eq!(sequential, parallel);
        assert!(sequential.len() > 4, "composite keys outnumber l_flag");
        for (key, group) in &sequential {
            assert_eq!(key.len(), 2);
            assert!(group.count > 0);
        }
        // Single-key grouping through the new path agrees with AggrSpec.
        let single = engine
            .query(table)
            .columns(["l_flag", "l_price"])
            .group_by(&[0])
            .aggregate(AggrSpec::global(vec![Aggregate::Sum(1)]))
            .run_grouped()
            .unwrap();
        let via_aggr = engine
            .query(table)
            .columns(["l_flag", "l_price"])
            .aggregate(AggrSpec::grouped(0, vec![Aggregate::Sum(1)]))
            .run()
            .unwrap();
        for (key, group) in &via_aggr {
            assert_eq!(single[&vec![*key]].accumulators, group.accumulators);
        }
    }

    #[test]
    fn top_k_rows_are_policy_and_order_invariant() {
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
            let (engine, table) = engine(policy, 3000);
            // No in_order(): CScan delivers out of order, the top-k total
            // order must absorb that.
            let top = engine
                .query(table)
                .columns(["l_price", "l_quantity"])
                .top_k(0, 25, SortOrder::Desc)
                .rows()
                .unwrap();
            assert_eq!(top.len(), 25);
            for pair in top.windows(2) {
                assert!(pair[0][0] >= pair[1][0], "descending by l_price");
            }
            match &reference {
                None => reference = Some(top),
                Some(expected) => assert_eq!(expected, &top, "policy {policy}"),
            }
        }
    }

    #[test]
    fn pipeline_plan_errors_are_descriptive() {
        let (engine, lineitem, part) = engine_with_dim(PolicyKind::Lru, 100, 8);
        let orphan_join_columns = engine
            .query(lineitem)
            .columns(["l_flag"])
            .join_columns(["p_weight"])
            .rows();
        assert!(matches!(
            orphan_join_columns.unwrap_err(),
            Error::InvalidPlan(_)
        ));

        let join_key_out_of_range = engine
            .query(lineitem)
            .columns(["l_flag"])
            .join(part, 5, "p_key")
            .rows();
        assert!(matches!(
            join_key_out_of_range.unwrap_err(),
            Error::InvalidPlan(_)
        ));

        let grouped_run = engine
            .query(lineitem)
            .columns(["l_flag"])
            .group_by(&[0])
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .run();
        assert!(matches!(grouped_run.unwrap_err(), Error::InvalidPlan(_)));

        let grouped_spec_clash = engine
            .query(lineitem)
            .columns(["l_flag"])
            .group_by(&[0])
            .aggregate(AggrSpec::grouped(0, vec![Aggregate::Count]))
            .run_grouped();
        assert!(matches!(
            grouped_spec_clash.unwrap_err(),
            Error::InvalidPlan(_)
        ));

        let group_key_out_of_range = engine
            .query(lineitem)
            .columns(["l_flag"])
            .group_by(&[3])
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .run_grouped();
        assert!(matches!(
            group_key_out_of_range.unwrap_err(),
            Error::InvalidPlan(_)
        ));

        let top_k_in_run = engine
            .query(lineitem)
            .columns(["l_flag"])
            .top_k(0, 5, SortOrder::Asc)
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .run();
        assert!(matches!(top_k_in_run.unwrap_err(), Error::InvalidPlan(_)));

        let top_k_out_of_range = engine
            .query(lineitem)
            .columns(["l_flag"])
            .top_k(7, 5, SortOrder::Asc)
            .rows();
        assert!(matches!(
            top_k_out_of_range.unwrap_err(),
            Error::InvalidPlan(_)
        ));

        let task_group = engine
            .query(lineitem)
            .columns(["l_flag"])
            .group_by(&[0])
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .into_task();
        assert!(matches!(task_group.unwrap_err(), Error::InvalidPlan(_)));
    }

    #[test]
    fn single_threaded_fallback_for_tiny_ranges() {
        let (engine, table) = engine(PolicyKind::Pbm, 100);
        let result = engine
            .query(table)
            .columns(["l_flag", "l_quantity", "l_price"])
            .range(0..3)
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .parallelism(8)
            .run()
            .unwrap();
        assert_eq!(result[&0].count, 3);
    }
}
