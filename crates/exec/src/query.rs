//! The builder-style query API — the single entry point for running queries
//! against an [`Engine`].
//!
//! A [`Query`] expresses the `Scan -> Select -> Aggr` plans of the paper's
//! microbenchmarks (optionally parallelized with the XChg-style static range
//! partitioning of Figure 8 / Equation 1) without positional arguments:
//!
//! ```ignore
//! let result = engine
//!     .query(table)
//!     .columns(["l_flag", "l_quantity"])
//!     .range(1000..5000)
//!     .filter(Predicate::new(1, CompareOp::Le, 24))
//!     .aggregate(AggrSpec::grouped(0, vec![Aggregate::Sum(1), Aggregate::Count]))
//!     .parallelism(4)
//!     .run()?;
//! ```
//!
//! Every clause has a default: all visible rows (`range`), no filter, one
//! worker (`parallelism`), backend-chosen delivery order. Only `columns` is
//! mandatory, and `run` requires an `aggregate`; use [`Query::rows`] to
//! materialize filtered rows without aggregating.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

use scanshare_common::{Error, Result, TableId, TupleRange};
use scanshare_storage::datagen::Value;

use crate::engine::Engine;
use crate::ops::{aggregate, merge_aggregates, AggrResult, AggrSpec, BatchSource, Predicate};
use crate::txn::TablePin;

/// A query under construction; see the [module docs](self) for the clause
/// semantics. Created with [`Engine::query`] (reading the committed state)
/// or [`Txn::query`](crate::txn::Txn::query) (reading a transaction's
/// private view).
#[derive(Debug, Clone)]
#[must_use = "a Query does nothing until `.run()` or `.rows()` is called"]
pub struct Query {
    engine: Arc<Engine>,
    table: TableId,
    /// The `(Snapshot, PdtStack)` pair the query reads through. `None`
    /// until execution, when the table's published state is pinned; a query
    /// built by a transaction carries the transaction's view instead.
    /// Either way every scan of the query — including all parallel workers —
    /// shares one consistent pin.
    pin: Option<TablePin>,
    columns: Vec<String>,
    start: u64,
    end: Option<u64>,
    filter: Option<Predicate>,
    aggregate: Option<AggrSpec>,
    parallelism: usize,
    in_order: bool,
}

impl Query {
    pub(crate) fn new(engine: Arc<Engine>, table: TableId) -> Self {
        Self {
            engine,
            table,
            pin: None,
            columns: Vec::new(),
            start: 0,
            end: None,
            filter: None,
            aggregate: None,
            parallelism: 1,
            in_order: false,
        }
    }

    /// A query that reads through an explicit pin (a transaction's view).
    pub(crate) fn with_pin(engine: Arc<Engine>, table: TableId, pin: TablePin) -> Self {
        let mut query = Self::new(engine, table);
        query.pin = Some(pin);
        query
    }

    /// Sets the columns (by name) the query scans. Predicate and aggregate
    /// column indices refer to positions in this projection.
    pub fn columns<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.columns = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Restricts the query to a visible-row (RID) range; accepts any range
    /// expression (`..`, `500..`, `..4500`, `500..4500`). Defaults to all
    /// visible rows; the end is clamped to the table's visible row count.
    pub fn range<R: RangeBounds<u64>>(mut self, range: R) -> Self {
        self.start = match range.start_bound() {
            Bound::Included(&start) => start,
            Bound::Excluded(&start) => start + 1,
            Bound::Unbounded => 0,
        };
        self.end = match range.end_bound() {
            Bound::Included(&end) => Some(end + 1),
            Bound::Excluded(&end) => Some(end),
            Bound::Unbounded => None,
        };
        self
    }

    /// Restricts the query to `rid_range` (the [`TupleRange`] form of
    /// [`Query::range`]).
    pub fn tuple_range(self, rid_range: TupleRange) -> Self {
        self.range(rid_range.start..rid_range.end)
    }

    /// Filters scanned rows with `predicate` (column index within the
    /// projection).
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.filter = Some(predicate);
        self
    }

    /// Sets the aggregation computed over the (filtered) rows; required by
    /// [`Query::run`].
    pub fn aggregate(mut self, spec: AggrSpec) -> Self {
        self.aggregate = Some(spec);
        self
    }

    /// Parallelizes the plan over `workers` threads using static range
    /// partitioning (Equation 1). Defaults to 1 (inline execution).
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Forces in-order row delivery even on backends that prefer to reorder
    /// (the "CScan as drop-in Scan replacement" mode). Aggregations are
    /// order-insensitive; this matters for [`Query::rows`].
    pub fn in_order(mut self) -> Self {
        self.in_order = true;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.columns.is_empty() {
            return Err(Error::plan(
                "query selects no columns; call .columns([...]) with at least one column name",
            ));
        }
        if self.parallelism == 0 {
            return Err(Error::plan("query parallelism must be at least 1"));
        }
        Ok(())
    }

    /// Pins the table's published state unless the query already carries a
    /// pin (a transaction's view, or a retried `run`).
    fn resolve_pin(&mut self) -> Result<&TablePin> {
        if self.pin.is_none() {
            self.pin = Some(self.engine.table_pin(self.table)?);
        }
        Ok(self.pin.as_ref().expect("pinned above"))
    }

    /// The effective RID range: the requested bounds clamped to the rows
    /// visible through the query's pin.
    fn resolve_range(&mut self) -> Result<TupleRange> {
        let (start, end) = (self.start, self.end);
        let visible = self.resolve_pin()?.visible_rows();
        let end = end.unwrap_or(visible).min(visible);
        Ok(TupleRange::new(start.min(end), end))
    }

    fn column_refs(&self) -> Vec<&str> {
        self.columns.iter().map(String::as_str).collect()
    }

    fn open_scan(&self, range: TupleRange) -> Result<Box<dyn BatchSource + Send>> {
        let columns = self.column_refs();
        let pin = self
            .pin
            .clone()
            .expect("resolve_range pinned the table before any scan opens");
        self.engine
            .scan_pinned(pin, &columns, range, self.in_order, self.filter.as_ref())
    }

    /// Executes the query and returns the aggregation result.
    ///
    /// With `parallelism > 1` the plan is duplicated below an XChg-style
    /// exchange: the RID range is split evenly over the workers
    /// (Equation 1), each worker runs scan → filter → partial aggregate
    /// against the shared engine (and therefore the shared buffer-management
    /// backend), and the partials are merged by an upper aggregation.
    pub fn run(mut self) -> Result<AggrResult> {
        self.validate()?;
        let spec = self.aggregate.clone().ok_or_else(|| {
            Error::plan("query has no aggregate; call .aggregate(...) or use .rows()")
        })?;
        let range = self.resolve_range()?;

        if self.parallelism == 1 || range.len() < self.parallelism as u64 {
            let mut scan = self.open_scan(range)?;
            return aggregate(scan.as_mut(), self.filter, &spec);
        }

        let parts = range.split_even(self.parallelism);
        let partials: Vec<Result<AggrResult>> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .filter(|part| !part.is_empty())
                .map(|part| {
                    let query = &self;
                    let spec = &spec;
                    let part = *part;
                    scope.spawn(move || {
                        let mut scan = query.open_scan(part)?;
                        aggregate(scan.as_mut(), query.filter, spec)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });

        let mut results = Vec::with_capacity(partials.len());
        for partial in partials {
            results.push(partial?);
        }
        Ok(merge_aggregates(&spec, results))
    }

    /// Lowers the query onto the task scheduler instead of executing it
    /// inline: validates the plan, pins the table, opens one scan per
    /// Equation-1 range part and returns a [`QueryTask`](crate::sched::QueryTask) ready for
    /// [`TaskScheduler::spawn`](crate::sched::TaskScheduler::spawn).
    ///
    /// Semantics match [`Query::run`] exactly (same validation errors, same
    /// results — the per-quantum [`fold_batch`](crate::ops::fold_batch) is
    /// equivalent to the partial-aggregate-then-merge of the threaded
    /// exchange plan), but execution is cooperative: the task yields at
    /// batch boundaries so thousands of queries share a fixed worker pool.
    /// `parallelism` here controls how many partial scans the task
    /// *interleaves*, not how many OS threads it occupies — cross-worker
    /// parallelism comes from running many tasks, and from work stealing.
    pub fn into_task(mut self) -> Result<crate::sched::QueryTask> {
        self.validate()?;
        let spec = self.aggregate.clone().ok_or_else(|| {
            Error::plan("query has no aggregate; call .aggregate(...) or use .rows()")
        })?;
        let range = self.resolve_range()?;
        let parts = if self.parallelism == 1 || range.len() < self.parallelism as u64 {
            vec![range]
        } else {
            range.split_even(self.parallelism)
        };
        let mut scans = Vec::with_capacity(parts.len());
        for part in parts.into_iter().filter(|part| !part.is_empty()) {
            scans.push(self.open_scan(part)?);
        }
        Ok(crate::sched::QueryTask::new(scans, self.filter, spec))
    }

    /// Executes the query and materializes the (filtered) rows instead of
    /// aggregating. Rows arrive in backend delivery order unless
    /// [`Query::in_order`] is set. Single-threaded: materialization is for
    /// result inspection, not for the throughput paths.
    pub fn rows(mut self) -> Result<Vec<Vec<Value>>> {
        self.validate()?;
        let range = self.resolve_range()?;
        let mut scan = self.open_scan(range)?;
        let mut rows = Vec::new();
        while let Some(batch) = scan.next_batch()? {
            let batch = match &self.filter {
                Some(predicate) => batch.filter(&predicate.mask(&batch)),
                None => batch,
            };
            rows.extend(batch.to_rows());
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Aggregate, CompareOp};
    use scanshare_common::{PolicyKind, ScanShareConfig};
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::datagen::DataGen;
    use scanshare_storage::storage::Storage;
    use scanshare_storage::table::TableSpec;

    fn engine(policy: PolicyKind, tuples: u64) -> (Arc<Engine>, TableId) {
        let storage = Storage::with_seed(1024, 500, 13);
        let spec = TableSpec::new(
            "lineitem",
            vec![
                ColumnSpec::with_width("l_flag", ColumnType::Dict { cardinality: 4 }, 1.0),
                ColumnSpec::with_width("l_quantity", ColumnType::Decimal, 4.0),
                ColumnSpec::with_width("l_price", ColumnType::Decimal, 4.0),
            ],
            tuples,
        );
        let table = storage
            .create_table_with_data(
                spec,
                vec![
                    DataGen::Cyclic {
                        period: 4,
                        min: 0,
                        max: 3,
                    },
                    DataGen::Uniform { min: 1, max: 50 },
                    DataGen::Uniform {
                        min: 100,
                        max: 10_000,
                    },
                ],
            )
            .unwrap();
        let config = ScanShareConfig {
            page_size_bytes: 1024,
            chunk_tuples: 500,
            buffer_pool_bytes: 256 * 1024,
            policy,
            threads_per_query: 4,
            ..Default::default()
        };
        (Engine::new(storage, config).unwrap(), table)
    }

    fn q1_spec() -> AggrSpec {
        AggrSpec::grouped(
            0,
            vec![Aggregate::Sum(1), Aggregate::Sum(2), Aggregate::Count],
        )
    }

    #[test]
    fn defaults_cover_all_visible_rows_single_threaded() {
        let (engine, table) = engine(PolicyKind::Pbm, 4000);
        let result = engine
            .query(table)
            .columns(["l_flag"])
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .run()
            .unwrap();
        assert_eq!(result[&0].count, 4000);
    }

    #[test]
    fn range_clauses_accept_every_bound_shape() {
        let (engine, table) = engine(PolicyKind::Lru, 2000);
        let count = |query: Query| {
            query
                .aggregate(AggrSpec::global(vec![Aggregate::Count]))
                .run()
                .unwrap()[&0]
                .count
        };
        let base = || engine.query(table).columns(["l_flag"]);
        assert_eq!(count(base().range(..)), 2000);
        assert_eq!(count(base().range(100..300)), 200);
        assert_eq!(count(base().range(1900..)), 100);
        assert_eq!(count(base().range(..=99)), 100);
        assert_eq!(count(base().tuple_range(TupleRange::new(5, 10))), 5);
        // Ranges beyond the visible rows are clamped, inverted ranges empty.
        assert_eq!(count(base().range(1000..100_000)), 1000);
        let inverted = (Bound::Included(300u64), Bound::Excluded(100u64));
        let empty = base()
            .range(inverted)
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .run()
            .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn missing_columns_and_bad_clauses_error() {
        let (engine, table) = engine(PolicyKind::Pbm, 100);
        let no_columns = engine
            .query(table)
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .run();
        assert!(matches!(no_columns.unwrap_err(), Error::InvalidPlan(_)));

        let no_aggregate = engine.query(table).columns(["l_flag"]).run();
        assert!(matches!(no_aggregate.unwrap_err(), Error::InvalidPlan(_)));

        let zero_workers = engine
            .query(table)
            .columns(["l_flag"])
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .parallelism(0)
            .run();
        assert!(matches!(zero_workers.unwrap_err(), Error::InvalidPlan(_)));

        let unknown_column = engine
            .query(table)
            .columns(["no_such_column"])
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .run();
        assert!(matches!(
            unknown_column.unwrap_err(),
            Error::UnknownColumn { .. }
        ));
    }

    #[test]
    fn parallel_results_match_sequential() {
        for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
            let (engine, table) = engine(policy, 6000);
            let query = || {
                engine
                    .query(table)
                    .columns(["l_flag", "l_quantity", "l_price"])
                    .filter(Predicate::new(1, CompareOp::Le, 24))
                    .aggregate(q1_spec())
            };
            let sequential = query().run().unwrap();
            let parallel = query().parallelism(4).run().unwrap();
            assert_eq!(sequential, parallel, "policy {policy}");
            assert_eq!(sequential.len(), 4, "four flag groups");
            let total: u64 = sequential.values().map(|g| g.count).sum();
            assert!(total > 0 && total < 6000, "the filter removes some rows");
        }
    }

    #[test]
    fn all_policies_compute_identical_answers() {
        let mut reference: Option<AggrResult> = None;
        for policy in [
            PolicyKind::Lru,
            PolicyKind::Pbm,
            PolicyKind::Opt,
            PolicyKind::CScan,
        ] {
            let (engine, table) = engine(policy, 5000);
            let result = engine
                .query(table)
                .columns(["l_flag", "l_quantity", "l_price"])
                .range(500..4500)
                .aggregate(q1_spec())
                .parallelism(4)
                .run()
                .unwrap();
            match &reference {
                None => reference = Some(result),
                Some(expected) => assert_eq!(expected, &result, "policy {policy} diverged"),
            }
        }
    }

    #[test]
    fn rows_materializes_the_filtered_projection() {
        let (engine, table) = engine(PolicyKind::CScan, 3000);
        let rows = engine
            .query(table)
            .columns(["l_flag", "l_quantity"])
            .filter(Predicate::new(0, CompareOp::Eq, 2))
            .in_order()
            .rows()
            .unwrap();
        assert_eq!(rows.len(), 750, "one of four cyclic flag values");
        assert!(rows.iter().all(|row| row[0] == 2));
        // In-order delivery holds even under Cooperative Scans.
        let unfiltered = engine
            .query(table)
            .columns(["l_flag"])
            .in_order()
            .rows()
            .unwrap();
        let expected: Vec<i64> = (0..3000).map(|i| i % 4).collect();
        assert_eq!(
            unfiltered.iter().map(|r| r[0]).collect::<Vec<_>>(),
            expected
        );
    }

    #[test]
    fn equation_1_partitioning_covers_range_without_overlap() {
        let parts = TupleRange::new(0, 1000).split_even(8);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts[0], TupleRange::new(0, 125));
        assert_eq!(parts[7], TupleRange::new(875, 1000));
        let covered: u64 = parts.iter().map(TupleRange::len).sum();
        assert_eq!(covered, 1000);
    }

    #[test]
    fn single_threaded_fallback_for_tiny_ranges() {
        let (engine, table) = engine(PolicyKind::Pbm, 100);
        let result = engine
            .query(table)
            .columns(["l_flag", "l_quantity", "l_price"])
            .range(0..3)
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .parallelism(8)
            .run()
            .unwrap();
        assert_eq!(result[&0].count, 3);
    }
}
