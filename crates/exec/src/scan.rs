//! The traditional in-order `Scan` operator.
//!
//! A `Scan` reads its RID ranges in order, requesting pages from the shared
//! buffer pool as it crosses page boundaries, merging the table's PDT on the
//! fly and periodically reporting its position and speed to the buffer
//! manager (which is what PBM exploits). Data is delivered strictly in RID
//! order, so the operator can sit under order-sensitive plans.

use std::collections::HashMap;
use std::sync::Arc;

use scanshare_common::{RangeList, Result, ScanId, Sid, TableId, TupleRange};
use scanshare_pdt::merge::{MergeCursor, StableSource};
use scanshare_pdt::pdt::Pdt;
use scanshare_storage::datagen::Value;
use scanshare_storage::layout::TableLayout;
use scanshare_storage::snapshot::Snapshot;
use scanshare_storage::storage::PageData;

use crate::batch::Batch;
use crate::engine::Engine;
use crate::ops::BatchSource;

/// How many tuples are produced per batch.
pub const BATCH_SIZE: usize = 1024;
/// How often (in tuples) the scan reports its position to the buffer manager.
const REPORT_INTERVAL: u64 = 4096;

/// A stable-tuple source that fetches pages through the engine's buffer pool
/// and accounts I/O and CPU on the engine's virtual clock.
pub(crate) struct PooledSource {
    engine: Arc<Engine>,
    layout: Arc<TableLayout>,
    snapshot: Arc<Snapshot>,
    scan_id: Option<ScanId>,
    /// Last page materialized per column.
    cached: HashMap<usize, PageData>,
}

impl PooledSource {
    pub(crate) fn new(
        engine: Arc<Engine>,
        layout: Arc<TableLayout>,
        snapshot: Arc<Snapshot>,
        scan_id: Option<ScanId>,
    ) -> Self {
        Self { engine, layout, snapshot, scan_id, cached: HashMap::new() }
    }
}

impl StableSource for PooledSource {
    fn stable_tuples(&self) -> u64 {
        self.snapshot.stable_tuples()
    }

    fn value(&mut self, col: usize, sid: u64) -> Value {
        if let Some(page) = self.cached.get(&col) {
            if let Some(v) = page.value(sid) {
                return v;
            }
        }
        let page_index = self.layout.page_index_for_sid(col, sid);
        // Request the page through the buffer pool (if one is configured);
        // a miss is charged to the simulated I/O device.
        if let (Some(pool), Some(page_id)) =
            (self.engine.pool(), self.snapshot.page(col, page_index))
        {
            let outcome = pool.lock().request_page(page_id, self.scan_id, self.engine.now());
            if let Ok(outcome) = outcome {
                if !outcome.is_hit() {
                    self.engine.charge_io(self.engine.config().page_size_bytes);
                }
            }
        }
        let data = self
            .engine
            .storage()
            .read_page(&self.layout, &self.snapshot, col, page_index)
            .expect("page exists for a valid SID");
        let v = data.value(sid).expect("page covers sid");
        self.cached.insert(col, data);
        v
    }
}

/// The in-order scan operator.
pub struct ScanOperator {
    engine: Arc<Engine>,
    pdt: Pdt,
    source: PooledSource,
    columns: Vec<usize>,
    /// Remaining RID ranges to produce, in order.
    pending: Vec<TupleRange>,
    /// Position within the first pending range.
    next_rid: u64,
    scan_id: Option<ScanId>,
    tuples_produced: u64,
    last_report: u64,
    finished: bool,
}

impl ScanOperator {
    /// Creates a scan over `columns` of `table` covering the visible rows in
    /// `rid_range`.
    pub fn new(
        engine: Arc<Engine>,
        table: TableId,
        columns: Vec<usize>,
        rid_range: TupleRange,
    ) -> Result<Self> {
        let layout = engine.storage().layout(table)?;
        let snapshot = engine.storage().master_snapshot(table)?;
        let pdt = engine.pdt(table)?.read().clone();
        let visible = pdt.visible_count(snapshot.stable_tuples());
        let rid_range = rid_range.intersect(&TupleRange::new(0, visible));

        // Convert the RID range to SID ranges and register the page plan with
        // the buffer manager (RegisterScan).
        let scan_id = if let Some(pool) = engine.pool() {
            let sid_ranges = rid_range_to_sid_ranges(&pdt, &rid_range, snapshot.stable_tuples());
            let plan = layout.scan_page_plan(&snapshot, &columns, &sid_ranges);
            Some(pool.lock().register_scan(&plan, engine.now()))
        } else {
            None
        };

        let source =
            PooledSource::new(Arc::clone(&engine), layout, Arc::clone(&snapshot), scan_id);
        Ok(Self {
            engine,
            pdt,
            source,
            columns,
            pending: if rid_range.is_empty() { vec![] } else { vec![rid_range] },
            next_rid: rid_range.start,
            scan_id,
            tuples_produced: 0,
            last_report: 0,
            finished: rid_range.is_empty(),
        })
    }

    fn report_progress(&mut self) {
        if let (Some(pool), Some(scan_id)) = (self.engine.pool(), self.scan_id) {
            pool.lock().report_scan_position(scan_id, self.tuples_produced, self.engine.now());
        }
        self.last_report = self.tuples_produced;
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if let (Some(pool), Some(scan_id)) = (self.engine.pool(), self.scan_id) {
            pool.lock().unregister_scan(scan_id, self.engine.now());
        }
    }
}

impl BatchSource for ScanOperator {
    fn width(&self) -> usize {
        self.columns.len()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        loop {
            let Some(range) = self.pending.first().copied() else {
                self.finish();
                return Ok(None);
            };
            if self.next_rid >= range.end {
                self.pending.remove(0);
                if let Some(next) = self.pending.first() {
                    self.next_rid = next.start;
                }
                continue;
            }
            let end = (self.next_rid + BATCH_SIZE as u64).min(range.end);
            let mut cursor = MergeCursor::new(
                &self.pdt,
                &mut self.source,
                self.columns.clone(),
                TupleRange::new(self.next_rid, end),
            );
            let rows = cursor.collect_rows();
            drop(cursor);
            let produced = rows.len() as u64;
            self.next_rid = end;
            self.tuples_produced += produced;
            self.engine.charge_cpu(produced);
            if self.tuples_produced - self.last_report >= REPORT_INTERVAL {
                self.report_progress();
            }
            if rows.is_empty() {
                continue;
            }
            return Ok(Some(Batch::from_rows(self.columns.len(), &rows)));
        }
    }
}

impl Drop for ScanOperator {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Converts a visible-row (RID) range into the stable (SID) ranges that must
/// be read from storage, using the PDT's positional translation.
pub(crate) fn rid_range_to_sid_ranges(
    pdt: &Pdt,
    rid_range: &TupleRange,
    stable_tuples: u64,
) -> RangeList {
    if rid_range.is_empty() {
        return RangeList::new();
    }
    let lo = pdt.rid_to_sid(scanshare_common::Rid::new(rid_range.start), stable_tuples);
    let hi = pdt.rid_to_sid(scanshare_common::Rid::new(rid_range.end - 1), stable_tuples);
    let hi_sid = (hi.raw() + 1).min(stable_tuples);
    RangeList::single(lo.raw().min(stable_tuples), hi_sid.max(lo.raw()))
}

/// Translates a chunk's SID range into the widest RID range it can produce,
/// using `SIDtoRIDlow` for the lower bound and `SIDtoRIDhigh` for the upper
/// bound (Section 2.1).
pub(crate) fn sid_range_to_rid_range(pdt: &Pdt, sid_range: &TupleRange) -> TupleRange {
    if sid_range.is_empty() {
        return TupleRange::new(0, 0);
    }
    let lo = pdt.sid_to_rid_low(Sid::new(sid_range.start)).raw();
    let hi = pdt.sid_to_rid_high(Sid::new(sid_range.end - 1)).raw() + 1;
    TupleRange::new(lo, hi.max(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::{PolicyKind, ScanShareConfig};
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::datagen::DataGen;
    use scanshare_storage::storage::Storage;
    use scanshare_storage::table::TableSpec;

    fn engine(policy: PolicyKind, tuples: u64) -> (Arc<Engine>, TableId) {
        let storage = Storage::with_seed(1024, 500, 5);
        let spec = TableSpec::new(
            "t",
            vec![
                ColumnSpec::with_width("k", ColumnType::Int64, 8.0),
                ColumnSpec::with_width("v", ColumnType::Int64, 4.0),
            ],
            tuples,
        );
        let table = storage
            .create_table_with_data(
                spec,
                vec![DataGen::Sequential { start: 0, step: 1 }, DataGen::Constant(3)],
            )
            .unwrap();
        let config = ScanShareConfig {
            page_size_bytes: 1024,
            chunk_tuples: 500,
            buffer_pool_bytes: 32 * 1024,
            policy,
            ..Default::default()
        };
        (Engine::new(storage, config).unwrap(), table)
    }

    fn collect(op: &mut dyn BatchSource) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        while let Some(batch) = op.next_batch().unwrap() {
            rows.extend(batch.to_rows());
        }
        rows
    }

    #[test]
    fn scan_returns_all_rows_in_order() {
        let (engine, table) = engine(PolicyKind::Lru, 3000);
        let mut op =
            ScanOperator::new(Arc::clone(&engine), table, vec![0, 1], TupleRange::new(0, 3000))
                .unwrap();
        let rows = collect(&mut op);
        assert_eq!(rows.len(), 3000);
        assert_eq!(rows[0], vec![0, 3]);
        assert_eq!(rows[2999], vec![2999, 3]);
        // In-order delivery.
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], i as i64);
        }
        let stats = engine.buffer_stats();
        assert!(stats.misses > 0);
        assert!(stats.io_bytes > 0);
    }

    #[test]
    fn scan_respects_rid_range_and_projection() {
        let (engine, table) = engine(PolicyKind::Pbm, 2000);
        let mut op =
            ScanOperator::new(Arc::clone(&engine), table, vec![0], TupleRange::new(100, 110))
                .unwrap();
        let rows = collect(&mut op);
        assert_eq!(rows, (100..110).map(|i| vec![i as i64]).collect::<Vec<_>>());
        // Out-of-bounds ranges are clamped.
        let mut op =
            ScanOperator::new(Arc::clone(&engine), table, vec![0], TupleRange::new(1990, 99_999))
                .unwrap();
        assert_eq!(collect(&mut op).len(), 10);
    }

    #[test]
    fn scan_sees_pdt_updates() {
        let (engine, table) = engine(PolicyKind::Pbm, 1000);
        engine.delete_row(table, 0).unwrap();
        engine.insert_row(table, 0, vec![-1, -2]).unwrap();
        engine.update_value(table, 10, 1, 99).unwrap();
        let mut op =
            ScanOperator::new(Arc::clone(&engine), table, vec![0, 1], TupleRange::new(0, 20))
                .unwrap();
        let rows = collect(&mut op);
        assert_eq!(rows[0], vec![-1, -2]);
        assert_eq!(rows[1], vec![1, 3]);
        assert_eq!(rows[10], vec![10, 99]);
    }

    #[test]
    fn scan_isolation_from_later_updates() {
        let (engine, table) = engine(PolicyKind::Lru, 100);
        let mut op =
            ScanOperator::new(Arc::clone(&engine), table, vec![0], TupleRange::new(0, 100))
                .unwrap();
        // Updates applied after the operator was created are not visible to it.
        engine.delete_row(table, 0).unwrap();
        let rows = collect(&mut op);
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[0], vec![0]);
    }

    #[test]
    fn repeated_scans_hit_the_buffer_pool() {
        let (engine, table) = engine(PolicyKind::Lru, 1000);
        let run = |engine: &Arc<Engine>| {
            let mut op =
                ScanOperator::new(Arc::clone(engine), table, vec![0, 1], TupleRange::new(0, 1000))
                    .unwrap();
            collect(&mut op).len()
        };
        assert_eq!(run(&engine), 1000);
        let cold = engine.buffer_stats();
        assert_eq!(run(&engine), 1000);
        let warm = engine.buffer_stats();
        // Table is 8+4 bytes/tuple * 1000 = 12 pages < 32 KiB pool: the second
        // scan is served entirely from the buffer pool.
        assert_eq!(warm.io_bytes, cold.io_bytes);
        assert!(warm.hits > cold.hits);
    }

    #[test]
    fn rid_sid_translation_helpers() {
        let mut pdt = Pdt::new(1);
        pdt.delete(scanshare_common::Rid::new(0), 100).unwrap();
        pdt.insert(scanshare_common::Rid::new(10), vec![1], 100).unwrap();
        // Visible rows 0..99 map to stable tuples 1..99 (tuple 0 is deleted,
        // the inserted row is anchored inside the range).
        let sids = rid_range_to_sid_ranges(&pdt, &TupleRange::new(0, 99), 100);
        assert_eq!(sids.ranges(), &[TupleRange::new(1, 99)]);
        let rids = sid_range_to_rid_range(&pdt, &TupleRange::new(0, 100));
        assert_eq!(rids, TupleRange::new(0, 100));
        assert!(rid_range_to_sid_ranges(&pdt, &TupleRange::new(5, 5), 100).is_empty());
        assert!(sid_range_to_rid_range(&pdt, &TupleRange::new(5, 5)).is_empty());
    }
}
