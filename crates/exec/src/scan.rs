//! The unified scan operator.
//!
//! One operator drives every
//! [`ScanBackend`](scanshare_core::backend::ScanBackend): it registers its
//! stable (SID) ranges, asks the backend for the next range to produce
//! ([`next_chunk`](scanshare_core::backend::ScanBackend::next_chunk)) and
//! merges the table's PDT on the fly. For
//! pooled backends the delivered ranges are sequential and page requests are
//! issued (and progress reported) as the merge crosses page boundaries —
//! which is what PBM exploits. For Cooperative Scans the backend hands out
//! ABM-chosen chunks, generally **out of table order**; per delivered chunk
//! the operator:
//!
//! 1. translates the chunk's SID range into the widest RID range it can
//!    produce (`SIDtoRIDlow` / `SIDtoRIDhigh`, Section 2.1),
//! 2. trims that RID range against the rows it has already produced (ranges
//!    of neighbouring chunks may overlap after translation),
//! 3. re-initializes PDT merging at the trimmed position and produces the
//!    merged rows.
//!
//! Rows that exist only in the PDT (inserts anchored past the last stable
//! tuple) are produced after the backend reports completion.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use scanshare_common::{Error, RangeList, Result, ScanId, TableId, TupleRange};
use scanshare_core::backend::{ScanRequest, ScanStep};
use scanshare_pdt::merge::{MergeCursor, StableSource};
use scanshare_pdt::pdt::Pdt;
use scanshare_pdt::translate::{rid_range_to_sid_ranges, sid_range_to_rid_range};
use scanshare_storage::datagen::Value;
use scanshare_storage::layout::TableLayout;
use scanshare_storage::snapshot::Snapshot;
use scanshare_storage::storage::PageData;
use scanshare_storage::zone::ZonePredicate;

use crate::batch::Batch;
use crate::engine::Engine;
use crate::ops::BatchSource;
use crate::txn::TablePin;

/// How many tuples are produced per batch.
pub const BATCH_SIZE: usize = 1024;
/// How often (in tuples) the scan reports its position to the buffer manager.
const REPORT_INTERVAL: u64 = 4096;

/// A stable-tuple source that fetches pages through the engine's scan
/// backend, which accounts I/O on the engine's virtual clock.
pub(crate) struct PooledSource {
    engine: Arc<Engine>,
    layout: Arc<TableLayout>,
    snapshot: Arc<Snapshot>,
    scan_id: Option<ScanId>,
    /// Last page materialized per column.
    cached: HashMap<usize, PageData>,
    /// First error encountered while fetching stable data.
    /// [`StableSource::value`] is infallible, so device and storage faults
    /// are parked here and re-raised by the operator after the merge step
    /// instead of panicking mid-merge.
    error: Option<Error>,
}

impl PooledSource {
    pub(crate) fn new(
        engine: Arc<Engine>,
        layout: Arc<TableLayout>,
        snapshot: Arc<Snapshot>,
        scan_id: Option<ScanId>,
    ) -> Self {
        Self {
            engine,
            layout,
            snapshot,
            scan_id,
            cached: HashMap::new(),
            error: None,
        }
    }

    /// Takes the first parked fault, if any (see the `error` field).
    fn take_error(&mut self) -> Option<Error> {
        self.error.take()
    }
}

impl StableSource for PooledSource {
    fn stable_tuples(&self) -> u64 {
        self.snapshot.stable_tuples()
    }

    fn value(&mut self, col: usize, sid: u64) -> Value {
        if self.error.is_some() {
            // A fault is already parked: produce placeholders until the
            // operator notices and aborts the batch.
            return 0;
        }
        if let Some(page) = self.cached.get(&col) {
            if let Some(v) = page.value(sid) {
                return v;
            }
        }
        let page_index = self.layout.page_index_for_sid(col, sid);
        // Request the page through the backend; pooled backends count the
        // hit/miss and charge misses to the I/O device, the ABM already
        // loaded and accounted the chunk. Device faults park here and
        // surface as the batch's error.
        if let (Some(scan_id), Some(page_id)) = (self.scan_id, self.snapshot.page(col, page_index))
        {
            if let Err(err) = self.engine.backend().request_page(scan_id, page_id) {
                self.error = Some(err);
                return 0;
            }
        }
        let data =
            match self
                .engine
                .storage()
                .read_page(&self.layout, &self.snapshot, col, page_index)
            {
                Ok(data) => data,
                Err(err) => {
                    self.error = Some(err);
                    return 0;
                }
            };
        let Some(v) = data.value(sid) else {
            self.error = Some(Error::internal(format!(
                "page {page_index} of column {col} does not cover sid {sid}"
            )));
            return 0;
        };
        self.cached.insert(col, data);
        v
    }
}

/// The scan operator: produces the visible rows of its RID range in batches,
/// in whatever order its backend schedules the underlying stable data.
pub struct ScanOperator {
    engine: Arc<Engine>,
    pdt: Pdt,
    source: PooledSource,
    columns: Vec<usize>,
    scan_id: Option<ScanId>,
    /// RID ranges requested by the plan.
    requested: RangeList,
    /// RID ranges already produced (chunk translations may overlap).
    produced: RangeList,
    /// RID ranges of the delivered chunk currently being produced.
    window: VecDeque<TupleRange>,
    /// The backend has delivered every registered range.
    backend_done: bool,
    /// PDT-only rows (past the stable data) have been scheduled.
    drained: bool,
    tuples_produced: u64,
    last_report: u64,
    finished: bool,
}

impl ScanOperator {
    /// Creates a scan over `columns` of `table` covering the visible rows in
    /// `rid_range`, pinning the table's current published state. `in_order`
    /// forces in-order delivery on backends that would otherwise reorder
    /// (pooled backends always deliver in order).
    pub fn new(
        engine: Arc<Engine>,
        table: TableId,
        columns: Vec<usize>,
        rid_range: TupleRange,
        in_order: bool,
    ) -> Result<Self> {
        let pin = engine.table_pin(table)?;
        Self::with_pin(engine, pin, columns, rid_range, in_order, None)
    }

    /// Creates a scan reading through an explicit [`TablePin`]: the
    /// operator's whole lifetime — positional translation, PDT merging,
    /// backend registration — uses exactly the pinned `(Snapshot, PdtStack)`
    /// pair, so concurrent commits and checkpoints are invisible to it.
    ///
    /// `zone_pred` enables data skipping: stable chunks whose zone metadata
    /// proves no row can satisfy the predicate are removed from the scan's
    /// interest before the backend registration, so the buffer manager never
    /// sees a page request, an ABM chunk interest or a PBM consumption
    /// prediction for them. Pruning only happens when the pin carries **no**
    /// differential updates — RID and SID then coincide and no PDT modify
    /// can turn a base-failing row into a match — and the caller must apply
    /// the same predicate row-level (zone metadata is conservative: kept
    /// chunks may still hold non-matching rows).
    pub fn with_pin(
        engine: Arc<Engine>,
        pin: TablePin,
        columns: Vec<usize>,
        rid_range: TupleRange,
        in_order: bool,
        zone_pred: Option<ZonePredicate>,
    ) -> Result<Self> {
        let table = pin.table;
        let layout = engine.storage().layout(table)?;
        let snapshot = Arc::clone(&pin.snapshot);
        let pdt = pin.flatten()?;
        let visible = pdt.visible_count(snapshot.stable_tuples());
        let rid_range = rid_range.intersect(&TupleRange::new(0, visible));

        // Convert the RID range to SID ranges and register the plan with the
        // backend (RegisterScan / RegisterCScan). A range that touches no
        // stable data (an empty range, or pure PDT inserts) needs no backend.
        let sid_ranges = rid_range_to_sid_ranges(&pdt, &rid_range, snapshot.stable_tuples());
        let mut requested = if rid_range.is_empty() {
            RangeList::new()
        } else {
            RangeList::from_ranges([rid_range])
        };
        let sid_ranges = match zone_pred {
            Some(pred) if pdt.is_empty() && !sid_ranges.is_empty() => {
                let (pruned, skipped) =
                    engine
                        .storage()
                        .prune_sid_ranges(&snapshot, &pred, &sid_ranges);
                if skipped > 0 {
                    // Counted even when the whole range is pruned and the
                    // scan never registers.
                    engine.backend().record_pruned(skipped);
                    // With an empty PDT the requested RID ranges are the SID
                    // ranges: dropping the pruned chunks here keeps the
                    // drain phase from reading them through the page path.
                    requested = pruned.clone();
                }
                pruned
            }
            _ => sid_ranges,
        };
        let scan_id = if rid_range.is_empty() || sid_ranges.is_empty() {
            None
        } else {
            Some(engine.backend().register_scan(ScanRequest {
                table,
                snapshot: Arc::clone(&snapshot),
                layout: Arc::clone(&layout),
                columns: columns.clone(),
                ranges: sid_ranges,
                in_order,
            })?)
        };

        let source = PooledSource::new(Arc::clone(&engine), layout, Arc::clone(&snapshot), scan_id);
        Ok(Self {
            engine,
            pdt,
            source,
            columns,
            scan_id,
            requested,
            produced: RangeList::new(),
            window: VecDeque::new(),
            backend_done: scan_id.is_none(),
            drained: false,
            tuples_produced: 0,
            last_report: 0,
            finished: false,
        })
    }

    /// The backend scan id of this operator, if stable data is being read.
    pub fn scan_id(&self) -> Option<ScanId> {
        self.scan_id
    }

    fn report_progress(&mut self) {
        if let Some(scan_id) = self.scan_id {
            self.engine
                .backend()
                .report_position(scan_id, self.tuples_produced);
        }
        self.last_report = self.tuples_produced;
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if let Some(scan_id) = self.scan_id {
            self.engine.backend().finish_scan(scan_id);
        }
    }

    /// Produces up to [`BATCH_SIZE`] rows from the front of the current
    /// window (re-initializing the PDT merge at that position). A device or
    /// storage fault parked by the source mid-merge aborts the batch with
    /// the typed error.
    fn produce_from_window(&mut self) -> Result<Vec<Vec<Value>>> {
        let range = self.window.front().copied().expect("window is non-empty");
        let end = (range.start + BATCH_SIZE as u64).min(range.end);
        let piece = TupleRange::new(range.start, end);
        let mut cursor = MergeCursor::new(&self.pdt, &mut self.source, self.columns.clone(), piece);
        let rows = cursor.collect_rows();
        drop(cursor);
        if let Some(err) = self.source.take_error() {
            return Err(err);
        }
        if end >= range.end {
            self.window.pop_front();
        } else {
            self.window.front_mut().expect("checked above").start = end;
        }
        self.produced.add(piece);
        let produced = rows.len() as u64;
        self.tuples_produced += produced;
        self.engine.charge_cpu(produced);
        if self.tuples_produced - self.last_report >= REPORT_INTERVAL {
            self.report_progress();
        }
        Ok(rows)
    }

    /// Translates a delivered chunk into the RID ranges still to produce and
    /// queues them on the window.
    fn queue_chunk(&mut self, chunk_sids: TupleRange) {
        let rid_window = sid_range_to_rid_range(&self.pdt, &chunk_sids);
        let fresh = RangeList::from_ranges([rid_window])
            .intersect(&self.requested)
            .subtract(&self.produced);
        self.window.extend(fresh.ranges().iter().copied());
    }
}

impl BatchSource for ScanOperator {
    fn width(&self) -> usize {
        self.columns.len()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        loop {
            if self.finished {
                return Ok(None);
            }
            if !self.window.is_empty() {
                let rows = self.produce_from_window()?;
                // A batch boundary is a compute point: let the backend top
                // up its asynchronous prefetch window so the next pages'
                // transfers overlap with this batch's downstream processing.
                self.engine.backend().drive_prefetch();
                if rows.is_empty() {
                    continue;
                }
                return Ok(Some(Batch::from_rows(self.columns.len(), &rows)));
            }
            if !self.backend_done {
                let scan_id = self.scan_id.expect("backend_done is set when unregistered");
                match self.engine.backend().next_chunk(scan_id)? {
                    ScanStep::Deliver(chunk_sids) => self.queue_chunk(chunk_sids),
                    ScanStep::Finished => self.backend_done = true,
                }
                continue;
            }
            if !self.drained {
                // Rows that exist only in the PDT (inserts anchored past the
                // last stable tuple) are not covered by any chunk window.
                self.drained = true;
                let rest = self.requested.subtract(&self.produced);
                self.window.extend(rest.ranges().iter().copied());
                continue;
            }
            self.finish();
            return Ok(None);
        }
    }
}

impl Drop for ScanOperator {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::{PolicyKind, ScanShareConfig};
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::datagen::DataGen;
    use scanshare_storage::storage::Storage;
    use scanshare_storage::table::TableSpec;

    fn engine_with(
        policy: PolicyKind,
        buffer_bytes: u64,
        tuples: u64,
        fill: Value,
    ) -> (Arc<Engine>, TableId) {
        let storage = Storage::with_seed(1024, 500, 5);
        let spec = TableSpec::new(
            "t",
            vec![
                ColumnSpec::with_width("k", ColumnType::Int64, 8.0),
                ColumnSpec::with_width("v", ColumnType::Int64, 4.0),
            ],
            tuples,
        );
        let table = storage
            .create_table_with_data(
                spec,
                vec![
                    DataGen::Sequential { start: 0, step: 1 },
                    DataGen::Constant(fill),
                ],
            )
            .unwrap();
        let config = ScanShareConfig {
            page_size_bytes: 1024,
            chunk_tuples: 500,
            buffer_pool_bytes: buffer_bytes,
            policy,
            ..Default::default()
        };
        (Engine::new(storage, config).unwrap(), table)
    }

    fn engine(policy: PolicyKind, tuples: u64) -> (Arc<Engine>, TableId) {
        engine_with(policy, 32 * 1024, tuples, 3)
    }

    fn collect(op: &mut dyn BatchSource) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        while let Some(batch) = op.next_batch().unwrap() {
            rows.extend(batch.to_rows());
        }
        rows
    }

    fn collect_sorted(op: &mut dyn BatchSource) -> Vec<Vec<Value>> {
        let mut rows = collect(op);
        rows.sort();
        rows
    }

    #[test]
    fn scan_returns_all_rows_in_order() {
        let (engine, table) = engine(PolicyKind::Lru, 3000);
        let mut op = ScanOperator::new(
            Arc::clone(&engine),
            table,
            vec![0, 1],
            TupleRange::new(0, 3000),
            false,
        )
        .unwrap();
        let rows = collect(&mut op);
        assert_eq!(rows.len(), 3000);
        assert_eq!(rows[0], vec![0, 3]);
        assert_eq!(rows[2999], vec![2999, 3]);
        // In-order delivery.
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], i as i64);
        }
        let stats = engine.buffer_stats();
        assert!(stats.misses > 0);
        assert!(stats.io_bytes > 0);
    }

    #[test]
    fn scan_respects_rid_range_and_projection() {
        let (engine, table) = engine(PolicyKind::Pbm, 2000);
        let mut op = ScanOperator::new(
            Arc::clone(&engine),
            table,
            vec![0],
            TupleRange::new(100, 110),
            false,
        )
        .unwrap();
        let rows = collect(&mut op);
        assert_eq!(rows, (100..110).map(|i| vec![i as i64]).collect::<Vec<_>>());
        // Out-of-bounds ranges are clamped.
        let mut op = ScanOperator::new(
            Arc::clone(&engine),
            table,
            vec![0],
            TupleRange::new(1990, 99_999),
            false,
        )
        .unwrap();
        assert_eq!(collect(&mut op).len(), 10);
        // Empty ranges produce an empty scan without touching the backend.
        let mut op = ScanOperator::new(
            Arc::clone(&engine),
            table,
            vec![0],
            TupleRange::new(5, 5),
            false,
        )
        .unwrap();
        assert!(op.scan_id().is_none());
        assert!(collect(&mut op).is_empty());
    }

    #[test]
    fn scan_sees_pdt_updates() {
        for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
            let (engine, table) = engine(policy, 1000);
            engine.delete_row(table, 0).unwrap();
            engine.insert_row(table, 0, vec![-1, -2]).unwrap();
            engine.update_value(table, 10, 1, 99).unwrap();
            let mut op = ScanOperator::new(
                Arc::clone(&engine),
                table,
                vec![0, 1],
                TupleRange::new(0, 20),
                true,
            )
            .unwrap();
            let rows = collect(&mut op);
            assert_eq!(rows[0], vec![-1, -2], "{policy}");
            assert_eq!(rows[1], vec![1, 3], "{policy}");
            assert_eq!(rows[10], vec![10, 99], "{policy}");
        }
    }

    #[test]
    fn scan_produces_trailing_inserts_past_the_stable_data() {
        for policy in [PolicyKind::Lru, PolicyKind::CScan] {
            let (engine, table) = engine(policy, 1000);
            engine.insert_row(table, 1000, vec![7_000, 7_001]).unwrap();
            engine.insert_row(table, 1001, vec![8_000, 8_001]).unwrap();
            let visible = engine.visible_rows(table).unwrap();
            assert_eq!(visible, 1002);
            let mut op = ScanOperator::new(
                Arc::clone(&engine),
                table,
                vec![0, 1],
                TupleRange::new(0, visible),
                false,
            )
            .unwrap();
            let rows = collect_sorted(&mut op);
            assert_eq!(rows.len(), 1002, "{policy}");
            assert!(rows.contains(&vec![7_000, 7_001]), "{policy}");
            assert!(rows.contains(&vec![8_000, 8_001]), "{policy}");
        }
    }

    #[test]
    fn scan_isolation_from_later_updates() {
        let (engine, table) = engine(PolicyKind::Lru, 100);
        let mut op = ScanOperator::new(
            Arc::clone(&engine),
            table,
            vec![0],
            TupleRange::new(0, 100),
            false,
        )
        .unwrap();
        // Updates applied after the operator was created are not visible to it.
        engine.delete_row(table, 0).unwrap();
        let rows = collect(&mut op);
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[0], vec![0]);
    }

    #[test]
    fn repeated_scans_hit_the_buffer_pool() {
        let (engine, table) = engine(PolicyKind::Lru, 1000);
        let run = |engine: &Arc<Engine>| {
            let mut op = ScanOperator::new(
                Arc::clone(engine),
                table,
                vec![0, 1],
                TupleRange::new(0, 1000),
                false,
            )
            .unwrap();
            collect(&mut op).len()
        };
        assert_eq!(run(&engine), 1000);
        let cold = engine.buffer_stats();
        assert_eq!(run(&engine), 1000);
        let warm = engine.buffer_stats();
        // Table is 8+4 bytes/tuple * 1000 = 12 pages < 32 KiB pool: the second
        // scan is served entirely from the buffer pool.
        assert_eq!(warm.io_bytes, cold.io_bytes);
        assert!(warm.hits > cold.hits);
    }

    // ------------------------------------------------------------------
    // Cooperative Scans (out-of-order chunk delivery)
    // ------------------------------------------------------------------

    #[test]
    fn cscan_produces_every_row_exactly_once() {
        let (engine, table) = engine_with(PolicyKind::CScan, 1 << 20, 3000, 7);
        let mut op = ScanOperator::new(
            Arc::clone(&engine),
            table,
            vec![0, 1],
            TupleRange::new(0, 3000),
            false,
        )
        .unwrap();
        let rows = collect_sorted(&mut op);
        assert_eq!(rows.len(), 3000);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], i as i64);
            assert_eq!(row[1], 7);
        }
        assert!(engine.buffer_stats().io_bytes > 0);
    }

    #[test]
    fn cscan_sees_pdt_updates_despite_out_of_order_delivery() {
        let (engine, table) = engine_with(PolicyKind::CScan, 1 << 20, 2000, 7);
        engine.delete_row(table, 100).unwrap();
        engine.insert_row(table, 0, vec![-5, -5]).unwrap();
        engine.update_value(table, 1999, 1, 42).unwrap();
        let visible = engine.visible_rows(table).unwrap();
        assert_eq!(visible, 2000);
        let mut op = ScanOperator::new(
            Arc::clone(&engine),
            table,
            vec![0, 1],
            TupleRange::new(0, visible),
            false,
        )
        .unwrap();
        let rows = collect_sorted(&mut op);
        assert_eq!(rows.len(), 2000);
        assert!(rows.contains(&vec![-5, -5]));
        assert!(
            !rows.iter().any(|r| r[0] == 100),
            "deleted row must not appear"
        );
        assert!(rows.contains(&vec![1999, 42]));
    }

    #[test]
    fn cscan_with_small_buffer_still_completes() {
        // Each chunk is ~6 pages; give the ABM room for only two chunks.
        let (engine, table) = engine_with(PolicyKind::CScan, 12 * 1024, 5000, 7);
        let mut op = ScanOperator::new(
            Arc::clone(&engine),
            table,
            vec![0, 1],
            TupleRange::new(0, 5000),
            false,
        )
        .unwrap();
        let rows = collect_sorted(&mut op);
        assert_eq!(rows.len(), 5000);
        assert!(engine.buffer_stats().evictions > 0);
    }

    #[test]
    fn two_concurrent_cscans_share_io() {
        let (engine, table) = engine_with(PolicyKind::CScan, 1 << 20, 4000, 7);
        let mut a = ScanOperator::new(
            Arc::clone(&engine),
            table,
            vec![0, 1],
            TupleRange::new(0, 4000),
            false,
        )
        .unwrap();
        let mut b = ScanOperator::new(
            Arc::clone(&engine),
            table,
            vec![0, 1],
            TupleRange::new(0, 4000),
            false,
        )
        .unwrap();
        // Interleave the two scans so they run "concurrently".
        let mut rows_a = Vec::new();
        let mut rows_b = Vec::new();
        loop {
            let batch_a = a.next_batch().unwrap();
            let batch_b = b.next_batch().unwrap();
            if let Some(batch) = &batch_a {
                rows_a.extend(batch.to_rows());
            }
            if let Some(batch) = &batch_b {
                rows_b.extend(batch.to_rows());
            }
            if batch_a.is_none() && batch_b.is_none() {
                break;
            }
        }
        assert_eq!(rows_a.len(), 4000);
        assert_eq!(rows_b.len(), 4000);
        // The table occupies 32 pages (column k, 8 B/tuple) + 16 pages
        // (column v, 4 B/tuple) = 48 pages. Two cooperative scans sharing
        // chunks read it exactly once instead of twice.
        let io = engine.buffer_stats().io_bytes;
        assert_eq!(
            io,
            48 * 1024,
            "two cooperative scans read the table exactly once"
        );
    }

    #[test]
    fn in_order_cscan_delivers_rows_in_rid_order() {
        let (engine, table) = engine_with(PolicyKind::CScan, 1 << 20, 2000, 7);
        let mut op = ScanOperator::new(
            Arc::clone(&engine),
            table,
            vec![0],
            TupleRange::new(0, 2000),
            true,
        )
        .unwrap();
        let mut last = -1;
        while let Some(batch) = op.next_batch().unwrap() {
            for &v in batch.column(0) {
                assert!(v > last, "in-order CScan must deliver ascending keys");
                last = v;
            }
        }
        assert_eq!(last, 1999);
    }

    #[test]
    fn zone_pruning_skips_chunks_and_keeps_results_exact() {
        use crate::ops::{AggrSpec, Aggregate, CompareOp, Predicate};
        for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
            // Column k is Sequential: chunk c holds exactly [500c, 500c+500).
            let run = |filtered: bool| {
                let (engine, table) = engine(policy, 3000);
                let mut query = engine
                    .query(table)
                    .columns(["k", "v"])
                    .aggregate(AggrSpec::global(vec![Aggregate::Count, Aggregate::Sum(0)]));
                if filtered {
                    query = query.filter(Predicate::new(0, CompareOp::Lt, 500));
                }
                let result = query.run().unwrap();
                (result[&0].clone(), engine.buffer_stats())
            };
            let (full, full_stats) = run(false);
            let (sel, sel_stats) = run(true);
            assert_eq!(full.count, 3000, "{policy}");
            assert_eq!(sel.count, 500, "{policy}");
            assert_eq!(sel.accumulators[1], (0..500).sum::<i64>(), "{policy}");
            assert_eq!(full_stats.pruned_tuples, 0, "{policy}");
            assert_eq!(
                sel_stats.pruned_tuples, 2500,
                "{policy}: five of six chunks pruned"
            );
            assert!(
                sel_stats.io_bytes * 5 <= full_stats.io_bytes,
                "{policy}: pruning must cut I/O ~6x ({} vs {})",
                sel_stats.io_bytes,
                full_stats.io_bytes
            );
        }
    }

    #[test]
    fn zone_pruning_is_disabled_by_config_and_by_pending_updates() {
        use crate::ops::{AggrSpec, Aggregate, CompareOp, Predicate};
        let run = |zone_maps: bool, update: bool| {
            let storage = Storage::with_seed(1024, 500, 5);
            let spec = TableSpec::new(
                "t",
                vec![
                    ColumnSpec::with_width("k", ColumnType::Int64, 8.0),
                    ColumnSpec::with_width("v", ColumnType::Int64, 4.0),
                ],
                3000,
            );
            let table = storage
                .create_table_with_data(
                    spec,
                    vec![
                        DataGen::Sequential { start: 0, step: 1 },
                        DataGen::Constant(3),
                    ],
                )
                .unwrap();
            let config = ScanShareConfig {
                page_size_bytes: 1024,
                chunk_tuples: 500,
                buffer_pool_bytes: 32 * 1024,
                policy: PolicyKind::Lru,
                ..Default::default()
            }
            .with_zone_maps(zone_maps);
            let engine = Engine::new(storage, config).unwrap();
            if update {
                // Any pending differential update suspends pruning: a PDT
                // modify could turn a base-failing row into a match.
                engine.update_value(table, 2999, 0, -1).unwrap();
            }
            let count = engine
                .query(table)
                .columns(["k", "v"])
                .filter(Predicate::new(0, CompareOp::Lt, 500))
                .aggregate(AggrSpec::global(vec![Aggregate::Count]))
                .run()
                .unwrap()[&0]
                .count;
            (count, engine.buffer_stats().pruned_tuples)
        };
        assert_eq!(run(true, false), (500, 2500));
        assert_eq!(run(false, false), (500, 0), "config off: no pruning");
        assert_eq!(
            run(true, true),
            (501, 0),
            "pending PDT: no pruning, and the modified row matches"
        );
    }

    #[test]
    fn pinned_scan_ignores_later_commits_and_checkpoints() {
        let (engine, table) = engine(PolicyKind::Lru, 300);
        let pin = engine.table_pin(table).unwrap();
        engine.delete_row(table, 0).unwrap();
        engine.checkpoint(table).unwrap();
        let mut op = ScanOperator::with_pin(
            Arc::clone(&engine),
            pin,
            vec![0],
            TupleRange::new(0, 300),
            true,
            None,
        )
        .unwrap();
        let rows = collect(&mut op);
        assert_eq!(rows.len(), 300, "the pinned view still has every row");
        assert_eq!(rows[0], vec![0]);
        // A fresh scan sees the post-commit, post-checkpoint state.
        let mut fresh = ScanOperator::new(
            Arc::clone(&engine),
            table,
            vec![0],
            TupleRange::new(0, 300),
            true,
        )
        .unwrap();
        let fresh_rows = collect(&mut fresh);
        assert_eq!(fresh_rows.len(), 299);
        assert_eq!(fresh_rows[0], vec![1]);
    }
}
