//! Network serving layer for the scanshare engine.
//!
//! Turns the in-process engine into a server: a small length-prefixed wire
//! protocol (documented byte-for-byte in the repository's `PROTOCOL.md`)
//! carried over TCP or Unix-domain sockets, with **sessions as the unit of
//! work** rather than connections or threads. A connection multiplexes any
//! number of logical sessions; each session's queries run as cooperative
//! tasks on the engine's morsel-driven
//! [`TaskScheduler`](scanshare_exec::TaskScheduler), so thousands of
//! concurrent sessions execute on a fixed pool of
//! [`scheduler_workers`](scanshare_common::ScanShareConfig::scheduler_workers)
//! OS threads.
//!
//! The crate has three public faces:
//!
//! * [`Server`] — owns the scheduler, listeners, admission control
//!   (bounded per-tenant queues, round-robin fairness, load shedding) and
//!   per-connection reader/writer threads.
//! * [`ServeClient`] — a minimal blocking client: connect, handshake,
//!   one query at a time.
//! * [`loadgen`] — a closed-loop load generator that drives thousands of
//!   multiplexed sessions and reports p50/p95/p99/p999 tail latencies
//!   (the `fig_serving` benchmark and the `loadgen` binary build on it).
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use scanshare_storage::datagen::DataGen;
//! use scanshare_storage::{ColumnSpec, ColumnType, Storage, TableSpec};
//! use scanshare_common::ScanShareConfig;
//! use scanshare_exec::{Aggregate, Engine};
//! use scanshare_serve::{QueryRequest, ServeClient, ServeConfig, Server};
//!
//! // An engine over a small generated table.
//! let storage = Storage::new(64 * 1024, 10_000);
//! storage
//!     .create_table_with_data(
//!         TableSpec::new(
//!             "lineitem",
//!             vec![ColumnSpec::new("l_quantity", ColumnType::Int64)],
//!             100_000,
//!         ),
//!         vec![DataGen::Uniform { min: 1, max: 50 }],
//!     )
//!     .unwrap();
//! let engine = Engine::new(storage, ScanShareConfig::default()).unwrap();
//!
//! // Serve it on an ephemeral TCP port.
//! let mut server = Server::new(engine, ServeConfig::default());
//! let addr = server.bind_tcp("127.0.0.1:0").unwrap();
//!
//! // Count the rows over the wire.
//! let mut client = ServeClient::connect_tcp(addr, "tenant-a").unwrap();
//! let mut request = QueryRequest::count_star("lineitem", vec!["l_quantity".into()]);
//! request.aggregates.push(Aggregate::Sum(0));
//! let groups = client.query(request).unwrap();
//! assert_eq!(groups[0].count, 100_000);
//!
//! server.shutdown();
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use client::ServeClient;
pub use loadgen::{LoadReport, LoadgenConfig, Target};
pub use protocol::{
    ErrorCode, Frame, JoinRequest, Message, QueryRequest, ResultGroup, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
pub use server::{ServeConfig, Server, ServerStats};
