//! The scanshare wire protocol: length-prefixed frames over a byte stream.
//!
//! This module is the single source of truth for encoding and decoding;
//! both the server and the client (including the load generator) go through
//! [`Message::encode`] / [`Message::decode`]. The byte-level layout of every
//! frame is documented in `PROTOCOL.md` at the repository root — keep the
//! two in sync.
//!
//! # Frame layout
//!
//! ```text
//! [ u32 LE length ][ u8 kind ][ u32 LE session ][ payload … ]
//!                  '------------- length bytes -------------'
//! ```
//!
//! `length` counts everything after the length field itself (kind, session
//! and payload) and is capped at [`MAX_FRAME_LEN`]; a peer announcing a
//! larger frame is violating the protocol and the connection is closed.
//! `session`
//! identifies the *logical session* the frame belongs to — many sessions
//! multiplex over one connection, which is how thousands of sessions reach
//! the server over a handful of sockets.
//!
//! All integers are little-endian. Strings are UTF-8, length-prefixed with
//! a `u16`.

use std::io::{Read, Write};

use scanshare_common::{Error, Result};
use scanshare_exec::ops::{Aggregate, CompareOp, Predicate};

/// Version carried in HELLO/WELCOME; bumped on incompatible changes.
/// Version 2 added the optional broadcast-join clause to QUERY frames.
pub const PROTOCOL_VERSION: u16 = 2;

/// Upper bound on a frame's `length` field (1 MiB). Larger announcements
/// are treated as a protocol violation, bounding per-connection memory.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Client → server: handshake (must be the first frame on a connection).
pub const KIND_HELLO: u8 = 0x01;
/// Client → server: run a query on a session.
pub const KIND_QUERY: u8 = 0x02;
/// Client → server: end a session.
pub const KIND_GOODBYE: u8 = 0x03;
/// Client → server: liveness probe.
pub const KIND_PING: u8 = 0x04;
/// Server → client: handshake accepted.
pub const KIND_WELCOME: u8 = 0x81;
/// Server → client: one result group of a finished query.
pub const KIND_RESULT_GROUP: u8 = 0x82;
/// Server → client: all result groups of a query have been sent.
pub const KIND_RESULT_DONE: u8 = 0x83;
/// Server → client: a typed error.
pub const KIND_ERROR: u8 = 0x84;
/// Server → client: reply to [`KIND_PING`].
pub const KIND_PONG: u8 = 0x85;

/// Typed error codes carried by ERROR frames (`u16` on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame could not be decoded (bad length, unknown kind, truncated
    /// payload, or a message out of protocol order). Connection-fatal.
    BadFrame = 1,
    /// The HELLO version is not supported by this server.
    UnsupportedVersion = 2,
    /// The query names a table the server does not have.
    UnknownTable = 3,
    /// The query is malformed (unknown column, bad aggregate, empty
    /// projection, a second query on a session that already has one in
    /// flight, ...).
    BadQuery = 4,
    /// Admission control shed the query: the server is at its inflight
    /// limit and the tenant's queue is full. Retry later.
    Overloaded = 5,
    /// The server is shutting down and no longer accepts queries.
    ShuttingDown = 6,
    /// The server hit an internal error executing the query.
    Internal = 7,
    /// The connection reached its logical-session limit.
    SessionLimit = 8,
}

impl ErrorCode {
    /// The wire representation.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Decodes a wire code; unknown codes map to `None`.
    pub fn from_u16(code: u16) -> Option<Self> {
        Some(match code {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::UnknownTable,
            4 => ErrorCode::BadQuery,
            5 => ErrorCode::Overloaded,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Internal,
            8 => ErrorCode::SessionLimit,
            _ => return None,
        })
    }
}

/// The broadcast-join clause of a [`QueryRequest`] (protocol version 2):
/// the named build table is fully scanned and hashed before the query's
/// probe scan streams, mirroring the builder API's `.join(...)` /
/// `.join_columns(...)` clauses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinRequest {
    /// Build-side table name (resolved against the server's catalog).
    pub table: String,
    /// Probe-side join key: an index into the query's projection.
    pub left_col: usize,
    /// Build-side join-key column name.
    pub right_col: String,
    /// Extra build-side columns carried into the join output after the key
    /// (aggregate/group-by indices past the probe projection refer to the
    /// key, then these, in order).
    pub columns: Vec<String>,
}

/// A query expressed in wire terms: builder-API fields by name/index.
/// Lowered by the server onto
/// [`Engine::query`](scanshare_exec::Engine::query).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// Table name (resolved against the server's catalog).
    pub table: String,
    /// First RID of the scanned range.
    pub start: u64,
    /// One-past-last RID; `None` scans to the end of the visible rows.
    pub end: Option<u64>,
    /// Projected columns by name; predicate/aggregate indices refer to
    /// positions in this projection.
    pub columns: Vec<String>,
    /// Optional selection over one projected column.
    pub filter: Option<Predicate>,
    /// Optional group-by column (projection index).
    pub group_by: Option<usize>,
    /// Aggregates to compute; must be non-empty.
    pub aggregates: Vec<Aggregate>,
    /// Partial scans the query interleaves (the builder's `.parallelism`).
    pub parallelism: usize,
    /// Optional broadcast hash join against a second table.
    pub join: Option<JoinRequest>,
}

impl QueryRequest {
    /// A count-star query over `columns` of `table` — the smallest useful
    /// request, used by the quickstart and as the load generator default.
    pub fn count_star(table: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            table: table.into(),
            start: 0,
            end: None,
            columns,
            filter: None,
            group_by: None,
            aggregates: vec![Aggregate::Count],
            parallelism: 1,
            join: None,
        }
    }

    /// Returns the request with a broadcast-join clause attached.
    pub fn with_join(mut self, join: JoinRequest) -> Self {
        self.join = Some(join);
        self
    }
}

/// One group of a query result: the group key (0 for global aggregation),
/// its row count and one accumulator per requested aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultGroup {
    /// Group-by key (0 when the query had no group-by).
    pub key: i64,
    /// Rows aggregated into this group.
    pub count: u64,
    /// Aggregate values, in request order.
    pub accumulators: Vec<i64>,
}

/// A decoded protocol message (frame kind + payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Handshake: protocol version + tenant name (admission control is
    /// fair across tenants).
    Hello {
        /// Version the client speaks.
        version: u16,
        /// Tenant the connection's sessions belong to.
        tenant: String,
    },
    /// Run a query on the frame's session.
    Query(QueryRequest),
    /// End the frame's session.
    Goodbye,
    /// Liveness probe.
    Ping,
    /// Handshake accepted.
    Welcome {
        /// Version the server speaks.
        version: u16,
        /// Maximum logical sessions per connection.
        session_limit: u32,
    },
    /// One result group (streamed; order is ascending group key).
    ResultGroup(ResultGroup),
    /// All result groups of the session's query have been sent.
    ResultDone {
        /// Number of RESULT_GROUP frames that preceded this frame.
        groups: u32,
    },
    /// A typed error; see [`ErrorCode`].
    Error {
        /// The wire error code.
        code: u16,
        /// Human-readable diagnostic.
        message: String,
    },
    /// Reply to [`Message::Ping`].
    Pong,
}

/// A raw frame: kind + session + undecoded payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind (one of the `KIND_*` constants).
    pub kind: u8,
    /// Logical session the frame belongs to.
    pub session: u32,
    /// Kind-specific payload bytes.
    pub payload: Vec<u8>,
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame boundary;
/// EOF mid-frame is a protocol error.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Frame>> {
    let mut len_bytes = [0u8; 4];
    match reader.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(Error::io(e)),
    }
    let length = u32::from_le_bytes(len_bytes);
    if length < 5 {
        return Err(Error::protocol(format!(
            "frame length {length} is shorter than the kind + session header"
        )));
    }
    if length > MAX_FRAME_LEN {
        return Err(Error::protocol(format!(
            "frame length {length} exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    let mut body = vec![0u8; length as usize];
    reader
        .read_exact(&mut body)
        .map_err(|e| Error::protocol(format!("connection ended mid-frame: {e}")))?;
    let kind = body[0];
    let session = u32::from_le_bytes([body[1], body[2], body[3], body[4]]);
    Ok(Some(Frame {
        kind,
        session,
        payload: body.split_off(5),
    }))
}

/// Writes pre-encoded frame bytes (as produced by [`Message::encode`]).
pub fn write_frame(writer: &mut impl Write, frame: &[u8]) -> Result<()> {
    writer.write_all(frame).map_err(Error::io)
}

// --- encoding helpers -----------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = s.len().min(u16::MAX as usize) as u16;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len as usize]);
}

/// Cursor over a payload with typed, bounds-checked reads.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.bytes.len() {
            return Err(Error::protocol(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.at,
                self.bytes.len()
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2B")))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::protocol("string payload is not valid UTF-8"))
    }

    fn finish(&self) -> Result<()> {
        if self.at != self.bytes.len() {
            return Err(Error::protocol(format!(
                "{} trailing bytes after the payload",
                self.bytes.len() - self.at
            )));
        }
        Ok(())
    }
}

fn compare_op_code(op: CompareOp) -> u8 {
    match op {
        CompareOp::Lt => 0,
        CompareOp::Le => 1,
        CompareOp::Gt => 2,
        CompareOp::Ge => 3,
        CompareOp::Eq => 4,
    }
}

fn compare_op_from(code: u8) -> Result<CompareOp> {
    Ok(match code {
        0 => CompareOp::Lt,
        1 => CompareOp::Le,
        2 => CompareOp::Gt,
        3 => CompareOp::Ge,
        4 => CompareOp::Eq,
        other => return Err(Error::protocol(format!("unknown comparison op {other}"))),
    })
}

fn encode_query(out: &mut Vec<u8>, q: &QueryRequest) {
    put_str(out, &q.table);
    out.extend_from_slice(&q.start.to_le_bytes());
    out.extend_from_slice(&q.end.unwrap_or(u64::MAX).to_le_bytes());
    out.push(q.columns.len().min(255) as u8);
    for column in q.columns.iter().take(255) {
        put_str(out, column);
    }
    match &q.filter {
        Some(p) => {
            out.push(1);
            out.push(p.column.min(255) as u8);
            out.push(compare_op_code(p.op));
            out.extend_from_slice(&p.value.to_le_bytes());
        }
        None => out.push(0),
    }
    match q.group_by {
        Some(column) => {
            out.push(1);
            out.push(column.min(255) as u8);
        }
        None => out.push(0),
    }
    out.push(q.aggregates.len().min(255) as u8);
    for aggregate in q.aggregates.iter().take(255) {
        let (kind, column) = match aggregate {
            Aggregate::Count => (0u8, 0usize),
            Aggregate::Sum(c) => (1, *c),
            Aggregate::Min(c) => (2, *c),
            Aggregate::Max(c) => (3, *c),
        };
        out.push(kind);
        out.push(column.min(255) as u8);
    }
    out.push(q.parallelism.clamp(1, 255) as u8);
    match &q.join {
        Some(join) => {
            out.push(1);
            put_str(out, &join.table);
            out.push(join.left_col.min(255) as u8);
            put_str(out, &join.right_col);
            out.push(join.columns.len().min(255) as u8);
            for column in join.columns.iter().take(255) {
                put_str(out, column);
            }
        }
        None => out.push(0),
    }
}

fn decode_query(cursor: &mut Cursor<'_>) -> Result<QueryRequest> {
    let table = cursor.string()?;
    let start = cursor.u64()?;
    let end = match cursor.u64()? {
        u64::MAX => None,
        end => Some(end),
    };
    let n_columns = cursor.u8()? as usize;
    let mut columns = Vec::with_capacity(n_columns);
    for _ in 0..n_columns {
        columns.push(cursor.string()?);
    }
    let filter = match cursor.u8()? {
        0 => None,
        1 => {
            let column = cursor.u8()? as usize;
            let op = compare_op_from(cursor.u8()?)?;
            let value = cursor.i64()?;
            Some(Predicate::new(column, op, value))
        }
        other => return Err(Error::protocol(format!("bad filter flag {other}"))),
    };
    let group_by = match cursor.u8()? {
        0 => None,
        1 => Some(cursor.u8()? as usize),
        other => return Err(Error::protocol(format!("bad group-by flag {other}"))),
    };
    let n_aggregates = cursor.u8()? as usize;
    let mut aggregates = Vec::with_capacity(n_aggregates);
    for _ in 0..n_aggregates {
        let kind = cursor.u8()?;
        let column = cursor.u8()? as usize;
        aggregates.push(match kind {
            0 => Aggregate::Count,
            1 => Aggregate::Sum(column),
            2 => Aggregate::Min(column),
            3 => Aggregate::Max(column),
            other => return Err(Error::protocol(format!("unknown aggregate kind {other}"))),
        });
    }
    let parallelism = cursor.u8()?.max(1) as usize;
    let join = match cursor.u8()? {
        0 => None,
        1 => {
            let table = cursor.string()?;
            let left_col = cursor.u8()? as usize;
            let right_col = cursor.string()?;
            let n = cursor.u8()? as usize;
            let mut join_columns = Vec::with_capacity(n);
            for _ in 0..n {
                join_columns.push(cursor.string()?);
            }
            Some(JoinRequest {
                table,
                left_col,
                right_col,
                columns: join_columns,
            })
        }
        other => return Err(Error::protocol(format!("bad join flag {other}"))),
    };
    Ok(QueryRequest {
        table,
        start,
        end,
        columns,
        filter,
        group_by,
        aggregates,
        parallelism,
        join,
    })
}

impl Message {
    /// The frame kind this message encodes to.
    pub fn kind(&self) -> u8 {
        match self {
            Message::Hello { .. } => KIND_HELLO,
            Message::Query(_) => KIND_QUERY,
            Message::Goodbye => KIND_GOODBYE,
            Message::Ping => KIND_PING,
            Message::Welcome { .. } => KIND_WELCOME,
            Message::ResultGroup(_) => KIND_RESULT_GROUP,
            Message::ResultDone { .. } => KIND_RESULT_DONE,
            Message::Error { .. } => KIND_ERROR,
            Message::Pong => KIND_PONG,
        }
    }

    /// Encodes the message as one complete frame (length prefix included)
    /// addressed to `session`.
    pub fn encode(&self, session: u32) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Message::Hello { version, tenant } => {
                payload.extend_from_slice(&version.to_le_bytes());
                put_str(&mut payload, tenant);
            }
            Message::Query(query) => encode_query(&mut payload, query),
            Message::Goodbye | Message::Ping | Message::Pong => {}
            Message::Welcome {
                version,
                session_limit,
            } => {
                payload.extend_from_slice(&version.to_le_bytes());
                payload.extend_from_slice(&session_limit.to_le_bytes());
            }
            Message::ResultGroup(group) => {
                payload.extend_from_slice(&group.key.to_le_bytes());
                payload.extend_from_slice(&group.count.to_le_bytes());
                payload.push(group.accumulators.len().min(255) as u8);
                for accumulator in group.accumulators.iter().take(255) {
                    payload.extend_from_slice(&accumulator.to_le_bytes());
                }
            }
            Message::ResultDone { groups } => {
                payload.extend_from_slice(&groups.to_le_bytes());
            }
            Message::Error { code, message } => {
                payload.extend_from_slice(&code.to_le_bytes());
                put_str(&mut payload, message);
            }
        }
        let length = (5 + payload.len()) as u32;
        let mut frame = Vec::with_capacity(4 + length as usize);
        frame.extend_from_slice(&length.to_le_bytes());
        frame.push(self.kind());
        frame.extend_from_slice(&session.to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decodes a frame's payload according to its kind. Unknown kinds and
    /// malformed payloads are [`Error::Protocol`] — connection-fatal.
    pub fn decode(frame: &Frame) -> Result<Message> {
        let mut cursor = Cursor::new(&frame.payload);
        let message = match frame.kind {
            KIND_HELLO => Message::Hello {
                version: cursor.u16()?,
                tenant: cursor.string()?,
            },
            KIND_QUERY => Message::Query(decode_query(&mut cursor)?),
            KIND_GOODBYE => Message::Goodbye,
            KIND_PING => Message::Ping,
            KIND_WELCOME => Message::Welcome {
                version: cursor.u16()?,
                session_limit: cursor.u32()?,
            },
            KIND_RESULT_GROUP => {
                let key = cursor.i64()?;
                let count = cursor.u64()?;
                let n = cursor.u8()? as usize;
                let mut accumulators = Vec::with_capacity(n);
                for _ in 0..n {
                    accumulators.push(cursor.i64()?);
                }
                Message::ResultGroup(ResultGroup {
                    key,
                    count,
                    accumulators,
                })
            }
            KIND_RESULT_DONE => Message::ResultDone {
                groups: cursor.u32()?,
            },
            KIND_ERROR => Message::Error {
                code: cursor.u16()?,
                message: cursor.string()?,
            },
            KIND_PONG => Message::Pong,
            other => return Err(Error::protocol(format!("unknown frame kind {other:#04x}"))),
        };
        cursor.finish()?;
        Ok(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(message: Message, session: u32) {
        let bytes = message.encode(session);
        let frame = read_frame(&mut bytes.as_slice()).unwrap().unwrap();
        assert_eq!(frame.session, session);
        assert_eq!(Message::decode(&frame).unwrap(), message);
    }

    #[test]
    fn every_message_kind_roundtrips() {
        roundtrip(
            Message::Hello {
                version: PROTOCOL_VERSION,
                tenant: "tenant-a".into(),
            },
            0,
        );
        roundtrip(
            Message::Query(QueryRequest {
                table: "lineitem".into(),
                start: 100,
                end: Some(5000),
                columns: vec!["l_flag".into(), "l_quantity".into()],
                filter: Some(Predicate::new(1, CompareOp::Le, 24)),
                group_by: Some(0),
                aggregates: vec![Aggregate::Count, Aggregate::Sum(1), Aggregate::Max(1)],
                parallelism: 4,
                join: None,
            }),
            7,
        );
        roundtrip(
            Message::Query(
                QueryRequest::count_star("lineitem", vec!["l_qty".into(), "l_flag".into()])
                    .with_join(JoinRequest {
                        table: "part".into(),
                        left_col: 1,
                        right_col: "p_key".into(),
                        columns: vec!["p_weight".into(), "p_size".into()],
                    }),
            ),
            11,
        );
        roundtrip(
            Message::Query(QueryRequest::count_star("t", vec!["k".into()]).with_join(
                JoinRequest {
                    table: "d".into(),
                    left_col: 0,
                    right_col: "k".into(),
                    columns: Vec::new(),
                },
            )),
            12,
        );
        roundtrip(
            Message::Query(QueryRequest::count_star("t", vec!["k".into()])),
            u32::MAX,
        );
        roundtrip(Message::Goodbye, 3);
        roundtrip(Message::Ping, 0);
        roundtrip(
            Message::Welcome {
                version: 1,
                session_limit: 4096,
            },
            0,
        );
        roundtrip(
            Message::ResultGroup(ResultGroup {
                key: -3,
                count: 42,
                accumulators: vec![1, -2, i64::MAX],
            }),
            9,
        );
        roundtrip(Message::ResultDone { groups: 4 }, 9);
        roundtrip(
            Message::Error {
                code: ErrorCode::Overloaded.as_u16(),
                message: "admission queue full".into(),
            },
            9,
        );
        roundtrip(Message::Pong, 0);
    }

    #[test]
    fn clean_eof_is_none_and_partial_frames_error() {
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).unwrap().is_none());
        // A frame announcing 10 bytes but delivering 3 is a violation.
        let mut torn: &[u8] = &[10, 0, 0, 0, 0x01, 0, 0];
        assert!(matches!(
            read_frame(&mut torn).unwrap_err(),
            Error::Protocol(_)
        ));
    }

    #[test]
    fn oversized_and_undersized_lengths_are_rejected() {
        let huge = (MAX_FRAME_LEN + 1).to_le_bytes();
        let mut bytes: &[u8] = &huge;
        assert!(matches!(
            read_frame(&mut bytes).unwrap_err(),
            Error::Protocol(_)
        ));
        let mut tiny: &[u8] = &[4, 0, 0, 0, 0, 0, 0, 0];
        assert!(matches!(
            read_frame(&mut tiny).unwrap_err(),
            Error::Protocol(_)
        ));
    }

    #[test]
    fn unknown_kinds_and_trailing_bytes_are_rejected() {
        let frame = Frame {
            kind: 0x7f,
            session: 0,
            payload: Vec::new(),
        };
        assert!(matches!(
            Message::decode(&frame).unwrap_err(),
            Error::Protocol(_)
        ));
        let frame = Frame {
            kind: KIND_PONG,
            session: 0,
            payload: vec![1],
        };
        assert!(matches!(
            Message::decode(&frame).unwrap_err(),
            Error::Protocol(_)
        ));
    }

    #[test]
    fn error_codes_roundtrip_and_unknown_codes_are_none() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::UnsupportedVersion,
            ErrorCode::UnknownTable,
            ErrorCode::BadQuery,
            ErrorCode::Overloaded,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
            ErrorCode::SessionLimit,
        ] {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(999), None);
    }
}
