//! Closed-loop load generator: thousands of sessions against a scanshare
//! server, reporting p50/p95/p99/p999 tail latencies.
//!
//! ```text
//! cargo run --release -p scanshare-serve --bin loadgen -- \
//!     --tcp 127.0.0.1:7878 --sessions 1000 --connections 8 --queries 5
//! ```
//!
//! Options:
//!   --tcp ADDR        server TCP address
//!   --unix PATH       server Unix-domain socket (unix only)
//!   --sessions N      logical sessions (default 1000)
//!   --connections N   connections to multiplex them over (default 8)
//!   --queries N       queries per session (default 3)
//!   --tenant NAME     tenant in the handshake (default "loadgen")
//!   --table NAME      table to aggregate (default "lineitem")
//!   --column NAME     column to scan and sum (default "l_quantity")
//!   --parallelism N   intra-query scan parts (default 1)

use scanshare_exec::Aggregate;
use scanshare_serve::loadgen::{self, LoadgenConfig, Target};
use scanshare_serve::QueryRequest;

struct Args {
    target: Option<Target>,
    sessions: usize,
    connections: usize,
    queries: usize,
    tenant: String,
    table: String,
    column: String,
    parallelism: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        target: None,
        sessions: 1000,
        connections: 8,
        queries: 3,
        tenant: "loadgen".into(),
        table: "lineitem".into(),
        column: "l_quantity".into(),
        parallelism: 1,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--tcp" => args.target = Some(Target::Tcp(value("--tcp")?)),
            "--unix" => {
                #[cfg(unix)]
                {
                    args.target = Some(Target::Unix(value("--unix")?.into()));
                }
                #[cfg(not(unix))]
                return Err("--unix is not supported on this platform".into());
            }
            "--sessions" => {
                args.sessions = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?
            }
            "--connections" => {
                args.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?
            }
            "--queries" => {
                args.queries = value("--queries")?
                    .parse()
                    .map_err(|e| format!("--queries: {e}"))?
            }
            "--tenant" => args.tenant = value("--tenant")?,
            "--table" => args.table = value("--table")?,
            "--column" => args.column = value("--column")?,
            "--parallelism" => {
                args.parallelism = value("--parallelism")?
                    .parse()
                    .map_err(|e| format!("--parallelism: {e}"))?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.target.is_none() {
        return Err("need --tcp ADDR or --unix PATH".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("loadgen: {message}");
            std::process::exit(2);
        }
    };

    let mut request = QueryRequest::count_star(args.table.clone(), vec![args.column.clone()]);
    request.aggregates.push(Aggregate::Sum(0));
    request.parallelism = args.parallelism;

    let config = LoadgenConfig {
        target: args.target.expect("checked above"),
        tenant: args.tenant,
        connections: args.connections,
        sessions: args.sessions,
        queries_per_session: args.queries,
        request,
    };

    println!(
        "loadgen: {} sessions x {} queries over {} connections ...",
        config.sessions, config.queries_per_session, config.connections
    );
    let report = match loadgen::run(&config) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("loadgen: {error}");
            std::process::exit(1);
        }
    };

    println!(
        "loadgen: served {} queries ({} shed, {} errors) in {:.2?}",
        report.completed, report.shed, report.errors, report.wall
    );
    println!("loadgen: throughput {:.0} q/s", report.qps());
    println!(
        "loadgen: latency p50 {:.2?}  p95 {:.2?}  p99 {:.2?}  p999 {:.2?}",
        report.p50(),
        report.p95(),
        report.p99(),
        report.p999()
    );
}
