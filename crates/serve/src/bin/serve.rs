//! A standalone scanshare server over a generated demo table.
//!
//! ```text
//! cargo run --release -p scanshare-serve --bin serve -- --tcp 127.0.0.1:7878
//! ```
//!
//! Options:
//!   --tcp ADDR          listen on a TCP address (repeatable)
//!   --unix PATH         listen on a Unix-domain socket (unix only)
//!   --rows N            tuples in the generated `lineitem` table (default 2000000)
//!   --workers N         scheduler worker threads (default: engine default)
//!   --max-inflight N    concurrently running queries (default 64)
//!   --max-queued N      queued queries per tenant before shedding (default 256)

use std::sync::Arc;
use std::time::Duration;

use scanshare_common::ScanShareConfig;
use scanshare_exec::Engine;
use scanshare_serve::{ServeConfig, Server};
use scanshare_storage::datagen::DataGen;
use scanshare_storage::{ColumnSpec, ColumnType, Storage, TableSpec};

struct Args {
    tcp: Vec<String>,
    unix: Vec<String>,
    rows: u64,
    workers: Option<usize>,
    max_inflight: usize,
    max_queued: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tcp: Vec::new(),
        unix: Vec::new(),
        rows: 2_000_000,
        workers: None,
        max_inflight: 64,
        max_queued: 256,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--tcp" => args.tcp.push(value("--tcp")?),
            "--unix" => args.unix.push(value("--unix")?),
            "--rows" => {
                args.rows = value("--rows")?
                    .parse()
                    .map_err(|e| format!("--rows: {e}"))?
            }
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--max-inflight" => {
                args.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|e| format!("--max-inflight: {e}"))?
            }
            "--max-queued" => {
                args.max_queued = value("--max-queued")?
                    .parse()
                    .map_err(|e| format!("--max-queued: {e}"))?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.tcp.is_empty() && args.unix.is_empty() {
        return Err("need at least one --tcp ADDR or --unix PATH".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("serve: {message}");
            std::process::exit(2);
        }
    };

    let storage = Storage::new(128 * 1024, 50_000);
    storage
        .create_table_with_data(
            TableSpec::new(
                "lineitem",
                vec![
                    ColumnSpec::new("l_orderkey", ColumnType::Int64),
                    ColumnSpec::new("l_quantity", ColumnType::Int64),
                    ColumnSpec::new("l_extendedprice", ColumnType::Int64),
                ],
                args.rows,
            ),
            vec![
                DataGen::Sequential { start: 1, step: 1 },
                DataGen::Uniform { min: 1, max: 50 },
                DataGen::Uniform {
                    min: 100,
                    max: 100_000,
                },
            ],
        )
        .expect("create demo table");

    let mut config = ScanShareConfig::default();
    if let Some(workers) = args.workers {
        config = config.with_scheduler_workers(workers);
    }
    let engine = Engine::new(Arc::clone(&storage), config).expect("engine");

    let serve_config = ServeConfig::default()
        .with_max_inflight(args.max_inflight)
        .with_max_queued_per_tenant(args.max_queued);
    let server = Server::new(engine, serve_config);

    for addr in &args.tcp {
        let bound = server.bind_tcp(addr.as_str()).expect("bind tcp");
        println!("serve: listening on tcp://{bound}");
    }
    for path in &args.unix {
        #[cfg(unix)]
        {
            server.bind_unix(path).expect("bind unix");
            println!("serve: listening on unix://{path}");
        }
        #[cfg(not(unix))]
        {
            eprintln!("serve: --unix {path} ignored on this platform");
        }
    }
    println!(
        "serve: {} rows of lineitem ready; press Ctrl-C to stop",
        args.rows
    );

    loop {
        std::thread::sleep(Duration::from_secs(60));
        let stats = server.stats();
        println!(
            "serve: admitted={} queued={} shed={} completed={}",
            stats.admitted, stats.queued, stats.shed, stats.completed
        );
    }
}
