//! A minimal blocking client for the scanshare wire protocol.
//!
//! [`ServeClient`] keeps **one query outstanding at a time** on a single
//! session — the simplest correct use of the protocol, good for tests,
//! examples and scripting. The load generator ([`crate::loadgen`])
//! multiplexes many sessions per connection instead; both speak the same
//! frames (see `PROTOCOL.md`).

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;

use scanshare_common::{Error, Result};

use crate::protocol::{
    read_frame, write_frame, Message, QueryRequest, ResultGroup, PROTOCOL_VERSION,
};

enum ClientSock {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for ClientSock {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientSock::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientSock::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientSock {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientSock::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ClientSock::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientSock::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ClientSock::Unix(s) => s.flush(),
        }
    }
}

/// A blocking, single-session client connection to a scanshare
/// [`Server`](crate::Server).
///
/// Created with [`ServeClient::connect_tcp`] or
/// [`ServeClient::connect_unix`]; the constructor performs the
/// HELLO/WELCOME handshake, so a connected client is ready to
/// [`query`](ServeClient::query).
pub struct ServeClient {
    sock: ClientSock,
    session_limit: u32,
}

impl std::fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient")
            .field("session_limit", &self.session_limit)
            .finish()
    }
}

impl ServeClient {
    /// Connects over TCP and performs the protocol handshake as `tenant`.
    pub fn connect_tcp(addr: impl ToSocketAddrs, tenant: &str) -> Result<Self> {
        let stream = TcpStream::connect(addr).map_err(Error::io)?;
        stream.set_nodelay(true).map_err(Error::io)?;
        Self::handshake(ClientSock::Tcp(stream), tenant)
    }

    /// Connects over a Unix-domain socket and performs the handshake as
    /// `tenant`.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>, tenant: &str) -> Result<Self> {
        let stream = UnixStream::connect(path).map_err(Error::io)?;
        Self::handshake(ClientSock::Unix(stream), tenant)
    }

    fn handshake(mut sock: ClientSock, tenant: &str) -> Result<Self> {
        let hello = Message::Hello {
            version: PROTOCOL_VERSION,
            tenant: tenant.to_string(),
        }
        .encode(0);
        write_frame(&mut sock, &hello)?;
        let frame = read_frame(&mut sock)?
            .ok_or_else(|| Error::protocol("server closed the connection during handshake"))?;
        match Message::decode(&frame)? {
            Message::Welcome { session_limit, .. } => Ok(Self {
                sock,
                session_limit,
            }),
            Message::Error { code, message } => Err(Error::Remote { code, message }),
            other => Err(Error::protocol(format!(
                "expected WELCOME, got {:?} frame",
                other.kind()
            ))),
        }
    }

    /// The per-connection session limit the server advertised in WELCOME.
    pub fn session_limit(&self) -> u32 {
        self.session_limit
    }

    /// Runs one query on session 0 and blocks until the full result
    /// arrived: the aggregated groups, in group-key order.
    ///
    /// A typed server-side failure (unknown table, malformed query,
    /// admission shedding, ...) surfaces as
    /// [`Error::Remote`] carrying the wire
    /// error code.
    pub fn query(&mut self, request: QueryRequest) -> Result<Vec<ResultGroup>> {
        write_frame(&mut self.sock, &Message::Query(request).encode(0))?;
        let mut groups = Vec::new();
        loop {
            let frame = read_frame(&mut self.sock)?
                .ok_or_else(|| Error::protocol("server closed the connection mid-result"))?;
            match Message::decode(&frame)? {
                Message::ResultGroup(group) => groups.push(group),
                Message::ResultDone { groups: total } => {
                    if groups.len() as u32 != total {
                        return Err(Error::protocol(format!(
                            "RESULT_DONE declared {total} groups but {} arrived",
                            groups.len()
                        )));
                    }
                    return Ok(groups);
                }
                Message::Error { code, message } => return Err(Error::Remote { code, message }),
                other => {
                    return Err(Error::protocol(format!(
                        "unexpected {:?} frame inside a result stream",
                        other.kind()
                    )))
                }
            }
        }
    }

    /// Round-trips a PING frame; returns once the PONG arrives.
    pub fn ping(&mut self) -> Result<()> {
        write_frame(&mut self.sock, &Message::Ping.encode(0))?;
        let frame = read_frame(&mut self.sock)?
            .ok_or_else(|| Error::protocol("server closed the connection awaiting PONG"))?;
        match Message::decode(&frame)? {
            Message::Pong => Ok(()),
            Message::Error { code, message } => Err(Error::Remote { code, message }),
            other => Err(Error::protocol(format!(
                "unexpected {:?} frame awaiting PONG",
                other.kind()
            ))),
        }
    }

    /// Sends GOODBYE for session 0. The connection itself closes on drop.
    pub fn goodbye(&mut self) -> Result<()> {
        write_frame(&mut self.sock, &Message::Goodbye.encode(0))
    }
}
