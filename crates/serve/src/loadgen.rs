//! A closed-loop load generator for the serving layer.
//!
//! Drives thousands of logical sessions over a handful of connections:
//! each session keeps exactly one query outstanding (closed loop) and
//! issues the next one the moment its result — or a typed error — arrives.
//! Sessions are multiplexed onto connections, so 1000 sessions over 8
//! connections cost 16 client threads, mirroring how the server runs them
//! on a fixed scheduler pool.
//!
//! Shed queries ([`ErrorCode::Overloaded`])
//! are counted separately and do **not** contribute latency samples — the
//! report's percentiles describe served queries under the measured load.

use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use scanshare_common::{Error, Result};

use crate::protocol::{
    read_frame, write_frame, ErrorCode, Message, QueryRequest, PROTOCOL_VERSION,
};

/// Where the load generator connects.
#[derive(Debug, Clone)]
pub enum Target {
    /// A TCP address, e.g. `"127.0.0.1:7878"`.
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Load-generator parameters; see [`run`].
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server endpoint.
    pub target: Target,
    /// Tenant name sent in the HELLO handshake (one tenant per run).
    pub tenant: String,
    /// Connections to open; sessions are spread round-robin across them.
    pub connections: usize,
    /// Total logical sessions.
    pub sessions: usize,
    /// Queries each session issues, back to back.
    pub queries_per_session: usize,
    /// The query every session runs.
    pub request: QueryRequest,
}

/// What one load-generator run observed; latency percentiles cover served
/// queries only (shed queries are counted, not timed).
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Logical sessions driven.
    pub sessions: usize,
    /// Queries answered with a full result.
    pub completed: u64,
    /// Queries shed by admission control (OVERLOADED / SHUTTING_DOWN).
    pub shed: u64,
    /// Queries answered with any other error frame.
    pub errors: u64,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    latencies: Vec<Duration>,
}

impl LoadReport {
    /// Served queries per second over the run's wall clock.
    pub fn qps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.completed as f64 / self.wall.as_secs_f64()
    }

    /// The `p`-th latency percentile (0 < p ≤ 100) over served queries,
    /// pooled across all sessions (nearest-rank, via
    /// [`scanshare_common::quantile`]); zero when nothing was served.
    pub fn percentile(&self, p: f64) -> Duration {
        scanshare_common::quantile::nearest_rank(&self.latencies, p / 100.0)
            .unwrap_or(Duration::ZERO)
    }

    /// Median latency.
    pub fn p50(&self) -> Duration {
        self.percentile(50.0)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Duration {
        self.percentile(95.0)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.percentile(99.0)
    }

    /// 99.9th-percentile latency.
    pub fn p999(&self) -> Duration {
        self.percentile(99.9)
    }

    /// All latency samples, sorted ascending.
    pub fn latencies(&self) -> &[Duration] {
        &self.latencies
    }
}

enum LoadSock {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl LoadSock {
    fn connect(target: &Target) -> Result<Self> {
        Ok(match target {
            Target::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str()).map_err(Error::io)?;
                stream.set_nodelay(true).map_err(Error::io)?;
                LoadSock::Tcp(stream)
            }
            #[cfg(unix)]
            Target::Unix(path) => LoadSock::Unix(UnixStream::connect(path).map_err(Error::io)?),
        })
    }

    fn try_clone(&self) -> Result<Self> {
        Ok(match self {
            LoadSock::Tcp(s) => LoadSock::Tcp(s.try_clone().map_err(Error::io)?),
            #[cfg(unix)]
            LoadSock::Unix(s) => LoadSock::Unix(s.try_clone().map_err(Error::io)?),
        })
    }
}

impl Read for LoadSock {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            LoadSock::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            LoadSock::Unix(s) => s.read(buf),
        }
    }
}

impl Write for LoadSock {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            LoadSock::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            LoadSock::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            LoadSock::Tcp(s) => s.flush(),
            #[cfg(unix)]
            LoadSock::Unix(s) => s.flush(),
        }
    }
}

#[derive(Default)]
struct ConnOutcome {
    latencies: Vec<Duration>,
    completed: u64,
    shed: u64,
    errors: u64,
}

/// Runs the configured workload to completion and reports tail latencies.
///
/// Every session issues [`LoadgenConfig::queries_per_session`] queries
/// closed-loop; the run ends when all of them have been answered (result,
/// shed or error).
pub fn run(config: &LoadgenConfig) -> Result<LoadReport> {
    if config.connections == 0 || config.sessions == 0 {
        return Err(Error::config(
            "loadgen needs at least 1 connection and 1 session",
        ));
    }
    let connections = config.connections.min(config.sessions);
    let started = Instant::now();
    let mut joins = Vec::with_capacity(connections);
    for conn in 0..connections {
        // Round-robin split: connection `conn` drives sessions
        // conn, conn+C, conn+2C, ... of the global session space.
        let sessions =
            config.sessions / connections + usize::from(conn < config.sessions % connections);
        let target = config.target.clone();
        let tenant = config.tenant.clone();
        let request = config.request.clone();
        let queries = config.queries_per_session;
        joins.push(
            std::thread::Builder::new()
                .name(format!("loadgen-conn-{conn}"))
                .spawn(move || drive_connection(&target, &tenant, sessions, queries, &request))
                .map_err(Error::io)?,
        );
    }
    let mut outcome = ConnOutcome::default();
    let mut first_error = None;
    for join in joins {
        match join.join() {
            Ok(Ok(conn)) => {
                outcome.latencies.extend(conn.latencies);
                outcome.completed += conn.completed;
                outcome.shed += conn.shed;
                outcome.errors += conn.errors;
            }
            Ok(Err(error)) => first_error = first_error.or(Some(error)),
            Err(_) => {
                first_error =
                    first_error.or_else(|| Some(Error::io("a loadgen connection thread panicked")))
            }
        }
    }
    if let Some(error) = first_error {
        return Err(error);
    }
    let wall = started.elapsed();
    outcome.latencies.sort_unstable();
    Ok(LoadReport {
        sessions: config.sessions,
        completed: outcome.completed,
        shed: outcome.shed,
        errors: outcome.errors,
        wall,
        latencies: outcome.latencies,
    })
}

/// Drives `sessions` closed-loop sessions over one connection.
///
/// Two threads: this one reads result frames and decides which session
/// issues its next query; a writer thread drains the issue channel onto the
/// socket. Splitting the directions means the initial burst of queries can
/// never deadlock against a flood of early responses.
fn drive_connection(
    target: &Target,
    tenant: &str,
    sessions: usize,
    queries_per_session: usize,
    request: &QueryRequest,
) -> Result<ConnOutcome> {
    let mut outcome = ConnOutcome::default();
    if sessions == 0 || queries_per_session == 0 {
        return Ok(outcome);
    }
    let mut reader = LoadSock::connect(target)?;
    let mut writer_sock = reader.try_clone()?;

    // Handshake on the reader thread, before the writer exists.
    write_frame(
        &mut writer_sock,
        &Message::Hello {
            version: PROTOCOL_VERSION,
            tenant: tenant.to_string(),
        }
        .encode(0),
    )?;
    let frame = read_frame(&mut reader)?
        .ok_or_else(|| Error::protocol("server closed the connection during handshake"))?;
    match Message::decode(&frame)? {
        Message::Welcome { .. } => {}
        Message::Error { code, message } => return Err(Error::Remote { code, message }),
        other => {
            return Err(Error::protocol(format!(
                "expected WELCOME, got {:?} frame",
                other.kind()
            )))
        }
    }

    let (issue, next) = mpsc::channel::<u32>();
    let frames: Vec<Vec<u8>> = (0..sessions as u32)
        .map(|s| Message::Query(request.clone()).encode(s))
        .collect();
    let writer = std::thread::Builder::new()
        .name("loadgen-writer".into())
        .spawn(move || {
            while let Ok(session) = next.recv() {
                if write_frame(&mut writer_sock, &frames[session as usize]).is_err() {
                    return;
                }
            }
        })
        .map_err(Error::io)?;

    let mut starts = vec![Instant::now(); sessions];
    let mut issued = vec![1usize; sessions];
    let mut active = sessions;
    for session in 0..sessions as u32 {
        starts[session as usize] = Instant::now();
        let _ = issue.send(session);
    }

    let result = (|| -> Result<()> {
        while active > 0 {
            let frame = read_frame(&mut reader)?
                .ok_or_else(|| Error::protocol("server closed the connection mid-run"))?;
            let session = frame.session as usize;
            if session >= sessions {
                return Err(Error::protocol(format!(
                    "result frame for unknown session {session}"
                )));
            }
            let advance = match Message::decode(&frame)? {
                Message::ResultGroup(_) => false,
                Message::ResultDone { .. } => {
                    outcome.completed += 1;
                    outcome.latencies.push(starts[session].elapsed());
                    true
                }
                Message::Error { code, .. } => {
                    if code == ErrorCode::Overloaded.as_u16()
                        || code == ErrorCode::ShuttingDown.as_u16()
                    {
                        outcome.shed += 1;
                    } else {
                        outcome.errors += 1;
                    }
                    true
                }
                Message::Pong => false,
                other => {
                    return Err(Error::protocol(format!(
                        "unexpected {:?} frame in a loadgen session",
                        other.kind()
                    )))
                }
            };
            if advance {
                if issued[session] < queries_per_session {
                    issued[session] += 1;
                    starts[session] = Instant::now();
                    let _ = issue.send(frame.session);
                } else {
                    active -= 1;
                }
            }
        }
        Ok(())
    })();

    // Dropping the sender stops the writer thread.
    drop(issue);
    let _ = writer.join();
    result.map(|()| outcome)
}
