//! The serving layer: sessions over TCP/Unix sockets, executed as
//! cooperative tasks on the engine's morsel-driven scheduler.
//!
//! # Architecture
//!
//! Each accepted connection gets two OS threads — a **reader** that decodes
//! frames and a **writer** that drains a bounded outbound frame queue — and
//! *no* per-session threads: a connection carries any number of logical
//! sessions (the session id in every frame), and each session's queries run
//! as [`Task`]s on the shared
//! [`TaskScheduler`] worker pool.
//! Thousands of sessions therefore cost a handful of sockets plus
//! [`ScanShareConfig::scheduler_workers`](scanshare_common::ScanShareConfig::scheduler_workers)
//! workers.
//!
//! # Admission control, fairness, backpressure
//!
//! A query is **admitted** while fewer than [`ServeConfig::max_inflight`]
//! queries are running; otherwise it is **queued** on its tenant's bounded
//! queue ([`ServeConfig::max_queued_per_tenant`]) and admitted round-robin
//! across tenants as running queries finish; when the tenant queue is full
//! it is **shed** with an [`ErrorCode::Overloaded`] error frame. Result
//! delivery is backpressured cooperatively: a query task whose connection's
//! outbound queue is full *yields* and retries next quantum — it never
//! blocks a scheduler worker on a slow client.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::Duration;

use scanshare_common::{Error, Result};
use scanshare_exec::ops::AggrSpec;
use scanshare_exec::sched::{QueryTask, SchedHandle, SchedulerStats, TaskScheduler};
use scanshare_exec::{Engine, Task, TaskStep};

use crate::protocol::{read_frame, ErrorCode, Message};

/// Serving-layer tuning knobs, layered on top of the engine's
/// [`ScanShareConfig`](scanshare_common::ScanShareConfig).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Queries allowed to run on the scheduler simultaneously; arrivals
    /// beyond this are queued per tenant. Default 64.
    pub max_inflight: usize,
    /// Bound on each tenant's admission queue; arrivals beyond it are shed
    /// with [`ErrorCode::Overloaded`]. Default 256.
    pub max_queued_per_tenant: usize,
    /// Maximum logical sessions one connection may open. Default 65 536.
    pub max_sessions_per_conn: u32,
    /// Capacity (frames) of each connection's outbound queue — the
    /// backpressure buffer between query tasks and the socket. Default
    /// 1024.
    pub writer_queue_frames: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_inflight: 64,
            max_queued_per_tenant: 256,
            max_sessions_per_conn: 65_536,
            writer_queue_frames: 1024,
        }
    }
}

impl ServeConfig {
    /// Sets [`ServeConfig::max_inflight`].
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight.max(1);
        self
    }

    /// Sets [`ServeConfig::max_queued_per_tenant`].
    pub fn with_max_queued_per_tenant(mut self, max_queued: usize) -> Self {
        self.max_queued_per_tenant = max_queued;
        self
    }

    /// Sets [`ServeConfig::max_sessions_per_conn`].
    pub fn with_max_sessions_per_conn(mut self, limit: u32) -> Self {
        self.max_sessions_per_conn = limit.max(1);
        self
    }

    /// Sets [`ServeConfig::writer_queue_frames`].
    pub fn with_writer_queue_frames(mut self, frames: usize) -> Self {
        self.writer_queue_frames = frames.max(1);
        self
    }
}

/// Lifetime counters of a [`Server`]; snapshot with [`Server::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries admitted straight onto the scheduler.
    pub admitted: u64,
    /// Queries that waited in a tenant's admission queue first.
    pub queued: u64,
    /// Queries shed with [`ErrorCode::Overloaded`].
    pub shed: u64,
    /// Queries whose full result (terminated by RESULT_DONE) was handed to
    /// the connection writer.
    pub completed: u64,
}

// ---------------------------------------------------------------------------
// Sockets
// ---------------------------------------------------------------------------

/// A connected byte stream: TCP or Unix-domain.
pub(crate) enum Sock {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Sock {
    pub(crate) fn try_clone(&self) -> Result<Sock> {
        Ok(match self {
            Sock::Tcp(s) => Sock::Tcp(s.try_clone().map_err(Error::io)?),
            #[cfg(unix)]
            Sock::Unix(s) => Sock::Unix(s.try_clone().map_err(Error::io)?),
        })
    }

    pub(crate) fn shutdown_both(&self) {
        match self {
            Sock::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Sock::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl std::io::Read for Sock {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Sock::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Sock {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Sock::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Sock::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Sock::Unix(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------------
// Outbound frame queue (the backpressure buffer)
// ---------------------------------------------------------------------------

struct QueueState {
    frames: VecDeque<Vec<u8>>,
    closed: bool,
}

/// Bounded MPSC queue of encoded frames between query tasks / the reader
/// thread (producers) and the connection's writer thread (consumer).
pub(crate) struct FrameQueue {
    state: std::sync::Mutex<QueueState>,
    readable: Condvar,
    writable: Condvar,
    capacity: usize,
}

pub(crate) enum Push {
    Ok,
    /// Queue at capacity; ownership of the frame is handed back so the
    /// caller can retry it later.
    Full(Vec<u8>),
    Closed,
}

impl FrameQueue {
    pub(crate) fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            state: std::sync::Mutex::new(QueueState {
                frames: VecDeque::new(),
                closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-blocking push, for scheduler tasks: a full queue means the
    /// client is slow — the task yields instead of blocking a worker.
    pub(crate) fn try_push(&self, frame: Vec<u8>) -> Push {
        let mut state = self.lock();
        if state.closed {
            return Push::Closed;
        }
        if state.frames.len() >= self.capacity {
            return Push::Full(frame);
        }
        state.frames.push_back(frame);
        drop(state);
        self.readable.notify_one();
        Push::Ok
    }

    /// Blocking push, for the reader thread's control replies (WELCOME,
    /// PONG, error frames): blocks while the queue is full, returns `false`
    /// if the queue closed.
    pub(crate) fn push_wait(&self, frame: Vec<u8>) -> bool {
        let mut state = self.lock();
        while !state.closed && state.frames.len() >= self.capacity {
            state = self.writable.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        if state.closed {
            return false;
        }
        state.frames.push_back(frame);
        drop(state);
        self.readable.notify_one();
        true
    }

    /// Blocking pop for the writer thread; `None` once the queue is closed
    /// *and* drained.
    pub(crate) fn pop_wait(&self) -> Option<Vec<u8>> {
        let mut state = self.lock();
        loop {
            if let Some(frame) = state.frames.pop_front() {
                drop(state);
                self.writable.notify_one();
                return Some(frame);
            }
            if state.closed {
                return None;
            }
            state = self.readable.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// Releases a session's in-flight slot when the query (or queued request)
/// is dropped, so a session can run its next query.
struct SessionSlot {
    conn: Arc<ConnShared>,
    session: u32,
}

impl Drop for SessionSlot {
    fn drop(&mut self) {
        self.conn
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.session);
    }
}

/// A query waiting in a tenant's admission queue.
struct PendingQuery {
    request: crate::protocol::QueryRequest,
    session: u32,
    writer: Arc<FrameQueue>,
    slot: SessionSlot,
}

#[derive(Default)]
struct AdmissionState {
    running: usize,
    closed: bool,
    queues: BTreeMap<String, VecDeque<PendingQuery>>,
    round_robin: VecDeque<String>,
}

enum Submit {
    Accepted,
    Shed(ErrorCode, &'static str),
}

/// Releases one admission slot on drop and pulls the next queued query in
/// round-robin tenant order onto the scheduler.
struct AdmissionTicket {
    inner: Arc<ServerInner>,
}

impl Drop for AdmissionTicket {
    fn drop(&mut self) {
        self.inner.admission_release();
    }
}

// ---------------------------------------------------------------------------
// The query task
// ---------------------------------------------------------------------------

enum QueryState {
    /// Not yet lowered onto the engine (build errors become error frames).
    Pending(Box<crate::protocol::QueryRequest>),
    /// Aggregating, one quantum at a time (boxed: a join-capable
    /// `QueryTask` is much larger than the other states).
    Running(Box<QueryTask>),
    /// Result (or error) frames encoded, draining into the writer queue.
    Draining,
}

/// One session query on the scheduler: lowers the wire request onto a
/// [`QueryTask`], then delivers result frames through the connection's
/// bounded queue, yielding under backpressure.
struct ServeQueryTask {
    engine: Arc<Engine>,
    state: QueryState,
    out: VecDeque<Vec<u8>>,
    writer: Arc<FrameQueue>,
    session: u32,
    stats: Arc<StatCounters>,
    /// Dropped (in task drop) after the query fully completes or is
    /// cancelled — releasing the admission slot either way.
    _ticket: AdmissionTicket,
    /// The session's one-query-in-flight slot; released explicitly just
    /// before the final result frame is enqueued (see `step`), or on drop
    /// if the task is cancelled.
    slot: Option<SessionSlot>,
}

/// Maps engine errors onto wire error codes.
fn code_for(error: &Error) -> ErrorCode {
    match error {
        Error::UnknownTable(_) => ErrorCode::UnknownTable,
        Error::UnknownColumn { .. } | Error::InvalidPlan(_) | Error::Unsupported(_) => {
            ErrorCode::BadQuery
        }
        _ => ErrorCode::Internal,
    }
}

impl ServeQueryTask {
    fn fail(&mut self, code: ErrorCode, message: String) {
        self.out.push_back(
            Message::Error {
                code: code.as_u16(),
                message,
            }
            .encode(self.session),
        );
        self.state = QueryState::Draining;
    }

    fn build(&mut self, request: crate::protocol::QueryRequest) {
        let table = match self.engine.storage().table_by_name(&request.table) {
            Ok(table) => table.id,
            Err(_) => {
                return self.fail(
                    ErrorCode::UnknownTable,
                    format!("unknown table {:?}", request.table),
                )
            }
        };
        let mut query = self
            .engine
            .query(table)
            .columns(request.columns.iter().map(String::as_str))
            .aggregate(AggrSpec {
                group_by: request.group_by,
                aggregates: request.aggregates.clone(),
            })
            .parallelism(request.parallelism.max(1));
        query = match request.end {
            Some(end) => query.range(request.start..end),
            None => query.range(request.start..),
        };
        if let Some(filter) = request.filter {
            query = query.filter(filter);
        }
        if let Some(join) = request.join {
            let build = match self.engine.storage().table_by_name(&join.table) {
                Ok(table) => table.id,
                Err(_) => {
                    return self.fail(
                        ErrorCode::UnknownTable,
                        format!("unknown join table {:?}", join.table),
                    )
                }
            };
            query = query
                .join(build, join.left_col, join.right_col)
                .join_columns(join.columns);
        }
        match query.into_task() {
            Ok(task) => self.state = QueryState::Running(Box::new(task)),
            Err(error) => self.fail(code_for(&error), error.to_string()),
        }
    }
}

impl Task for ServeQueryTask {
    fn step(&mut self) -> scanshare_common::Result<TaskStep> {
        match std::mem::replace(&mut self.state, QueryState::Draining) {
            QueryState::Pending(request) => {
                self.build(*request);
                Ok(TaskStep::Yield)
            }
            QueryState::Running(mut task) => {
                match task.step() {
                    Ok(TaskStep::Yield) => self.state = QueryState::Running(task),
                    Ok(TaskStep::Done) => {
                        let groups = task.into_result();
                        let total = groups.len().min(u32::MAX as usize) as u32;
                        for (key, state) in groups {
                            self.out.push_back(
                                Message::ResultGroup(crate::protocol::ResultGroup {
                                    key,
                                    count: state.count,
                                    accumulators: state.accumulators,
                                })
                                .encode(self.session),
                            );
                        }
                        self.out
                            .push_back(Message::ResultDone { groups: total }.encode(self.session));
                        self.stats.completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(error) => {
                        let code = code_for(&error);
                        self.fail(code, error.to_string());
                    }
                }
                Ok(TaskStep::Yield)
            }
            QueryState::Draining => {
                while let Some(frame) = self.out.pop_front() {
                    if self.out.is_empty() {
                        // The final frame of the query (RESULT_DONE or
                        // ERROR): free the session's in-flight slot before
                        // the frame can reach the client, so the session's
                        // next query — sent in reaction to this frame —
                        // can never race the slot release.
                        self.slot = None;
                    }
                    match self.writer.try_push(frame) {
                        Push::Ok => {}
                        Push::Full(frame) => {
                            // Slow client: put the frame back and yield —
                            // cooperative backpressure, the worker moves on.
                            self.out.push_front(frame);
                            return Ok(TaskStep::Yield);
                        }
                        Push::Closed => {
                            // Connection gone; discard the rest.
                            self.out.clear();
                            return Ok(TaskStep::Done);
                        }
                    }
                }
                Ok(TaskStep::Done)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

#[derive(Default)]
struct StatCounters {
    admitted: AtomicU64,
    queued: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
}

/// State shared by one connection's reader, writer and query tasks.
struct ConnShared {
    /// Sessions with a query currently in flight (admitted or queued);
    /// enforces the one-outstanding-query-per-session protocol rule.
    inflight: std::sync::Mutex<HashSet<u32>>,
}

struct ServerInner {
    engine: Arc<Engine>,
    config: ServeConfig,
    sched: SchedHandle,
    admission: std::sync::Mutex<AdmissionState>,
    stats: Arc<StatCounters>,
    shutdown: AtomicBool,
    /// Socket clones used to unblock reader threads at shutdown.
    conns: std::sync::Mutex<Vec<(Sock, Arc<FrameQueue>)>>,
    threads: std::sync::Mutex<Vec<JoinHandle<()>>>,
}

impl ServerInner {
    fn admission_lock(&self) -> std::sync::MutexGuard<'_, AdmissionState> {
        self.admission.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admission decision for one arriving query.
    fn submit(self: &Arc<Self>, tenant: &str, pending: PendingQuery) -> Submit {
        let mut state = self.admission_lock();
        if state.closed || self.shutdown.load(Ordering::SeqCst) {
            return Submit::Shed(ErrorCode::ShuttingDown, "server is shutting down");
        }
        if state.running < self.config.max_inflight {
            state.running += 1;
            drop(state);
            self.stats.admitted.fetch_add(1, Ordering::Relaxed);
            self.spawn_query(pending);
            return Submit::Accepted;
        }
        let queue = state.queues.entry(tenant.to_string()).or_default();
        if queue.len() >= self.config.max_queued_per_tenant {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Submit::Shed(
                ErrorCode::Overloaded,
                "admission queue for this tenant is full",
            );
        }
        let newly_nonempty = queue.is_empty();
        queue.push_back(pending);
        if newly_nonempty {
            state.round_robin.push_back(tenant.to_string());
        }
        self.stats.queued.fetch_add(1, Ordering::Relaxed);
        Submit::Accepted
    }

    /// Called when an admission ticket drops: frees the slot and admits the
    /// next queued query, round-robin across tenants.
    fn admission_release(self: &Arc<Self>) {
        let next = {
            let mut state = self.admission_lock();
            state.running = state.running.saturating_sub(1);
            if state.closed {
                state.queues.clear();
                state.round_robin.clear();
                None
            } else {
                let mut picked = None;
                while let Some(tenant) = state.round_robin.pop_front() {
                    let Some(queue) = state.queues.get_mut(&tenant) else {
                        continue;
                    };
                    let Some(pending) = queue.pop_front() else {
                        state.queues.remove(&tenant);
                        continue;
                    };
                    if queue.is_empty() {
                        state.queues.remove(&tenant);
                    } else {
                        state.round_robin.push_back(tenant);
                    }
                    picked = Some(pending);
                    break;
                }
                if picked.is_some() {
                    state.running += 1;
                }
                picked
            }
        };
        if let Some(pending) = next {
            self.spawn_query(pending);
        }
    }

    /// Puts one admitted query onto the scheduler (slot already counted).
    fn spawn_query(self: &Arc<Self>, pending: PendingQuery) {
        let task = ServeQueryTask {
            engine: Arc::clone(&self.engine),
            state: QueryState::Pending(Box::new(pending.request)),
            out: VecDeque::new(),
            writer: pending.writer,
            session: pending.session,
            stats: Arc::clone(&self.stats),
            _ticket: AdmissionTicket {
                inner: Arc::clone(self),
            },
            slot: Some(pending.slot),
        };
        // Detached: the task delivers its own result over the wire. After
        // scheduler shutdown the spawn cancels immediately, dropping the
        // task and releasing its ticket/slot.
        drop(self.sched.spawn(task));
    }
}

/// The serving-layer server: owns the task scheduler, its listeners and
/// all per-connection threads. See the [module docs](self) and the
/// repository's `PROTOCOL.md`.
pub struct Server {
    inner: Arc<ServerInner>,
    scheduler: Option<TaskScheduler>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Server {
    /// Creates a server over `engine`, starting a scheduler with
    /// [`ScanShareConfig::scheduler_workers`](scanshare_common::ScanShareConfig::scheduler_workers)
    /// workers. Listeners are added with [`Server::bind_tcp`] /
    /// [`Server::bind_unix`].
    pub fn new(engine: Arc<Engine>, config: ServeConfig) -> Self {
        let scheduler = TaskScheduler::new(engine.config().scheduler_workers);
        let inner = Arc::new(ServerInner {
            engine,
            config,
            sched: scheduler.handle(),
            admission: std::sync::Mutex::new(AdmissionState::default()),
            stats: Arc::new(StatCounters::default()),
            shutdown: AtomicBool::new(false),
            conns: std::sync::Mutex::new(Vec::new()),
            threads: std::sync::Mutex::new(Vec::new()),
        });
        Self {
            inner,
            scheduler: Some(scheduler),
        }
    }

    /// Starts accepting TCP connections on `addr`; returns the bound
    /// address (useful with port 0).
    pub fn bind_tcp(&self, addr: impl ToSocketAddrs) -> Result<SocketAddr> {
        let listener = TcpListener::bind(addr).map_err(Error::io)?;
        let local = listener.local_addr().map_err(Error::io)?;
        listener.set_nonblocking(true).map_err(Error::io)?;
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::Builder::new()
            .name("serve-accept-tcp".into())
            .spawn(move || loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        start_connection(&inner, Sock::Tcp(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            })
            .map_err(Error::io)?;
        self.inner
            .threads
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
        Ok(local)
    }

    /// Starts accepting Unix-domain connections on `path` (removed first if
    /// it exists, like most daemons do).
    #[cfg(unix)]
    pub fn bind_unix(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path).map_err(Error::io)?;
        listener.set_nonblocking(true).map_err(Error::io)?;
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::Builder::new()
            .name("serve-accept-unix".into())
            .spawn(move || loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        start_connection(&inner, Sock::Unix(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            })
            .map_err(Error::io)?;
        self.inner
            .threads
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
        Ok(())
    }

    /// A snapshot of the server's admission/completion counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            admitted: self.inner.stats.admitted.load(Ordering::Relaxed),
            queued: self.inner.stats.queued.load(Ordering::Relaxed),
            shed: self.inner.stats.shed.load(Ordering::Relaxed),
            completed: self.inner.stats.completed.load(Ordering::Relaxed),
        }
    }

    /// The scheduler's counters (yields, steals, ...), for benches.
    pub fn scheduler_stats(&self) -> Option<SchedulerStats> {
        self.scheduler.as_ref().map(TaskScheduler::stats)
    }

    /// Stops the server: stops accepting, sheds every queued query, cancels
    /// running query tasks at their next yield point, closes all
    /// connections and joins every thread. In-flight clients observe a
    /// closed connection (mid-query) or an
    /// [`ErrorCode::ShuttingDown`] error frame (new queries racing the
    /// shutdown). Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Close admission first so released slots stop respawning work.
        {
            let mut state = self.inner.admission_lock();
            state.closed = true;
            state.queues.clear();
            state.round_robin.clear();
        }
        // Stop the scheduler: running tasks finish their current quantum,
        // queued ones are cancelled (dropping tickets and session slots).
        if let Some(mut scheduler) = self.scheduler.take() {
            scheduler.shutdown();
        }
        // Unblock and close every connection.
        {
            let conns = self.inner.conns.lock().unwrap_or_else(|e| e.into_inner());
            for (sock, queue) in conns.iter() {
                queue.close();
                sock.shutdown_both();
            }
        }
        // Join accept loops and connection threads.
        let threads: Vec<_> = {
            let mut guard = self.inner.threads.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns the reader + writer threads for one accepted connection.
fn start_connection(inner: &Arc<ServerInner>, sock: Sock) {
    let writer_queue = FrameQueue::new(inner.config.writer_queue_frames);
    let Ok(read_half) = sock.try_clone() else {
        return;
    };
    let Ok(shutdown_half) = sock.try_clone() else {
        return;
    };
    let mut write_half = sock;

    let queue = Arc::clone(&writer_queue);
    let writer = std::thread::Builder::new()
        .name("serve-writer".into())
        .spawn(move || {
            while let Some(frame) = queue.pop_wait() {
                if write_half.write_all(&frame).is_err() {
                    queue.close();
                    break;
                }
            }
            // The server also holds a clone of this socket (for shutdown),
            // so the peer only sees EOF if the connection is shut down
            // explicitly once the outbound queue has drained.
            write_half.shutdown_both();
        });

    let inner_reader = Arc::clone(inner);
    let queue = Arc::clone(&writer_queue);
    let reader = std::thread::Builder::new()
        .name("serve-reader".into())
        .spawn(move || {
            reader_loop(&inner_reader, read_half, &queue);
            // Reader gone (EOF, protocol error or shutdown): let the writer
            // finish the queued frames and exit.
            queue.close();
        });

    let mut threads = inner.threads.lock().unwrap_or_else(|e| e.into_inner());
    let mut conns = inner.conns.lock().unwrap_or_else(|e| e.into_inner());
    match (reader, writer) {
        (Ok(r), Ok(w)) => {
            threads.push(r);
            threads.push(w);
            conns.push((shutdown_half, writer_queue));
        }
        _ => writer_queue.close(),
    }
}

/// Decodes and dispatches frames until EOF, a protocol violation or server
/// shutdown.
fn reader_loop(inner: &Arc<ServerInner>, mut sock: Sock, writer: &Arc<FrameQueue>) {
    let conn = Arc::new(ConnShared {
        inflight: std::sync::Mutex::new(HashSet::new()),
    });
    let mut tenant: Option<String> = None;
    let mut sessions: HashSet<u32> = HashSet::new();
    loop {
        let frame = match read_frame(&mut sock) {
            Ok(Some(frame)) => frame,
            // Clean EOF: client closed the connection.
            Ok(None) => return,
            Err(error) => {
                // Frame-level violation: report and close the connection.
                writer.push_wait(
                    Message::Error {
                        code: ErrorCode::BadFrame.as_u16(),
                        message: error.to_string(),
                    }
                    .encode(0),
                );
                return;
            }
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            writer.push_wait(
                Message::Error {
                    code: ErrorCode::ShuttingDown.as_u16(),
                    message: "server is shutting down".into(),
                }
                .encode(frame.session),
            );
            return;
        }
        let message = match Message::decode(&frame) {
            Ok(message) => message,
            Err(error) => {
                writer.push_wait(
                    Message::Error {
                        code: ErrorCode::BadFrame.as_u16(),
                        message: error.to_string(),
                    }
                    .encode(frame.session),
                );
                return;
            }
        };
        match message {
            Message::Hello { version, tenant: t } => {
                if version != crate::protocol::PROTOCOL_VERSION {
                    writer.push_wait(
                        Message::Error {
                            code: ErrorCode::UnsupportedVersion.as_u16(),
                            message: format!(
                                "server speaks protocol version {}, client sent {version}",
                                crate::protocol::PROTOCOL_VERSION
                            ),
                        }
                        .encode(0),
                    );
                    return;
                }
                tenant = Some(t);
                writer.push_wait(
                    Message::Welcome {
                        version: crate::protocol::PROTOCOL_VERSION,
                        session_limit: inner.config.max_sessions_per_conn,
                    }
                    .encode(0),
                );
            }
            Message::Query(request) => {
                let Some(tenant) = tenant.as_deref() else {
                    writer.push_wait(
                        Message::Error {
                            code: ErrorCode::BadFrame.as_u16(),
                            message: "QUERY before HELLO handshake".into(),
                        }
                        .encode(frame.session),
                    );
                    return;
                };
                if !sessions.contains(&frame.session) {
                    if sessions.len() as u32 >= inner.config.max_sessions_per_conn {
                        writer.push_wait(
                            Message::Error {
                                code: ErrorCode::SessionLimit.as_u16(),
                                message: format!(
                                    "connection reached its limit of {} sessions",
                                    inner.config.max_sessions_per_conn
                                ),
                            }
                            .encode(frame.session),
                        );
                        continue;
                    }
                    sessions.insert(frame.session);
                }
                if !conn
                    .inflight
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(frame.session)
                {
                    writer.push_wait(
                        Message::Error {
                            code: ErrorCode::BadQuery.as_u16(),
                            message: "session already has a query in flight".into(),
                        }
                        .encode(frame.session),
                    );
                    continue;
                }
                let pending = PendingQuery {
                    request,
                    session: frame.session,
                    writer: Arc::clone(writer),
                    slot: SessionSlot {
                        conn: Arc::clone(&conn),
                        session: frame.session,
                    },
                };
                if let Submit::Shed(code, reason) = inner.submit(tenant, pending) {
                    writer.push_wait(
                        Message::Error {
                            code: code.as_u16(),
                            message: reason.into(),
                        }
                        .encode(frame.session),
                    );
                }
            }
            Message::Goodbye => {
                sessions.remove(&frame.session);
            }
            Message::Ping => {
                writer.push_wait(Message::Pong.encode(frame.session));
            }
            // Server-to-client kinds arriving at the server are violations.
            Message::Welcome { .. }
            | Message::ResultGroup(_)
            | Message::ResultDone { .. }
            | Message::Error { .. }
            | Message::Pong => {
                writer.push_wait(
                    Message::Error {
                        code: ErrorCode::BadFrame.as_u16(),
                        message: "client sent a server-to-client frame kind".into(),
                    }
                    .encode(frame.session),
                );
                return;
            }
        }
    }
}
