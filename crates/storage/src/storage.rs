//! The storage facade: catalog + snapshots + page contents.
//!
//! [`Storage`] is the single object the execution engine and the buffer
//! managers talk to. It owns the catalog, the snapshot store (master
//! snapshot per table, transaction-local snapshots for appends, checkpoint
//! images) and the page contents. Base table pages are materialized lazily
//! from deterministic generators; pages created by appends or checkpoints
//! store their values explicitly.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use scanshare_common::sync::RwLock;

use scanshare_common::{Error, PageId, RangeList, Result, SnapshotId, TableId, TupleRange};

use crate::catalog::{Catalog, TableEntry};
use crate::datagen::{DataGen, Value};
use crate::layout::TableLayout;
use crate::segment::{self, FileStore};
use crate::snapshot::{NewPage, Snapshot, SnapshotStore};
use crate::table::TableSpec;
use crate::zone::{ZoneMap, ZonePredicate};

/// The materialized contents of one page of one column.
#[derive(Debug, Clone)]
pub struct PageData {
    /// The page id.
    pub page: PageId,
    /// The SID range the values cover.
    pub sid_range: TupleRange,
    /// One value per SID in `sid_range`.
    pub values: Arc<Vec<Value>>,
}

impl PageData {
    /// Value of `sid`, if the page covers it.
    pub fn value(&self, sid: u64) -> Option<Value> {
        if self.sid_range.contains(sid) {
            self.values
                .get((sid - self.sid_range.start) as usize)
                .copied()
        } else {
            None
        }
    }
}

#[derive(Debug)]
struct Inner {
    catalog: Catalog,
    snapshots: SnapshotStore,
    /// Explicitly stored page contents (appended / checkpointed pages).
    page_data: HashMap<PageId, Arc<Vec<Value>>>,
    /// Per table: one generator per column for base data.
    datagens: HashMap<TableId, Vec<DataGen>>,
    /// Per table: the WAL sequence number covered by the durable on-disk
    /// image (from the manifest on reopen, updated on materialization).
    wal_seqs: HashMap<TableId, u64>,
    /// Per snapshot: chunk-granular min/max zone metadata used for data
    /// skipping. Keyed by snapshot id because every checkpoint or append
    /// produces a new image with its own (rebuilt or widened) zones.
    zones: HashMap<SnapshotId, Arc<ZoneMap>>,
    seed: u64,
}

/// Shared storage engine.
#[derive(Debug)]
pub struct Storage {
    inner: RwLock<Inner>,
    /// On-disk segment store, present once a table has been materialized
    /// (or the storage was opened cold from a directory).
    file_store: RwLock<Option<Arc<FileStore>>>,
    page_size_bytes: u64,
    chunk_tuples: u64,
}

impl Storage {
    /// Creates an empty storage engine.
    pub fn new(page_size_bytes: u64, chunk_tuples: u64) -> Arc<Self> {
        Self::with_seed(page_size_bytes, chunk_tuples, 0x5ca5_5a17)
    }

    /// Creates an empty storage engine with an explicit data-generation seed.
    pub fn with_seed(page_size_bytes: u64, chunk_tuples: u64, seed: u64) -> Arc<Self> {
        Arc::new(Self {
            inner: RwLock::new(Inner {
                catalog: Catalog::new(page_size_bytes, chunk_tuples),
                snapshots: SnapshotStore::new(),
                page_data: HashMap::new(),
                datagens: HashMap::new(),
                wal_seqs: HashMap::new(),
                zones: HashMap::new(),
                seed,
            }),
            file_store: RwLock::new(None),
            page_size_bytes,
            chunk_tuples,
        })
    }

    /// Materializes the current master snapshot of `table` as on-disk column
    /// segments in `dir` and registers the pages with the storage's
    /// [`FileStore`] (creating it if this is the first materialization).
    ///
    /// Whatever the snapshot serves in memory — generated base data,
    /// appended pages, checkpoint images — is exactly what lands on disk, so
    /// the call works mid-workload on a freshly installed checkpoint too.
    /// Re-materializing a table replaces its previous segments.
    pub fn materialize_table(&self, table: TableId, dir: &Path) -> Result<Arc<FileStore>> {
        let snapshot = self.master_snapshot(table)?;
        self.materialize_snapshot(&snapshot, dir)
    }

    /// Like [`Storage::materialize_table`], but for an explicit snapshot
    /// (e.g. a checkpoint image that is not master yet). Preserves the
    /// table's recorded WAL sequence number.
    pub fn materialize_snapshot(&self, snapshot: &Snapshot, dir: &Path) -> Result<Arc<FileStore>> {
        let wal_seq = self.durable_wal_seq(snapshot.table());
        self.materialize_snapshot_logged(snapshot, dir, wal_seq)
    }

    /// Like [`Storage::materialize_snapshot`], but stamps the manifest with
    /// the WAL sequence number the image covers: on recovery, commit
    /// records with a per-table sequence at or below `wal_seq` are already
    /// folded into the segments and are skipped during replay.
    pub fn materialize_snapshot_logged(
        &self,
        snapshot: &Snapshot,
        dir: &Path,
        wal_seq: u64,
    ) -> Result<Arc<FileStore>> {
        let layout = self.layout(snapshot.table())?;
        let version = segment::write_table(self, &layout, snapshot, dir, wal_seq)?;
        let store = {
            let mut slot = self.file_store.write();
            match slot.as_ref() {
                Some(existing) if existing.dir() == dir => Arc::clone(existing),
                _ => {
                    let fresh = Arc::new(FileStore::new(dir));
                    *slot = Some(Arc::clone(&fresh));
                    fresh
                }
            }
        };
        store.register_table(&layout, snapshot, version)?;
        self.inner
            .write()
            .wal_seqs
            .insert(snapshot.table(), wal_seq);
        Ok(store)
    }

    /// The WAL sequence number covered by the table's durable on-disk image
    /// (`0` if the table was never materialized with a WAL sequence).
    pub fn durable_wal_seq(&self, table: TableId) -> u64 {
        self.inner.read().wal_seqs.get(&table).copied().unwrap_or(0)
    }

    /// Whether `dir` holds a durable manifest for `table` (used by the
    /// engine to decide which tables still need a first materialization
    /// when durability is enabled).
    pub fn table_is_materialized(&self, table: TableId, dir: &Path) -> Result<bool> {
        let entry = self.table(table)?;
        Ok(dir
            .join(segment::manifest_file_name(&entry.spec.name))
            .exists())
    }

    /// The on-disk segment store, if any table has been materialized (or the
    /// storage was opened cold). The real-file I/O device is built over this
    /// handle.
    pub fn file_store(&self) -> Option<Arc<FileStore>> {
        self.file_store.read().clone()
    }

    /// Reopens a directory of materialized tables cold: a brand-new storage
    /// whose catalog, snapshots and page ids are reconstructed purely from
    /// the manifests, with every page served from the segment files.
    ///
    /// The manifests record the materialized snapshots' page ids verbatim
    /// and the reopened master snapshots reference those same ids, so
    /// `Snapshot::page` keeps mapping to the same on-disk slots and I/O
    /// traces are comparable across the round trip. Tables are created in
    /// manifest-file-name order, so table ids are deterministic.
    pub fn open_directory(dir: &Path) -> Result<Arc<Self>> {
        let manifests = segment::read_manifests(dir)?;
        let first = manifests
            .first()
            .ok_or_else(|| Error::io(format!("{}: no table manifests found", dir.display())))?;
        let (page_size, chunk_tuples) = (first.page_size, first.chunk_tuples);
        if manifests
            .iter()
            .any(|m| m.page_size != page_size || m.chunk_tuples != chunk_tuples)
        {
            return Err(Error::io(format!(
                "{}: manifests disagree on page size or chunk granularity",
                dir.display()
            )));
        }
        let storage = Self::with_seed(page_size, chunk_tuples, 0);
        let store = Arc::new(FileStore::new(dir));
        for manifest in manifests {
            let (version, wal_seq) = (manifest.version, manifest.wal_seq);
            let spec = TableSpec::new(
                manifest.name.clone(),
                manifest.columns.clone(),
                manifest.stable_tuples,
            );
            let (layout, snapshot) = {
                let mut inner = storage.inner.write();
                let id = inner.catalog.create_table(spec)?;
                // Manifests that record their original table id must get it
                // back: WAL commit records reference tables by id, so an id
                // shuffle would silently replay updates onto the wrong
                // table.
                if manifest.table_id.is_some_and(|want| want != id.raw()) {
                    return Err(Error::io(format!(
                        "{}: table {} was materialized as id {} but reopened as {}; the \
                         directory is missing the manifests of earlier tables",
                        dir.display(),
                        manifest.name,
                        manifest.table_id.unwrap_or_default(),
                        id.raw()
                    )));
                }
                let layout = inner.catalog.layout(id)?;
                let snapshot = inner.snapshots.install_snapshot(
                    id,
                    manifest.column_pages.clone(),
                    manifest.stable_tuples,
                );
                inner.wal_seqs.insert(id, wal_seq);
                // Restore persisted zone metadata so cold reopens keep
                // pruning exactly like the engine that wrote the manifest.
                if !manifest.zones.is_empty() {
                    inner.zones.insert(
                        snapshot.id(),
                        Arc::new(ZoneMap::from_entries(chunk_tuples, manifest.zones.clone())),
                    );
                }
                (layout, snapshot)
            };
            for (col, pages) in manifest.column_pages.iter().enumerate() {
                let expected = layout.pages_for_tuples(col, manifest.stable_tuples);
                if pages.len() as u64 != expected {
                    return Err(Error::io(format!(
                        "{}: table {} column {col} lists {} pages but its layout needs {expected}",
                        dir.display(),
                        manifest.name,
                        pages.len()
                    )));
                }
            }
            store.register_table(&layout, &snapshot, version)?;
        }
        *storage.file_store.write() = Some(store);
        Ok(storage)
    }

    /// Page size in bytes (uniform across the engine).
    pub fn page_size_bytes(&self) -> u64 {
        self.page_size_bytes
    }

    /// Chunk granularity in tuples.
    pub fn chunk_tuples(&self) -> u64 {
        self.chunk_tuples
    }

    /// Creates a table with default generators (uniform values per column).
    pub fn create_table(self: &Arc<Self>, spec: TableSpec) -> Result<TableId> {
        let gens = spec
            .columns
            .iter()
            .map(|_| DataGen::Uniform {
                min: 0,
                max: 10_000,
            })
            .collect();
        self.create_table_with_data(spec, gens)
    }

    /// Creates a table whose base data is produced by the given generators
    /// (one per column).
    pub fn create_table_with_data(
        self: &Arc<Self>,
        spec: TableSpec,
        generators: Vec<DataGen>,
    ) -> Result<TableId> {
        if generators.len() != spec.columns.len() {
            return Err(Error::config(format!(
                "table {} has {} columns but {} generators were supplied",
                spec.name,
                spec.columns.len(),
                generators.len()
            )));
        }
        let stable = spec.base_tuples;
        let mut inner = self.inner.write();
        let id = inner.catalog.create_table(spec)?;
        let layout = inner.catalog.layout(id)?;
        let snapshot_id = inner.snapshots.allocate_snapshot_id();
        inner.snapshots.create_base_snapshot(&layout, snapshot_id);
        // Zone metadata of the base image, straight from the generators:
        // O(chunks), conservative where a generator is pseudo-random.
        let entries = generators
            .iter()
            .map(|gen| {
                (0..stable.div_ceil(self.chunk_tuples))
                    .map(|chunk| {
                        let first = chunk * self.chunk_tuples;
                        let last = ((chunk + 1) * self.chunk_tuples).min(stable) - 1;
                        gen.zone_entry(first, last)
                    })
                    .collect()
            })
            .collect();
        inner.zones.insert(
            snapshot_id,
            Arc::new(ZoneMap::from_entries(self.chunk_tuples, entries)),
        );
        inner.datagens.insert(id, generators);
        Ok(id)
    }

    /// Looks up a table entry by name.
    pub fn table_by_name(&self, name: &str) -> Result<Arc<TableEntry>> {
        Ok(Arc::clone(self.inner.read().catalog.table_by_name(name)?))
    }

    /// Looks up a table entry by id.
    pub fn table(&self, id: TableId) -> Result<Arc<TableEntry>> {
        Ok(Arc::clone(self.inner.read().catalog.table(id)?))
    }

    /// The layout helper of a table.
    pub fn layout(&self, id: TableId) -> Result<Arc<TableLayout>> {
        self.inner.read().catalog.layout(id)
    }

    /// Resolves column names to indices.
    pub fn resolve_columns(&self, table: TableId, names: &[&str]) -> Result<Vec<usize>> {
        self.inner.read().catalog.resolve_columns(table, names)
    }

    /// Ids of all tables currently in the catalog.
    pub fn table_ids(&self) -> Vec<TableId> {
        self.inner.read().catalog.tables().map(|t| t.id).collect()
    }

    /// The zone metadata of a snapshot, if any was recorded for it.
    pub fn zone_map(&self, snapshot: SnapshotId) -> Option<Arc<ZoneMap>> {
        self.inner.read().zones.get(&snapshot).cloned()
    }

    /// Intersects a scan's SID `ranges` with the chunks of `snapshot` that
    /// can satisfy `pred`, returning the pruned ranges and the number of
    /// tuples skipped. Snapshots without zone metadata prune nothing.
    ///
    /// Both executors (engine and simulator) route their skipping decisions
    /// through this one helper so the pruned sets — and therefore every
    /// downstream ABM relevance and PBM prediction — are byte-identical.
    pub fn prune_sid_ranges(
        &self,
        snapshot: &Snapshot,
        pred: &ZonePredicate,
        ranges: &RangeList,
    ) -> (RangeList, u64) {
        let Some(zones) = self.zone_map(snapshot.id()) else {
            return (ranges.clone(), 0);
        };
        let survivors = zones.surviving_ranges(pred, snapshot.stable_tuples());
        let pruned = ranges.intersect(&survivors);
        let skipped = ranges.total_tuples() - pruned.total_tuples();
        (pruned, skipped)
    }

    /// The current master snapshot of a table.
    pub fn master_snapshot(&self, table: TableId) -> Result<Arc<Snapshot>> {
        self.inner.read().snapshots.master(table)
    }

    /// Looks up any registered snapshot by id.
    pub fn snapshot(&self, id: SnapshotId) -> Result<Arc<Snapshot>> {
        self.inner.read().snapshots.snapshot(id)
    }

    /// Starts an append transaction against the current master snapshot of
    /// `table`.
    pub fn begin_append(self: &Arc<Self>, table: TableId) -> Result<AppendTransaction> {
        let inner = self.inner.read();
        let master = inner.snapshots.master(table)?;
        Ok(AppendTransaction {
            storage: Arc::clone(self),
            table,
            base_master: master.id(),
            working: master,
            open: true,
        })
    }

    /// Materializes one page of one column under a snapshot.
    pub fn read_page(
        &self,
        layout: &TableLayout,
        snapshot: &Snapshot,
        col: usize,
        page_index: u64,
    ) -> Result<PageData> {
        let page = snapshot
            .page(col, page_index)
            .ok_or_else(|| Error::internal(format!("column {col} has no page {page_index}")))?;
        let sid_range = layout.sid_range_of_page(col, page_index, snapshot.stable_tuples());
        let inner = self.inner.read();
        if let Some(values) = inner.page_data.get(&page) {
            return Ok(PageData {
                page,
                sid_range,
                values: Arc::clone(values),
            });
        }
        // File-backed page: decode-cache hit if the I/O device already read
        // it, synchronous segment read otherwise — correctness never depends
        // on the device having been asked first.
        if let Some(store) = self.file_store.read().as_ref() {
            if let Some(values) = store
                .page_values(page)
                .map_err(|e| Error::io(format!("reading page {page}: {e}")))?
            {
                debug_assert_eq!(values.len() as u64, sid_range.len());
                return Ok(PageData {
                    page,
                    sid_range,
                    values,
                });
            }
        }
        // Base page: materialize from the generator.
        let gens = inner
            .datagens
            .get(&layout.table())
            .ok_or_else(|| Error::UnknownTable(layout.table()))?;
        let gen = gens.get(col).copied().unwrap_or(DataGen::Constant(0));
        let seed = inner.seed ^ ((layout.table().raw() as u64) << 32) ^ col as u64;
        let values = Arc::new(gen.materialize(seed, sid_range.start, sid_range.end));
        Ok(PageData {
            page,
            sid_range,
            values,
        })
    }

    /// Convenience: reads the values of a column over a SID range (crossing
    /// page boundaries as needed).
    pub fn read_range(
        &self,
        layout: &TableLayout,
        snapshot: &Snapshot,
        col: usize,
        range: TupleRange,
    ) -> Result<Vec<Value>> {
        let clamped = range.intersect(&TupleRange::new(0, snapshot.stable_tuples()));
        let mut out = Vec::with_capacity(clamped.len() as usize);
        if clamped.is_empty() {
            return Ok(out);
        }
        let (first, last) = layout
            .page_index_range(col, &clamped)
            .ok_or_else(|| Error::internal("empty range after clamping"))?;
        for idx in first..=last {
            let data = self.read_page(layout, snapshot, col, idx)?;
            let covered = data.sid_range.intersect(&clamped);
            for sid in covered.start..covered.end {
                out.push(data.value(sid).expect("page covers sid"));
            }
        }
        Ok(out)
    }

    /// Installs a checkpoint image of `table`: a brand-new set of pages
    /// holding `new_tuples` tuples. When `values` is provided it must
    /// contain one vector per column with exactly `new_tuples` entries; when
    /// it is `None` only the metadata is installed (sufficient for
    /// simulation-level experiments).
    ///
    /// The new snapshot becomes the master snapshot; older snapshots remain
    /// readable by transactions that still hold them.
    pub fn install_checkpoint(
        &self,
        table: TableId,
        new_tuples: u64,
        values: Option<Vec<Vec<Value>>>,
    ) -> Result<Arc<Snapshot>> {
        self.install_checkpoint_impl(table, None, new_tuples, values)
    }

    /// Like [`Storage::install_checkpoint`], but only if the table's master
    /// snapshot is still `expected_master` — the compare-and-swap form a
    /// checkpointer uses so a bulk append that committed while the
    /// checkpoint materialized is never silently overwritten (the append
    /// wins; the checkpoint fails with [`Error::TransactionConflict`] and
    /// can be retried against the new image).
    pub fn install_checkpoint_from(
        &self,
        table: TableId,
        expected_master: SnapshotId,
        new_tuples: u64,
        values: Option<Vec<Vec<Value>>>,
    ) -> Result<Arc<Snapshot>> {
        self.install_checkpoint_impl(table, Some(expected_master), new_tuples, values)
    }

    fn install_checkpoint_impl(
        &self,
        table: TableId,
        expected_master: Option<SnapshotId>,
        new_tuples: u64,
        values: Option<Vec<Vec<Value>>>,
    ) -> Result<Arc<Snapshot>> {
        let mut inner = self.inner.write();
        if let Some(expected) = expected_master {
            let current = inner.snapshots.master_id(table)?;
            if current != expected {
                return Err(Error::TransactionConflict(format!(
                    "table {table}: master snapshot changed from {expected} to {current} while \
                     the checkpoint materialized (a concurrent bulk append committed; retry the \
                     checkpoint against the new image)"
                )));
            }
        }
        let layout = inner.catalog.layout(table)?;
        if let Some(v) = &values {
            if v.len() != layout.column_count() {
                return Err(Error::config("checkpoint values must cover every column"));
            }
            if v.iter().any(|col| col.len() as u64 != new_tuples) {
                return Err(Error::config(
                    "checkpoint column lengths must equal new_tuples",
                ));
            }
        }
        let (snapshot, new_pages) = inner.snapshots.derive_checkpoint(&layout, new_tuples);
        // A value-carrying checkpoint rebuilds exact zone metadata from the
        // merged data (this is how PDT-touched chunks get fresh bounds on
        // absorb); a metadata-only checkpoint installs no zones, so scans of
        // the new image simply never prune — conservative and safe.
        let zones = values
            .as_ref()
            .map(|v| Arc::new(ZoneMap::from_values(self.chunk_tuples, v)));
        if let Some(values) = values {
            store_new_page_data(&mut inner.page_data, &new_pages, |col, sid| {
                values[col][sid as usize]
            });
        }
        let arc = inner.snapshots.register(snapshot);
        if let Some(zones) = zones {
            inner.zones.insert(arc.id(), zones);
        }
        inner.snapshots.set_master(arc.id())?;
        Ok(arc)
    }

    /// Internal: total pages currently referenced by the master snapshots
    /// (useful for sanity checks in tests).
    pub fn master_page_count(&self, table: TableId) -> Result<usize> {
        Ok(self.master_snapshot(table)?.total_pages())
    }

    fn commit_append(
        &self,
        table: TableId,
        base_master: SnapshotId,
        working: &Arc<Snapshot>,
    ) -> Result<Arc<Snapshot>> {
        let mut inner = self.inner.write();
        let current_master = inner.snapshots.master_id(table)?;
        if current_master != base_master {
            return Err(Error::TransactionConflict(format!(
                "table {table}: master snapshot changed from {base_master} to {current_master} \
                 while the append transaction was running"
            )));
        }
        inner.snapshots.set_master(working.id())?;
        Ok(Arc::clone(working))
    }

    fn append_to_snapshot(
        &self,
        table: TableId,
        working: &Snapshot,
        rows: &[Vec<Value>],
    ) -> Result<Arc<Snapshot>> {
        let mut inner = self.inner.write();
        let layout = inner.catalog.layout(table)?;
        if rows.len() != layout.column_count() {
            return Err(Error::config(format!(
                "append must provide {} columns, got {}",
                layout.column_count(),
                rows.len()
            )));
        }
        let added = rows.first().map(|c| c.len()).unwrap_or(0) as u64;
        if rows.iter().any(|c| c.len() as u64 != added) {
            return Err(Error::config("append columns must have equal lengths"));
        }
        let (snapshot, new_pages) = inner.snapshots.derive_append(&layout, working, added);
        let old_tuples = working.stable_tuples();
        let file_store = self.file_store.read().clone();

        // Materialize data for the new pages: existing tuples come from the
        // parent snapshot, appended tuples from `rows`.
        let mut existing: Vec<HashMap<u64, Value>> = vec![HashMap::new(); layout.column_count()];
        {
            // Collect the old values needed for rewritten partial pages.
            for np in &new_pages {
                let overlap = np.sid_range.intersect(&TupleRange::new(0, old_tuples));
                if overlap.is_empty() {
                    continue;
                }
                let col = np.column_index;
                let (first, last) = layout
                    .page_index_range(col, &overlap)
                    .expect("non-empty overlap maps to pages");
                for idx in first..=last {
                    let page = working.page(col, idx).expect("parent page exists");
                    let sid_range = layout.sid_range_of_page(col, idx, old_tuples);
                    let values = if let Some(v) = inner.page_data.get(&page) {
                        Arc::clone(v)
                    } else if let Some(v) = file_store
                        .as_ref()
                        .map(|store| store.page_values(page))
                        .transpose()
                        .map_err(|e| Error::io(format!("reading page {page}: {e}")))?
                        .flatten()
                    {
                        v
                    } else {
                        let gens = inner
                            .datagens
                            .get(&table)
                            .ok_or(Error::UnknownTable(table))?;
                        let gen = gens.get(col).copied().unwrap_or(DataGen::Constant(0));
                        let seed = inner.seed ^ ((table.raw() as u64) << 32) ^ col as u64;
                        Arc::new(gen.materialize(seed, sid_range.start, sid_range.end))
                    };
                    for sid in overlap.start.max(sid_range.start)..overlap.end.min(sid_range.end) {
                        existing[col].insert(sid, values[(sid - sid_range.start) as usize]);
                    }
                }
            }
        }
        store_new_page_data(&mut inner.page_data, &new_pages, |col, sid| {
            if sid < old_tuples {
                *existing[col]
                    .get(&sid)
                    .expect("old value collected for rewritten page")
            } else {
                rows[col][(sid - old_tuples) as usize]
            }
        });
        // Inherit the parent snapshot's zone metadata, widened by the
        // appended rows (the last partial chunk absorbs them; fresh chunks
        // get exact entries). Parents without zones stay zone-less.
        let widened = inner.zones.get(&working.id()).map(|parent| {
            let mut zones = (**parent).clone();
            zones.widen_append(old_tuples, rows);
            Arc::new(zones)
        });
        let arc = inner.snapshots.register(snapshot);
        if let Some(zones) = widened {
            inner.zones.insert(arc.id(), zones);
        }
        Ok(arc)
    }
}

/// Stores values for freshly allocated pages using `value_of(col, sid)`.
fn store_new_page_data(
    page_data: &mut HashMap<PageId, Arc<Vec<Value>>>,
    new_pages: &[NewPage],
    value_of: impl Fn(usize, u64) -> Value,
) {
    for np in new_pages {
        let values: Vec<Value> = (np.sid_range.start..np.sid_range.end)
            .map(|sid| value_of(np.column_index, sid))
            .collect();
        page_data.insert(np.page, Arc::new(values));
    }
}

/// A bulk-append transaction (the paper's `Append` operator followed by
/// `Commit`, Figure 5).
///
/// The transaction works on its own snapshot, which is registered with the
/// snapshot store immediately so that scans inside the same transaction (and
/// the Active Buffer Manager) can reference it before commit. Only one of
/// several concurrent appenders to the same table can commit; the others
/// fail with [`Error::TransactionConflict`].
#[derive(Debug)]
pub struct AppendTransaction {
    storage: Arc<Storage>,
    table: TableId,
    base_master: SnapshotId,
    working: Arc<Snapshot>,
    open: bool,
}

impl AppendTransaction {
    /// The table the transaction appends to.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// The snapshot this transaction currently sees (its own appends
    /// included).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.working)
    }

    /// Appends a batch of rows given column-major (`rows[col][i]`).
    pub fn append_rows(&mut self, rows: &[Vec<Value>]) -> Result<()> {
        if !self.open {
            return Err(Error::TransactionClosed);
        }
        self.working = self
            .storage
            .append_to_snapshot(self.table, &self.working, rows)?;
        Ok(())
    }

    /// Commits the transaction, promoting its snapshot to master.
    pub fn commit(mut self) -> Result<Arc<Snapshot>> {
        if !self.open {
            return Err(Error::TransactionClosed);
        }
        self.open = false;
        self.storage
            .commit_append(self.table, self.base_master, &self.working)
    }

    /// Aborts the transaction. Its snapshot stays registered (other
    /// components may still hold references) but never becomes master.
    pub fn abort(mut self) {
        self.open = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{ColumnSpec, ColumnType};
    use scanshare_common::RangeList;

    fn small_storage() -> Arc<Storage> {
        Storage::with_seed(1024, 1000, 7)
    }

    fn two_col_spec(base: u64) -> TableSpec {
        TableSpec::new(
            "t",
            vec![
                ColumnSpec::with_width("a", ColumnType::Int64, 8.0),
                ColumnSpec::with_width("b", ColumnType::Int64, 4.0),
            ],
            base,
        )
    }

    #[test]
    fn create_table_and_read_base_data() {
        let storage = small_storage();
        let id = storage
            .create_table_with_data(
                two_col_spec(1000),
                vec![
                    DataGen::Sequential { start: 0, step: 1 },
                    DataGen::Constant(5),
                ],
            )
            .unwrap();
        let layout = storage.layout(id).unwrap();
        let snap = storage.master_snapshot(id).unwrap();
        let a = storage
            .read_range(&layout, &snap, 0, TupleRange::new(100, 105))
            .unwrap();
        assert_eq!(a, vec![100, 101, 102, 103, 104]);
        let b = storage
            .read_range(&layout, &snap, 1, TupleRange::new(0, 3))
            .unwrap();
        assert_eq!(b, vec![5, 5, 5]);
    }

    #[test]
    fn read_range_is_clamped_to_table_size() {
        let storage = small_storage();
        let id = storage.create_table(two_col_spec(100)).unwrap();
        let layout = storage.layout(id).unwrap();
        let snap = storage.master_snapshot(id).unwrap();
        let v = storage
            .read_range(&layout, &snap, 0, TupleRange::new(90, 500))
            .unwrap();
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn generator_count_must_match_columns() {
        let storage = small_storage();
        let err = storage
            .create_table_with_data(two_col_spec(10), vec![DataGen::Constant(1)])
            .unwrap_err();
        assert!(err.to_string().contains("generators"));
    }

    #[test]
    fn append_commit_changes_master_and_preserves_data() {
        let storage = small_storage();
        let id = storage
            .create_table_with_data(
                two_col_spec(1000),
                vec![
                    DataGen::Sequential { start: 0, step: 1 },
                    DataGen::Constant(5),
                ],
            )
            .unwrap();
        let layout = storage.layout(id).unwrap();
        let before = storage.master_snapshot(id).unwrap();

        let mut tx = storage.begin_append(id).unwrap();
        tx.append_rows(&[vec![-1, -2, -3], vec![50, 51, 52]])
            .unwrap();
        // The transaction sees its own appended rows before commit.
        let local = tx.snapshot();
        assert_eq!(local.stable_tuples(), 1003);
        let tail = storage
            .read_range(&layout, &local, 0, TupleRange::new(1000, 1003))
            .unwrap();
        assert_eq!(tail, vec![-1, -2, -3]);
        // Old values on the rewritten partial page are preserved.
        let old = storage
            .read_range(&layout, &local, 0, TupleRange::new(995, 1000))
            .unwrap();
        assert_eq!(old, vec![995, 996, 997, 998, 999]);

        // Other transactions still see the old master until commit.
        assert_eq!(storage.master_snapshot(id).unwrap().id(), before.id());
        let committed = tx.commit().unwrap();
        assert_eq!(storage.master_snapshot(id).unwrap().id(), committed.id());
    }

    #[test]
    fn conflicting_appends_abort_the_second_committer() {
        let storage = small_storage();
        let id = storage.create_table(two_col_spec(1000)).unwrap();
        let mut t1 = storage.begin_append(id).unwrap();
        let mut t2 = storage.begin_append(id).unwrap();
        t1.append_rows(&[vec![1], vec![1]]).unwrap();
        t2.append_rows(&[vec![2], vec![2]]).unwrap();
        t2.commit().unwrap();
        let err = t1.commit().unwrap_err();
        assert!(matches!(err, Error::TransactionConflict(_)));
    }

    #[test]
    fn aborted_append_never_becomes_master() {
        let storage = small_storage();
        let id = storage.create_table(two_col_spec(1000)).unwrap();
        let before = storage.master_snapshot(id).unwrap().id();
        let mut tx = storage.begin_append(id).unwrap();
        tx.append_rows(&[vec![1, 2], vec![3, 4]]).unwrap();
        tx.abort();
        assert_eq!(storage.master_snapshot(id).unwrap().id(), before);
    }

    #[test]
    fn append_after_commit_is_rejected() {
        let storage = small_storage();
        let id = storage.create_table(two_col_spec(10)).unwrap();
        let tx = storage.begin_append(id).unwrap();
        let snapshot = tx.snapshot();
        tx.commit().unwrap();
        // a second transaction object for the same base would conflict only
        // if masters changed; committing an empty append keeps the master.
        assert_eq!(storage.master_snapshot(id).unwrap().id(), snapshot.id());
    }

    #[test]
    fn mismatched_append_shapes_are_rejected() {
        let storage = small_storage();
        let id = storage.create_table(two_col_spec(10)).unwrap();
        let mut tx = storage.begin_append(id).unwrap();
        assert!(tx.append_rows(&[vec![1]]).is_err());
        assert!(tx.append_rows(&[vec![1], vec![2, 3]]).is_err());
    }

    #[test]
    fn checkpoint_installs_fresh_pages_and_new_master() {
        let storage = small_storage();
        let id = storage
            .create_table_with_data(
                two_col_spec(1000),
                vec![
                    DataGen::Sequential { start: 0, step: 1 },
                    DataGen::Constant(5),
                ],
            )
            .unwrap();
        let layout = storage.layout(id).unwrap();
        let old = storage.master_snapshot(id).unwrap();
        let new_vals = vec![(0..900).map(|i| i * 2).collect::<Vec<i64>>(), vec![9; 900]];
        let ckpt = storage.install_checkpoint(id, 900, Some(new_vals)).unwrap();
        assert_eq!(storage.master_snapshot(id).unwrap().id(), ckpt.id());
        assert_eq!(old.common_prefix_pages(&ckpt).iter().sum::<usize>(), 0);
        let v = storage
            .read_range(&layout, &ckpt, 0, TupleRange::new(10, 13))
            .unwrap();
        assert_eq!(v, vec![20, 22, 24]);
        // The old snapshot still reads its original data.
        let v_old = storage
            .read_range(&layout, &old, 0, TupleRange::new(10, 13))
            .unwrap();
        assert_eq!(v_old, vec![10, 11, 12]);
    }

    #[test]
    fn checkpoint_value_shape_is_validated() {
        let storage = small_storage();
        let id = storage.create_table(two_col_spec(10)).unwrap();
        assert!(storage
            .install_checkpoint(id, 5, Some(vec![vec![1; 5]]))
            .is_err());
        assert!(storage
            .install_checkpoint(id, 5, Some(vec![vec![1; 4], vec![1; 5]]))
            .is_err());
        assert!(storage.install_checkpoint(id, 5, None).is_ok());
    }

    #[test]
    fn base_tables_get_zone_maps_and_prune_clustered_columns() {
        use crate::zone::{ZoneOp, ZonePredicate};
        let storage = small_storage();
        let id = storage
            .create_table_with_data(
                two_col_spec(10_000),
                vec![
                    DataGen::Sequential { start: 0, step: 1 },
                    DataGen::Uniform { min: 0, max: 100 },
                ],
            )
            .unwrap();
        let snap = storage.master_snapshot(id).unwrap();
        assert!(storage.zone_map(snap.id()).is_some());
        // Clustered column: value < 1000 keeps exactly the first chunk.
        let all = RangeList::single(0, 10_000);
        let (kept, skipped) =
            storage.prune_sid_ranges(&snap, &ZonePredicate::new(0, ZoneOp::Lt, 1000), &all);
        assert_eq!(kept.total_tuples(), 1000);
        assert_eq!(skipped, 9000);
        // Random column: conservative entries keep everything.
        let (kept, skipped) =
            storage.prune_sid_ranges(&snap, &ZonePredicate::new(1, ZoneOp::Eq, 7), &all);
        assert_eq!(kept.total_tuples(), 10_000);
        assert_eq!(skipped, 0);
    }

    #[test]
    fn appends_widen_zones_and_value_checkpoints_rebuild_them() {
        use crate::zone::{ZoneOp, ZonePredicate};
        let storage = small_storage();
        let id = storage
            .create_table_with_data(
                two_col_spec(1000),
                vec![
                    DataGen::Sequential { start: 0, step: 1 },
                    DataGen::Constant(5),
                ],
            )
            .unwrap();
        // Append a value far outside the base range: the predicate that used
        // to prune the tail chunk must now keep it.
        let mut tx = storage.begin_append(id).unwrap();
        tx.append_rows(&[vec![-50], vec![5]]).unwrap();
        let appended = tx.commit().unwrap();
        let zones = storage.zone_map(appended.id()).expect("append keeps zones");
        let pred = ZonePredicate::new(0, ZoneOp::Lt, 0);
        let survivors = zones.surviving_ranges(&pred, appended.stable_tuples());
        assert!(
            survivors.contains(1000),
            "widened tail chunk must survive a value<0 predicate"
        );
        // Base chunk [0, 1000) has min 0 and is still pruned; only the
        // one-tuple tail chunk survives.
        assert_eq!(survivors.total_tuples(), 1);
        // A value-carrying checkpoint rebuilds exact zones.
        let vals = vec![(0..900).map(|i| i * 2).collect::<Vec<i64>>(), vec![9; 900]];
        let ckpt = storage.install_checkpoint(id, 900, Some(vals)).unwrap();
        let zones = storage.zone_map(ckpt.id()).expect("checkpoint rebuilds");
        assert_eq!(zones.entry(0, 0).unwrap().min, 0);
        // A metadata-only checkpoint installs no zones (never prunes).
        let meta = storage.install_checkpoint(id, 900, None).unwrap();
        assert!(storage.zone_map(meta.id()).is_none());
        let all = RangeList::single(0, 900);
        let (kept, skipped) =
            storage.prune_sid_ranges(&meta, &ZonePredicate::new(0, ZoneOp::Eq, -1), &all);
        assert_eq!((kept.total_tuples(), skipped), (900, 0));
    }

    #[test]
    fn scan_page_plan_through_storage_layout() {
        let storage = small_storage();
        let id = storage.create_table(two_col_spec(1000)).unwrap();
        let layout = storage.layout(id).unwrap();
        let snap = storage.master_snapshot(id).unwrap();
        let plan = layout.scan_page_plan(&snap, &[0, 1], &RangeList::single(0, 1000));
        // col a: 8 B/tuple, 128 t/page -> 8 pages; col b: 4 B/tuple, 256 t/page -> 4 pages.
        assert_eq!(plan.distinct_pages(), 12);
        assert_eq!(plan.cold_bytes(1024), 12 * 1024);
    }
}
