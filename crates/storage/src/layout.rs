//! Page layout: translation between tuple positions (SIDs), chunks and pages.
//!
//! The Active Buffer Manager schedules data at *chunk* granularity, where a
//! chunk is a fixed range of consecutive SIDs (hundreds of thousands of
//! tuples). In a column store a chunk is **not** a set of pages: every column
//! has a different compressed width, so the same chunk maps to one page for a
//! narrow column and to thousands of pages for a wide one, and a single page
//! can span several adjacent chunks. This module owns that arithmetic.
//!
//! It also builds the [`ScanPagePlan`] used by Predictive Buffer Management's
//! `RegisterScan` (Figure 9 of the paper): the list of pages a scan will
//! touch, each annotated with the number of tuples the scan must process
//! before it reaches that page.

use std::sync::Arc;

use scanshare_common::{ChunkId, ColumnId, PageId, RangeList, TableId, TupleRange};

use crate::snapshot::Snapshot;
use crate::table::TableSpec;

/// Page-layout metadata for one table.
#[derive(Debug)]
pub struct TableLayout {
    table: TableId,
    spec: TableSpec,
    column_ids: Vec<ColumnId>,
    page_size_bytes: u64,
    chunk_tuples: u64,
    tuples_per_page: Vec<u64>,
}

impl TableLayout {
    /// Creates the layout helper for a table.
    pub fn new(
        table: TableId,
        spec: TableSpec,
        column_ids: Vec<ColumnId>,
        page_size_bytes: u64,
        chunk_tuples: u64,
    ) -> Self {
        assert_eq!(spec.columns.len(), column_ids.len());
        let tuples_per_page = spec
            .columns
            .iter()
            .map(|c| c.tuples_per_page(page_size_bytes))
            .collect();
        Self {
            table,
            spec,
            column_ids,
            page_size_bytes,
            chunk_tuples,
            tuples_per_page,
        }
    }

    /// The table this layout describes.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// The table specification.
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// Global column ids, parallel to `spec().columns`.
    pub fn column_ids(&self) -> &[ColumnId] {
        &self.column_ids
    }

    /// Page size in bytes.
    pub fn page_size_bytes(&self) -> u64 {
        self.page_size_bytes
    }

    /// Chunk granularity in tuples.
    pub fn chunk_tuples(&self) -> u64 {
        self.chunk_tuples
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.spec.columns.len()
    }

    /// Tuples per page for column `col` (index into `spec().columns`).
    pub fn tuples_per_page(&self, col: usize) -> u64 {
        self.tuples_per_page[col]
    }

    /// Number of pages column `col` needs to store `tuples` tuples.
    pub fn pages_for_tuples(&self, col: usize, tuples: u64) -> u64 {
        if tuples == 0 {
            0
        } else {
            tuples.div_ceil(self.tuples_per_page[col])
        }
    }

    /// Page index (within the column's page array) holding `sid`.
    pub fn page_index_for_sid(&self, col: usize, sid: u64) -> u64 {
        sid / self.tuples_per_page[col]
    }

    /// SID range covered by page `page_index` of column `col`, clamped to
    /// `stable_tuples`.
    pub fn sid_range_of_page(&self, col: usize, page_index: u64, stable_tuples: u64) -> TupleRange {
        let tpp = self.tuples_per_page[col];
        let start = page_index * tpp;
        let end = (start + tpp).min(stable_tuples);
        TupleRange::new(start.min(end), end)
    }

    /// Page-index range `[first, last]` (inclusive) covering the SID range
    /// for column `col`, or `None` if the range is empty.
    pub fn page_index_range(&self, col: usize, range: &TupleRange) -> Option<(u64, u64)> {
        if range.is_empty() {
            return None;
        }
        let first = self.page_index_for_sid(col, range.start);
        let last = self.page_index_for_sid(col, range.end - 1);
        Some((first, last))
    }

    /// The chunk containing `sid`.
    pub fn chunk_of_sid(&self, sid: u64) -> ChunkId {
        ChunkId::new((sid / self.chunk_tuples) as u32)
    }

    /// Number of chunks needed for `tuples` tuples.
    pub fn chunk_count(&self, tuples: u64) -> u32 {
        if tuples == 0 {
            0
        } else {
            tuples.div_ceil(self.chunk_tuples) as u32
        }
    }

    /// SID range of a chunk, clamped to `stable_tuples`.
    pub fn chunk_sid_range(&self, chunk: ChunkId, stable_tuples: u64) -> TupleRange {
        let start = chunk.raw() as u64 * self.chunk_tuples;
        let end = (start + self.chunk_tuples).min(stable_tuples);
        TupleRange::new(start.min(end), end)
    }

    /// The chunks overlapping a SID range list, clamped to `stable_tuples`.
    pub fn chunks_for_ranges(&self, ranges: &RangeList, stable_tuples: u64) -> Vec<ChunkId> {
        let mut out = Vec::new();
        for r in ranges.ranges() {
            let clamped = r.intersect(&TupleRange::new(0, stable_tuples));
            if clamped.is_empty() {
                continue;
            }
            let first = clamped.start / self.chunk_tuples;
            let last = (clamped.end - 1) / self.chunk_tuples;
            for c in first..=last {
                let id = ChunkId::new(c as u32);
                if out.last() != Some(&id) {
                    out.push(id);
                }
            }
        }
        out.dedup();
        out
    }

    /// Resolves the pages of `chunk` for the given columns in `snapshot`.
    pub fn pages_for_chunk(
        &self,
        snapshot: &Snapshot,
        columns: &[usize],
        chunk: ChunkId,
    ) -> Vec<PageId> {
        let range = self.chunk_sid_range(chunk, snapshot.stable_tuples());
        let mut out = Vec::new();
        if range.is_empty() {
            return out;
        }
        for &col in columns {
            if let Some((first, last)) = self.page_index_range(col, &range) {
                for idx in first..=last {
                    if let Some(page) = snapshot.page(col, idx) {
                        out.push(page);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Builds a [`ChunkMap`] describing every chunk of `snapshot` for the
    /// given columns.
    pub fn chunk_map(self: &Arc<Self>, snapshot: &Snapshot, columns: &[usize]) -> ChunkMap {
        ChunkMap::build(self, snapshot, columns)
    }

    /// Builds the page plan PBM's `RegisterScan` walks: every page the scan
    /// of `columns` over `ranges` (SID space) will read, in consumption
    /// order, annotated with how many tuples the scan processes before
    /// needing the page.
    pub fn scan_page_plan(
        &self,
        snapshot: &Snapshot,
        columns: &[usize],
        ranges: &RangeList,
    ) -> ScanPagePlan {
        let stable = snapshot.stable_tuples();
        let mut pages = Vec::new();
        for &col in columns {
            let mut tuples_behind: u64 = 0;
            for range in ranges.ranges() {
                let clamped = range.intersect(&TupleRange::new(0, stable));
                if clamped.is_empty() {
                    continue;
                }
                let (first, last) = self
                    .page_index_range(col, &clamped)
                    .expect("non-empty range must map to pages");
                for idx in first..=last {
                    let page_range = self.sid_range_of_page(col, idx, stable);
                    let covered = page_range.intersect(&clamped);
                    if let Some(page_id) = snapshot.page(col, idx) {
                        pages.push(PageDescriptor {
                            page: page_id,
                            column: self.column_ids[col],
                            column_index: col,
                            sid_range: page_range,
                            tuples_behind,
                            tuple_count: covered.len(),
                        });
                    }
                    tuples_behind += covered.len();
                }
            }
        }
        ScanPagePlan {
            table: self.table,
            total_tuples: ranges.total_tuples(),
            pages,
        }
    }

    /// Total bytes occupied by `tuples` tuples across the given columns
    /// (whole pages, as the buffer manager sees them).
    pub fn bytes_for_scan(&self, columns: &[usize], tuples: u64) -> u64 {
        columns
            .iter()
            .map(|&c| self.pages_for_tuples(c, tuples) * self.page_size_bytes)
            .sum()
    }
}

/// One page access of a scan, annotated for PBM registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageDescriptor {
    /// The physical page.
    pub page: PageId,
    /// Global id of the column the page belongs to.
    pub column: ColumnId,
    /// Index of the column within the table spec.
    pub column_index: usize,
    /// SID range stored on the page.
    pub sid_range: TupleRange,
    /// Tuples the scan will process (in this column) before reaching the page.
    pub tuples_behind: u64,
    /// Tuples of the scan's ranges that live on this page.
    pub tuple_count: u64,
}

/// The ordered list of page accesses a scan will perform.
#[derive(Debug, Clone)]
pub struct ScanPagePlan {
    /// Table being scanned.
    pub table: TableId,
    /// Total tuples (per column) the scan covers.
    pub total_tuples: u64,
    /// Page accesses in consumption order, column-major (all pages of the
    /// first column in SID order, then the next column, ...), exactly like
    /// the nested loops of the paper's `RegisterScan` pseudocode.
    pub pages: Vec<PageDescriptor>,
}

impl ScanPagePlan {
    /// Number of distinct pages in the plan.
    pub fn distinct_pages(&self) -> usize {
        let mut ids: Vec<PageId> = self.pages.iter().map(|p| p.page).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Total bytes the plan will read assuming `page_size_bytes` pages and
    /// a cold buffer pool.
    pub fn cold_bytes(&self, page_size_bytes: u64) -> u64 {
        self.distinct_pages() as u64 * page_size_bytes
    }

    /// Iterates over the page accesses in the interleaved order in which a
    /// tuple-at-a-time scan actually needs them: ordered by `tuples_behind`
    /// (ties broken by column index). This is the per-page reference order
    /// used to drive LRU and to record OPT traces.
    pub fn interleaved(&self) -> Vec<&PageDescriptor> {
        let mut refs: Vec<&PageDescriptor> = self.pages.iter().collect();
        refs.sort_by_key(|p| (p.tuples_behind, p.column_index, p.page));
        refs
    }
}

/// Mapping from chunks to pages for one (snapshot, column set) pair.
#[derive(Debug, Clone)]
pub struct ChunkMap {
    table: TableId,
    chunk_tuples: u64,
    stable_tuples: u64,
    /// Pages of each chunk (sorted, deduplicated).
    chunk_pages: Vec<Vec<PageId>>,
}

impl ChunkMap {
    fn build(layout: &TableLayout, snapshot: &Snapshot, columns: &[usize]) -> Self {
        let stable = snapshot.stable_tuples();
        let count = layout.chunk_count(stable);
        let chunk_pages = (0..count)
            .map(|c| layout.pages_for_chunk(snapshot, columns, ChunkId::new(c)))
            .collect();
        Self {
            table: layout.table(),
            chunk_tuples: layout.chunk_tuples(),
            stable_tuples: stable,
            chunk_pages,
        }
    }

    /// Table this map describes.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> u32 {
        self.chunk_pages.len() as u32
    }

    /// Number of stable tuples covered.
    pub fn stable_tuples(&self) -> u64 {
        self.stable_tuples
    }

    /// SID range of a chunk.
    pub fn chunk_sid_range(&self, chunk: ChunkId) -> TupleRange {
        let start = chunk.raw() as u64 * self.chunk_tuples;
        let end = (start + self.chunk_tuples).min(self.stable_tuples);
        TupleRange::new(start.min(end), end)
    }

    /// Pages of a chunk (for the columns the map was built with).
    pub fn pages(&self, chunk: ChunkId) -> &[PageId] {
        self.chunk_pages
            .get(chunk.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total number of distinct pages across all chunks.
    pub fn total_pages(&self) -> usize {
        let mut all: Vec<PageId> = self
            .chunk_pages
            .iter()
            .flat_map(|v| v.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{ColumnSpec, ColumnType};
    use crate::snapshot::SnapshotStore;
    use scanshare_common::SnapshotId;

    /// Two columns with very different widths: 8 bytes/tuple and 0.5 bytes/tuple.
    fn test_layout(
        page_size: u64,
        chunk_tuples: u64,
        base_tuples: u64,
    ) -> (Arc<TableLayout>, Snapshot) {
        let spec = TableSpec::new(
            "t",
            vec![
                ColumnSpec::with_width("wide", ColumnType::Int64, 8.0),
                ColumnSpec::with_width("narrow", ColumnType::Dict { cardinality: 4 }, 0.5),
            ],
            base_tuples,
        );
        let layout = Arc::new(TableLayout::new(
            TableId::new(0),
            spec,
            vec![ColumnId::new(0), ColumnId::new(1)],
            page_size,
            chunk_tuples,
        ));
        let mut store = SnapshotStore::new();
        let snap = store.create_base_snapshot(&layout, SnapshotId::new(0));
        (layout, snap)
    }

    #[test]
    fn tuples_per_page_reflects_column_width() {
        let (layout, _snap) = test_layout(1024, 1000, 10_000);
        assert_eq!(layout.tuples_per_page(0), 128); // 1024/8
        assert_eq!(layout.tuples_per_page(1), 2048); // 1024/0.5
    }

    #[test]
    fn page_index_and_sid_range_round_trip() {
        let (layout, _snap) = test_layout(1024, 1000, 10_000);
        assert_eq!(layout.page_index_for_sid(0, 0), 0);
        assert_eq!(layout.page_index_for_sid(0, 127), 0);
        assert_eq!(layout.page_index_for_sid(0, 128), 1);
        assert_eq!(
            layout.sid_range_of_page(0, 1, 10_000),
            TupleRange::new(128, 256)
        );
        // Last page is clamped to the stable tuple count.
        assert_eq!(
            layout.sid_range_of_page(0, 78, 10_000),
            TupleRange::new(9984, 10_000)
        );
    }

    #[test]
    fn chunk_arithmetic() {
        let (layout, _snap) = test_layout(1024, 1000, 10_500);
        assert_eq!(layout.chunk_count(10_500), 11);
        assert_eq!(layout.chunk_of_sid(999), ChunkId::new(0));
        assert_eq!(layout.chunk_of_sid(1000), ChunkId::new(1));
        assert_eq!(
            layout.chunk_sid_range(ChunkId::new(10), 10_500),
            TupleRange::new(10_000, 10_500)
        );
        let chunks = layout.chunks_for_ranges(&RangeList::single(500, 2500), 10_500);
        assert_eq!(
            chunks,
            vec![ChunkId::new(0), ChunkId::new(1), ChunkId::new(2)]
        );
    }

    #[test]
    fn chunks_for_ranges_clamps_to_table_size() {
        let (layout, _snap) = test_layout(1024, 1000, 2_000);
        let chunks = layout.chunks_for_ranges(&RangeList::single(1500, 99_999), 2_000);
        assert_eq!(chunks, vec![ChunkId::new(1)]);
    }

    #[test]
    fn pages_for_chunk_unions_columns() {
        let (layout, snap) = test_layout(1024, 1000, 10_000);
        // Chunk 0 covers SIDs [0,1000): wide column needs pages 0..=7 (128 t/p),
        // narrow column needs page 0 (2048 t/p) -> 8 + 1 = 9 distinct pages.
        let pages = layout.pages_for_chunk(&snap, &[0, 1], ChunkId::new(0));
        assert_eq!(pages.len(), 9);
        // Only the narrow column: a single page covers more than two chunks.
        let narrow_chunk0 = layout.pages_for_chunk(&snap, &[1], ChunkId::new(0));
        let narrow_chunk1 = layout.pages_for_chunk(&snap, &[1], ChunkId::new(1));
        assert_eq!(
            narrow_chunk0, narrow_chunk1,
            "one page spans adjacent chunks"
        );
    }

    #[test]
    fn scan_page_plan_accumulates_tuples_behind_per_column() {
        let (layout, snap) = test_layout(1024, 1000, 10_000);
        let plan = layout.scan_page_plan(&snap, &[0, 1], &RangeList::single(0, 256));
        // wide column: pages 0 and 1 (128 tuples each); narrow column: page 0.
        assert_eq!(plan.pages.len(), 3);
        let wide: Vec<_> = plan.pages.iter().filter(|p| p.column_index == 0).collect();
        assert_eq!(wide[0].tuples_behind, 0);
        assert_eq!(wide[0].tuple_count, 128);
        assert_eq!(wide[1].tuples_behind, 128);
        assert_eq!(wide[1].tuple_count, 128);
        let narrow: Vec<_> = plan.pages.iter().filter(|p| p.column_index == 1).collect();
        assert_eq!(narrow[0].tuples_behind, 0);
        assert_eq!(narrow[0].tuple_count, 256);
        assert_eq!(plan.total_tuples, 256);
        assert_eq!(plan.distinct_pages(), 3);
    }

    #[test]
    fn scan_page_plan_respects_multiple_ranges() {
        let (layout, snap) = test_layout(1024, 1000, 10_000);
        let ranges = RangeList::from_ranges([TupleRange::new(0, 100), TupleRange::new(5000, 5100)]);
        let plan = layout.scan_page_plan(&snap, &[0], &ranges);
        assert_eq!(plan.pages.len(), 2);
        assert_eq!(plan.pages[0].tuples_behind, 0);
        assert_eq!(plan.pages[1].tuples_behind, 100);
        assert_eq!(plan.pages[1].tuple_count, 100);
    }

    #[test]
    fn interleaved_orders_by_scan_progress() {
        let (layout, snap) = test_layout(1024, 1000, 10_000);
        let plan = layout.scan_page_plan(&snap, &[0, 1], &RangeList::single(0, 512));
        let order = plan.interleaved();
        let mut last = 0;
        for p in order {
            assert!(p.tuples_behind >= last);
            last = p.tuples_behind;
        }
    }

    #[test]
    fn chunk_map_covers_all_chunks() {
        let (layout, snap) = test_layout(1024, 1000, 10_000);
        let map = layout.chunk_map(&snap, &[0, 1]);
        assert_eq!(map.chunk_count(), 10);
        assert!(!map.pages(ChunkId::new(3)).is_empty());
        assert_eq!(map.pages(ChunkId::new(99)), &[] as &[PageId]);
        // total distinct pages = wide (79 pages for 10000 tuples @128/page)
        // + narrow (5 pages @2048/page)
        assert_eq!(map.total_pages(), 79 + 5);
    }

    #[test]
    fn bytes_for_scan_counts_whole_pages() {
        let (layout, _snap) = test_layout(1024, 1000, 10_000);
        assert_eq!(layout.bytes_for_scan(&[0], 128), 1024);
        assert_eq!(layout.bytes_for_scan(&[0], 129), 2048);
        assert_eq!(layout.bytes_for_scan(&[0, 1], 129), 2048 + 1024);
    }
}
