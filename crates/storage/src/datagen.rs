//! Deterministic synthetic data generation.
//!
//! The repository does not ship (or generate on disk) the 30 GB TPC-H
//! database the paper uses; instead every base column is backed by a
//! deterministic generator function `value(sid)`. Reading a page simply
//! materializes the generator over the page's SID range, so scans see real,
//! reproducible values without the repository storing gigabytes of data.
//! Appended and checkpointed pages store their values explicitly (see
//! [`crate::storage`]).

/// The value type used throughout the execution engine. Decimals are scaled
//  integers and strings are dictionary codes, as is usual in columnar
/// engines.
pub type Value = i64;

/// A deterministic column generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataGen {
    /// `start + step * sid`.
    Sequential {
        /// Value of tuple 0.
        start: i64,
        /// Increment per tuple.
        step: i64,
    },
    /// Pseudo-random uniform value in `[min, max]`, keyed by the sid.
    Uniform {
        /// Smallest value (inclusive).
        min: i64,
        /// Largest value (inclusive).
        max: i64,
    },
    /// `min + (sid % period)` scaled into `[min, max]`; models slowly
    /// cycling values such as dates loaded in order.
    Cyclic {
        /// Cycle length in tuples.
        period: u64,
        /// Smallest value (inclusive).
        min: i64,
        /// Largest value (inclusive).
        max: i64,
    },
    /// The same value for every tuple.
    Constant(
        /// The constant value.
        i64,
    ),
    /// Pseudo-random skewed value in `[0, span)`, keyed by the sid: small
    /// values are exponentially more likely than large ones (a Zipf-like
    /// popularity curve), so equality predicates on small constants are
    /// high-selectivity and on large constants near-zero — the knob the
    /// selective workloads in `fig_skipping` turn.
    Zipfian {
        /// Number of distinct values; draws fall in `[0, span)`.
        span: u64,
    },
}

impl DataGen {
    /// The value of tuple `sid` for this generator. `seed` decorrelates
    /// different columns that use the same generator parameters.
    pub fn value(&self, seed: u64, sid: u64) -> Value {
        match *self {
            DataGen::Sequential { start, step } => {
                start.wrapping_add(step.wrapping_mul(sid as i64))
            }
            DataGen::Uniform { min, max } => {
                debug_assert!(max >= min);
                let span = (max - min) as u64 + 1;
                let h = splitmix64(sid ^ seed.rotate_left(17));
                min + (h % span) as i64
            }
            DataGen::Cyclic { period, min, max } => {
                debug_assert!(period > 0 && max >= min);
                let span = (max - min) as u64 + 1;
                let pos = sid % period;
                min + (pos * span / period.max(1)) as i64
            }
            DataGen::Constant(v) => v,
            DataGen::Zipfian { span } => {
                debug_assert!(span > 0);
                // Map a uniform draw u in [0, 1) through span^u - 1: the
                // density of the result decays geometrically, approximating
                // a Zipf distribution while staying a pure function of
                // (seed, sid).
                let h = splitmix64(sid ^ seed.rotate_left(17));
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                let v = ((span + 1) as f64).powf(u).floor() as i64 - 1;
                v.clamp(0, span as i64 - 1)
            }
        }
    }

    /// Materializes the generator for `sids` in `[start, end)`.
    pub fn materialize(&self, seed: u64, start: u64, end: u64) -> Vec<Value> {
        (start..end).map(|sid| self.value(seed, sid)).collect()
    }

    /// A conservative `[min, max]` interval covering every value the
    /// generator can produce for sids in `[first, last]` (inclusive) — the
    /// zone-map entry of a generator-backed chunk, computed in O(1) instead
    /// of materializing the chunk. Pseudo-random generators report their
    /// full span (they are not prunable anyway); order-correlated generators
    /// report exact bounds.
    pub fn zone_entry(&self, first: u64, last: u64) -> crate::zone::ZoneEntry {
        use crate::zone::ZoneEntry;
        debug_assert!(first <= last);
        match *self {
            DataGen::Sequential { start, step } => {
                let at = |sid: u64| i64::try_from(start as i128 + step as i128 * sid as i128);
                match (at(first), at(last)) {
                    (Ok(a), Ok(b)) => ZoneEntry {
                        min: a.min(b),
                        max: a.max(b),
                    },
                    // Overflowing generators wrap per-value; don't guess.
                    _ => ZoneEntry::full(),
                }
            }
            DataGen::Uniform { min, max } => ZoneEntry { min, max },
            DataGen::Cyclic { period, min, max } => {
                // Exact when the range stays within one cycle (positions are
                // monotone); otherwise the chunk sees the whole span.
                if period > 0 && first / period == last / period {
                    let span = (max - min) as u64 + 1;
                    let lo = min + (first % period * span / period) as i64;
                    let hi = min + (last % period * span / period) as i64;
                    ZoneEntry { min: lo, max: hi }
                } else {
                    ZoneEntry { min, max }
                }
            }
            DataGen::Constant(v) => ZoneEntry::point(v),
            DataGen::Zipfian { span } => ZoneEntry {
                min: 0,
                max: span.saturating_sub(1) as i64,
            },
        }
    }
}

/// SplitMix64: a small, fast, well-distributed 64-bit mixer. Used so that
/// "uniform" columns are deterministic functions of the tuple position.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_affine() {
        let g = DataGen::Sequential { start: 10, step: 3 };
        assert_eq!(g.value(0, 0), 10);
        assert_eq!(g.value(0, 5), 25);
        assert_eq!(g.materialize(0, 0, 3), vec![10, 13, 16]);
    }

    #[test]
    fn uniform_is_deterministic_and_in_range() {
        let g = DataGen::Uniform { min: -5, max: 5 };
        for sid in 0..1000 {
            let v = g.value(42, sid);
            assert!((-5..=5).contains(&v));
            assert_eq!(v, g.value(42, sid), "same sid and seed give same value");
        }
        // Different seeds decorrelate columns.
        let a: Vec<_> = (0..100).map(|s| g.value(1, s)).collect();
        let b: Vec<_> = (0..100).map(|s| g.value(2, s)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_covers_the_range() {
        let g = DataGen::Uniform { min: 0, max: 9 };
        let mut seen = [false; 10];
        for sid in 0..1000 {
            seen[g.value(7, sid) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "1000 draws should hit all 10 values"
        );
    }

    #[test]
    fn cyclic_repeats_with_period() {
        let g = DataGen::Cyclic {
            period: 10,
            min: 100,
            max: 109,
        };
        assert_eq!(g.value(0, 0), g.value(0, 10));
        assert_eq!(g.value(0, 3), g.value(0, 13));
        for sid in 0..100 {
            assert!((100..=109).contains(&g.value(0, sid)));
        }
    }

    #[test]
    fn constant_ignores_sid() {
        let g = DataGen::Constant(7);
        assert_eq!(g.value(0, 0), 7);
        assert_eq!(g.value(9, 12345), 7);
    }

    #[test]
    fn splitmix_differs_on_consecutive_inputs() {
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn zipfian_is_deterministic_skewed_and_in_range() {
        let g = DataGen::Zipfian { span: 100 };
        let mut low = 0u64;
        for sid in 0..10_000 {
            let v = g.value(3, sid);
            assert!((0..100).contains(&v));
            assert_eq!(v, g.value(3, sid));
            if v < 10 {
                low += 1;
            }
        }
        // A uniform generator would put ~10% of draws below 10; the skewed
        // one concentrates roughly half its mass there.
        assert!(
            low > 3_000,
            "zipfian draws not skewed: {low}/10000 below 10"
        );
    }

    #[test]
    fn zone_entries_cover_generated_values() {
        let gens = [
            DataGen::Sequential { start: -7, step: 3 },
            DataGen::Sequential {
                start: 50,
                step: -2,
            },
            DataGen::Uniform { min: -5, max: 5 },
            DataGen::Cyclic {
                period: 40,
                min: 0,
                max: 99,
            },
            DataGen::Constant(42),
            DataGen::Zipfian { span: 64 },
        ];
        for g in gens {
            for (first, last) in [(0u64, 15u64), (16, 31), (90, 129)] {
                let entry = g.zone_entry(first, last);
                for sid in first..=last {
                    let v = g.value(9, sid);
                    assert!(
                        entry.min <= v && v <= entry.max,
                        "{g:?} value {v} at sid {sid} outside zone {entry:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sequential_zone_entries_are_exact_and_cyclic_single_cycle_is_tight() {
        let g = DataGen::Sequential { start: 0, step: 1 };
        let e = g.zone_entry(100, 199);
        assert_eq!((e.min, e.max), (100, 199));
        let g = DataGen::Cyclic {
            period: 1000,
            min: 10,
            max: 19,
        };
        let e = g.zone_entry(0, 99);
        // Positions 0..=99 of a 1000-long cycle map to the bottom tenth.
        assert_eq!(e.min, 10);
        assert!(e.max <= 11);
    }
}
