//! Write-ahead log: checksummed record framing, group commit and
//! torn-tail truncation.
//!
//! The WAL is a single append-only file (`wal.log`) in the engine's
//! durability directory. Every record is framed as
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [kind: u8] [body: len-1 bytes]
//! ```
//!
//! where `len` counts the kind byte plus the body and `crc` is the CRC-32
//! (IEEE) of exactly those bytes. A record is *valid* only if the frame is
//! complete, the checksum matches and the kind byte is known; the first
//! invalid record ends the log — everything after a torn write is
//! unreachable, and [`Wal::open`] truncates the file back to the valid
//! prefix so new appends never land behind garbage.
//!
//! Three record kinds exist: `Commit` carries the serialized per-table
//! write sets of one transaction commit (encoded by `scanshare-pdt`),
//! `CheckpointBegin`/`CheckpointEnd` bracket a checkpoint's segment
//! materialization so recovery can tell a completed checkpoint from a torn
//! one (the atomically-renamed manifest is the real commit point; the
//! markers make the WAL self-describing and are validated by the
//! failure-injection tests).
//!
//! # Group commit
//!
//! [`Wal::commit_sync`] amortizes `fsync` over a window of `group_commit`
//! commits: the sync is skipped while fewer than `group_commit` records
//! have accumulated since the last durable point. A crash can therefore
//! lose up to `group_commit - 1` of the most recent commits — always a
//! *consistent prefix*, never a torn state. With the default window of 1
//! every commit is individually durable before it is acknowledged. When
//! several threads reach the sync point together a single leader performs
//! the `fsync` while the others wait on a condvar and piggyback on its
//! durable point.

use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard};

use scanshare_common::{Error, Result, TableId};

/// File name of the write-ahead log inside the durability directory.
pub const WAL_FILE_NAME: &str = "wal.log";

/// Frame header bytes: 4-byte length + 4-byte checksum.
const FRAME_HEADER: usize = 8;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) of `bytes` —
/// the checksum guarding every WAL frame. Hand-rolled so the workspace
/// stays dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// What one WAL record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalRecordKind {
    /// A transaction commit: the body holds the serialized per-table
    /// write sets (see `scanshare-pdt`'s WAL codec).
    Commit,
    /// A checkpoint started materializing a new durable image for one
    /// table; the body names the table and the commit sequence the image
    /// will cover.
    CheckpointBegin,
    /// The checkpoint's new image is durable (manifest renamed) and
    /// installed.
    CheckpointEnd,
    /// Internal rotation marker: the first record of a rotated log, whose
    /// body holds the cumulative count of records dropped by all rotations
    /// so far. Never returned by [`Wal::read_records`] — the parser folds it
    /// into the sequence-number base so global record numbering stays
    /// monotonic across rotations.
    Rotate,
}

impl WalRecordKind {
    fn to_byte(self) -> u8 {
        match self {
            WalRecordKind::Commit => 1,
            WalRecordKind::CheckpointBegin => 2,
            WalRecordKind::CheckpointEnd => 3,
            WalRecordKind::Rotate => 4,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(WalRecordKind::Commit),
            2 => Some(WalRecordKind::CheckpointBegin),
            3 => Some(WalRecordKind::CheckpointEnd),
            4 => Some(WalRecordKind::Rotate),
            _ => None,
        }
    }
}

/// One verified record read back from the log.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// The record kind.
    pub kind: WalRecordKind,
    /// The record body (kind-specific encoding).
    pub body: Vec<u8>,
}

/// Encodes the body of a checkpoint begin/end marker.
pub fn encode_marker(table: TableId, seq: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(16);
    body.extend_from_slice(&(table.raw() as u64).to_le_bytes());
    body.extend_from_slice(&seq.to_le_bytes());
    body
}

/// Decodes the body of a checkpoint begin/end marker.
pub fn decode_marker(body: &[u8]) -> Result<(TableId, u64)> {
    if body.len() != 16 {
        return Err(Error::WalCorrupt(format!(
            "checkpoint marker body is {} bytes, expected 16",
            body.len()
        )));
    }
    let raw = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
    let table = u32::try_from(raw)
        .map_err(|_| Error::WalCorrupt(format!("checkpoint marker table id {raw} overflows")))?;
    let seq = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
    Ok((TableId::new(table), seq))
}

#[derive(Debug)]
struct SyncState {
    /// Bytes of complete frames written so far (the durable-candidate
    /// length; used to roll back a failed partial append).
    len: u64,
    /// Records appended so far.
    appended: u64,
    /// Records covered by the last successful fsync.
    synced: u64,
    /// Whether a leader is currently inside `fsync`.
    syncing: bool,
}

fn lock(m: &Mutex<SyncState>) -> MutexGuard<'_, SyncState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn read_file(f: &RwLock<File>) -> RwLockReadGuard<'_, File> {
    f.read().unwrap_or_else(|e| e.into_inner())
}

/// The append side of the write-ahead log (see the module docs for the
/// format and durability semantics).
#[derive(Debug)]
pub struct Wal {
    /// Behind a read-write lock so [`Wal::rotate`] can atomically swap the
    /// handle for the rewritten file; appends and syncs take read access.
    file: RwLock<File>,
    dir: PathBuf,
    path: PathBuf,
    group_commit: usize,
    /// Rotations performed by this handle.
    rotated: AtomicU64,
    state: Mutex<SyncState>,
    cond: Condvar,
}

impl Wal {
    /// Opens (creating if needed) the WAL in `dir`, truncating any torn
    /// tail left by a crash so new appends extend the valid prefix.
    /// `group_commit` is the fsync window (see [`Wal::commit_sync`]).
    pub fn open(dir: &Path, group_commit: usize) -> Result<Self> {
        if group_commit == 0 {
            return Err(Error::config("wal group_commit must be at least 1"));
        }
        fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE_NAME);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, base, valid_len) = parse_records(&bytes);
        if (valid_len as u64) < bytes.len() as u64 {
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))?;
        // Make the file's directory entry durable (first open creates it).
        fsync_dir_best_effort(dir);
        let appended = base + records.len() as u64;
        Ok(Self {
            file: RwLock::new(file),
            dir: dir.to_path_buf(),
            path,
            group_commit,
            rotated: AtomicU64::new(0),
            state: Mutex::new(SyncState {
                len: valid_len as u64,
                appended,
                synced: appended,
                syncing: false,
            }),
            cond: Condvar::new(),
        })
    }

    /// Reads every verified record of the WAL in `dir`, silently ignoring
    /// a torn tail. An absent file reads as an empty log.
    pub fn read_records(dir: &Path) -> Result<Vec<WalRecord>> {
        let path: PathBuf = dir.join(WAL_FILE_NAME);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let (records, _, _) = parse_records(&bytes);
        Ok(records)
    }

    /// Appends one record without syncing, returning its (1-based) global
    /// sequence number. A failed partial write is rolled back so later
    /// appends never land behind garbage.
    fn append(&self, kind: WalRecordKind, body: &[u8]) -> Result<u64> {
        let frame = encode_frame(kind, body);
        let mut st = lock(&self.state);
        let file = read_file(&self.file);
        if let Err(e) = (&*file).write_all(&frame) {
            // Roll the file back to the last complete frame.
            let _ = file.set_len(st.len);
            let _ = (&*file).seek(SeekFrom::Start(st.len));
            return Err(e.into());
        }
        st.len += frame.len() as u64;
        st.appended += 1;
        Ok(st.appended)
    }

    /// Appends a commit record (no fsync; pair with [`Wal::commit_sync`]).
    /// Callers serialize their appends in commit order — the engine holds
    /// the per-table commit locks across this call so the log order always
    /// matches the per-table commit-sequence order.
    pub fn append_commit(&self, body: &[u8]) -> Result<u64> {
        self.append(WalRecordKind::Commit, body)
    }

    /// Makes the commit record `seq` durable subject to group commit: the
    /// fsync is skipped while fewer than `group_commit` records have
    /// accumulated since the last durable point (delayed durability — a
    /// crash loses at most `group_commit - 1` trailing commits).
    pub fn commit_sync(&self, seq: u64) -> Result<()> {
        {
            let st = lock(&self.state);
            if st.synced >= seq || (st.appended - st.synced) < self.group_commit as u64 {
                return Ok(());
            }
        }
        self.sync_to(seq)
    }

    /// Appends a checkpoint begin/end marker and makes it (and everything
    /// before it) durable immediately — markers never participate in group
    /// commit.
    pub fn append_marker(&self, kind: WalRecordKind, table: TableId, seq: u64) -> Result<()> {
        let at = self.append(kind, &encode_marker(table, seq))?;
        self.sync_to(at)
    }

    /// Fsyncs everything appended so far (engine shutdown, tests).
    pub fn sync_all(&self) -> Result<()> {
        let target = lock(&self.state).appended;
        self.sync_to(target)
    }

    /// Rotates the log: drops every record for which `covered` returns
    /// `true` (it is folded into a durable image and no longer needed for
    /// recovery) and rewrites the file crash-atomically — surviving records
    /// land in a temp file behind a `Rotate` marker carrying the cumulative
    /// dropped count, the temp file is fsynced and renamed over the log, and
    /// the directory fsynced. A crash at any point leaves either the old or
    /// the new file intact, never a mix. Returns the number of records
    /// dropped (0 means the file was left untouched).
    ///
    /// Global sequence numbers are preserved: the `Rotate` marker's base
    /// keeps [`Wal::appended`] monotonic across the rewrite, so group-commit
    /// accounting and callers holding sequence numbers are unaffected.
    pub fn rotate(&self, mut covered: impl FnMut(&WalRecord) -> bool) -> Result<u64> {
        // Hold the state lock for the whole rewrite so no append or sync
        // interleaves; wait out any in-flight fsync leader first.
        let mut st = lock(&self.state);
        while st.syncing {
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let bytes = fs::read(&self.path)?;
        let (records, base, _) = parse_records(&bytes);
        let (dropped, kept): (Vec<_>, Vec<_>) = records.into_iter().partition(&mut covered);
        if dropped.is_empty() {
            return Ok(0);
        }
        let new_base = base + dropped.len() as u64;
        let mut out = encode_frame(WalRecordKind::Rotate, &new_base.to_le_bytes());
        for record in &kept {
            out.extend_from_slice(&encode_frame(record.kind, &record.body));
        }
        let tmp_path = self.dir.join(format!("{WAL_FILE_NAME}.tmp"));
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&out)?;
            tmp.sync_all()?;
        }
        fs::rename(&tmp_path, &self.path)?;
        fsync_dir_best_effort(&self.dir);
        // Swap the append handle onto the new file, cursor at its end.
        let mut fresh = OpenOptions::new().read(true).write(true).open(&self.path)?;
        fresh.seek(SeekFrom::End(0))?;
        *self.file.write().unwrap_or_else(|e| e.into_inner()) = fresh;
        st.len = out.len() as u64;
        st.appended = new_base + kept.len() as u64;
        st.synced = st.appended;
        self.rotated.fetch_add(1, Ordering::Relaxed);
        Ok(dropped.len() as u64)
    }

    /// Number of rotations this handle has performed.
    pub fn wal_rotated(&self) -> u64 {
        self.rotated.load(Ordering::Relaxed)
    }

    /// Records appended so far.
    pub fn appended(&self) -> u64 {
        lock(&self.state).appended
    }

    /// Records covered by the last successful fsync.
    pub fn synced(&self) -> u64 {
        lock(&self.state).synced
    }

    /// Leader/follower sync: one thread performs the fsync for everything
    /// appended so far while concurrent callers wait and piggyback.
    fn sync_to(&self, target: u64) -> Result<()> {
        let mut st = lock(&self.state);
        loop {
            if st.synced >= target {
                return Ok(());
            }
            if st.syncing {
                st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            st.syncing = true;
            let upto = st.appended;
            drop(st);
            let res = read_file(&self.file).sync_data();
            st = lock(&self.state);
            st.syncing = false;
            if res.is_ok() {
                st.synced = st.synced.max(upto);
            }
            self.cond.notify_all();
            res?;
        }
    }
}

/// Splits `bytes` into verified records, the sequence-number base (records
/// dropped by earlier rotations, from a leading `Rotate` record) and the
/// length of the valid prefix; parsing stops at the first incomplete or
/// corrupt frame. `Rotate` records are folded into the base, never returned.
fn parse_records(bytes: &[u8]) -> (Vec<WalRecord>, u64, usize) {
    let mut records = Vec::new();
    let mut base = 0u64;
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + FRAME_HEADER) {
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len == 0 {
            break;
        }
        let Some(payload) = bytes.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Some(kind) = WalRecordKind::from_byte(payload[0]) else {
            break;
        };
        if kind == WalRecordKind::Rotate {
            if payload.len() == 9 {
                base = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
            }
        } else {
            records.push(WalRecord {
                kind,
                body: payload[1..].to_vec(),
            });
        }
        pos += FRAME_HEADER + len;
    }
    (records, base, pos)
}

/// Encodes one record frame (length, checksum, kind, body).
fn encode_frame(kind: WalRecordKind, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + body.len());
    payload.push(kind.to_byte());
    payload.extend_from_slice(body);
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn fsync_dir_best_effort(dir: &Path) {
    #[cfg(unix)]
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    #[cfg(not(unix))]
    let _ = dir;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    static TEST_DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    struct TestDir(PathBuf);

    impl TestDir {
        fn new(tag: &str) -> Self {
            let seq = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir()
                .join(format!("scanshare-wal-{tag}-{}-{seq}", std::process::id()));
            fs::create_dir_all(&path).unwrap();
            Self(path)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        let dir = TestDir::new("roundtrip");
        let wal = Wal::open(&dir.0, 1).unwrap();
        wal.append_commit(b"first").unwrap();
        wal.commit_sync(1).unwrap();
        wal.append_marker(WalRecordKind::CheckpointBegin, TableId::new(3), 7)
            .unwrap();
        wal.append_marker(WalRecordKind::CheckpointEnd, TableId::new(3), 7)
            .unwrap();
        drop(wal);

        let records = Wal::read_records(&dir.0).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].kind, WalRecordKind::Commit);
        assert_eq!(records[0].body, b"first");
        assert_eq!(records[1].kind, WalRecordKind::CheckpointBegin);
        assert_eq!(
            decode_marker(&records[1].body).unwrap(),
            (TableId::new(3), 7)
        );
        assert_eq!(records[2].kind, WalRecordKind::CheckpointEnd);

        // Reopening appends after the existing records.
        let wal = Wal::open(&dir.0, 1).unwrap();
        assert_eq!(wal.appended(), 3);
        wal.append_commit(b"second").unwrap();
        wal.sync_all().unwrap();
        drop(wal);
        let records = Wal::read_records(&dir.0).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[3].body, b"second");
    }

    #[test]
    fn torn_tail_is_ignored_and_truncated() {
        let dir = TestDir::new("torn");
        let wal = Wal::open(&dir.0, 1).unwrap();
        wal.append_commit(b"keep me").unwrap();
        wal.sync_all().unwrap();
        drop(wal);
        let path = dir.0.join(WAL_FILE_NAME);
        let full = fs::read(&path).unwrap();

        // A torn write: append a record then chop off its last byte.
        let wal = Wal::open(&dir.0, 1).unwrap();
        wal.append_commit(b"torn").unwrap();
        wal.sync_all().unwrap();
        drop(wal);
        let long = fs::read(&path).unwrap();
        fs::write(&path, &long[..long.len() - 1]).unwrap();

        let records = Wal::read_records(&dir.0).unwrap();
        assert_eq!(records.len(), 1, "torn final record is discarded");
        assert_eq!(records[0].body, b"keep me");

        // Open truncates the file back to the valid prefix...
        let wal = Wal::open(&dir.0, 1).unwrap();
        assert_eq!(wal.appended(), 1);
        assert_eq!(fs::read(&path).unwrap(), full);
        // ...and new appends extend it cleanly.
        wal.append_commit(b"after").unwrap();
        wal.sync_all().unwrap();
        drop(wal);
        let records = Wal::read_records(&dir.0).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].body, b"after");
    }

    #[test]
    fn corrupt_checksum_ends_the_log() {
        let dir = TestDir::new("crc");
        let wal = Wal::open(&dir.0, 1).unwrap();
        wal.append_commit(b"one").unwrap();
        wal.append_commit(b"two").unwrap();
        wal.sync_all().unwrap();
        drop(wal);
        let path = dir.0.join(WAL_FILE_NAME);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a bit inside the first record's body.
        let idx = FRAME_HEADER + 1;
        bytes[idx] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let records = Wal::read_records(&dir.0).unwrap();
        assert!(
            records.is_empty(),
            "a corrupt record hides everything after it"
        );
    }

    #[test]
    fn group_commit_defers_the_fsync() {
        let dir = TestDir::new("group");
        let wal = Wal::open(&dir.0, 3).unwrap();
        let s1 = wal.append_commit(b"a").unwrap();
        wal.commit_sync(s1).unwrap();
        assert_eq!(wal.synced(), 0, "below the window: no fsync yet");
        let s2 = wal.append_commit(b"b").unwrap();
        wal.commit_sync(s2).unwrap();
        assert_eq!(wal.synced(), 0);
        let s3 = wal.append_commit(b"c").unwrap();
        wal.commit_sync(s3).unwrap();
        assert_eq!(wal.synced(), 3, "window filled: one fsync covers all");
        // Markers always sync immediately.
        let s4 = wal.append_commit(b"d").unwrap();
        wal.commit_sync(s4).unwrap();
        assert_eq!(wal.synced(), 3);
        wal.append_marker(WalRecordKind::CheckpointBegin, TableId::new(1), 0)
            .unwrap();
        assert_eq!(wal.synced(), 5);
    }

    #[test]
    fn marker_decode_rejects_malformed_bodies() {
        assert!(decode_marker(b"short").is_err());
        let mut body = encode_marker(TableId::new(1), 2);
        body.push(0);
        assert!(decode_marker(&body).is_err());
        let huge = (u32::MAX as u64 + 1).to_le_bytes();
        let mut body = huge.to_vec();
        body.extend_from_slice(&0u64.to_le_bytes());
        assert!(decode_marker(&body).is_err());
    }

    #[test]
    fn zero_group_commit_is_rejected() {
        let dir = TestDir::new("zero");
        assert!(Wal::open(&dir.0, 0).is_err());
    }

    #[test]
    fn missing_wal_reads_as_empty() {
        let dir = TestDir::new("missing");
        assert!(Wal::read_records(&dir.0).unwrap().is_empty());
    }

    #[test]
    fn rotation_drops_covered_records_and_preserves_sequence_numbers() {
        let dir = TestDir::new("rotate");
        let wal = Wal::open(&dir.0, 1).unwrap();
        wal.append_commit(b"old-1").unwrap();
        wal.append_commit(b"old-2").unwrap();
        wal.append_marker(WalRecordKind::CheckpointEnd, TableId::new(1), 2)
            .unwrap();
        wal.append_commit(b"new-1").unwrap();
        wal.sync_all().unwrap();
        assert_eq!(wal.appended(), 4);

        let dropped = wal
            .rotate(|r| r.kind != WalRecordKind::Commit || r.body.starts_with(b"old"))
            .unwrap();
        assert_eq!(dropped, 3);
        assert_eq!(wal.wal_rotated(), 1);
        assert_eq!(wal.appended(), 4, "sequence numbers survive rotation");
        let records = Wal::read_records(&dir.0).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].body, b"new-1");

        // Appends continue with the pre-rotation numbering, and a reopen
        // reconstructs the same counts from the Rotate marker's base.
        assert_eq!(wal.append_commit(b"new-2").unwrap(), 5);
        wal.sync_all().unwrap();
        drop(wal);
        let reopened = Wal::open(&dir.0, 1).unwrap();
        assert_eq!(reopened.appended(), 5);
        let records = Wal::read_records(&dir.0).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].body, b"new-2");

        // A second rotation stacks its base on top of the first.
        reopened.rotate(|r| r.body == b"new-1").unwrap();
        drop(reopened);
        let again = Wal::open(&dir.0, 1).unwrap();
        assert_eq!(again.appended(), 5);
        assert_eq!(Wal::read_records(&dir.0).unwrap().len(), 1);
    }

    #[test]
    fn rotation_with_nothing_covered_leaves_the_file_untouched() {
        let dir = TestDir::new("rotate-noop");
        let wal = Wal::open(&dir.0, 1).unwrap();
        wal.append_commit(b"keep").unwrap();
        wal.sync_all().unwrap();
        let before = fs::read(dir.0.join(WAL_FILE_NAME)).unwrap();
        assert_eq!(wal.rotate(|_| false).unwrap(), 0);
        assert_eq!(wal.wal_rotated(), 0);
        assert_eq!(fs::read(dir.0.join(WAL_FILE_NAME)).unwrap(), before);
    }

    #[test]
    fn leftover_rotation_tmp_is_harmless() {
        let dir = TestDir::new("rotate-tmp");
        let wal = Wal::open(&dir.0, 1).unwrap();
        wal.append_commit(b"a").unwrap();
        wal.sync_all().unwrap();
        // A crash between the tmp write and the rename leaves a .tmp file;
        // it must not shadow the real log.
        fs::write(dir.0.join(format!("{WAL_FILE_NAME}.tmp")), b"garbage").unwrap();
        drop(wal);
        let records = Wal::read_records(&dir.0).unwrap();
        assert_eq!(records.len(), 1);
        let wal = Wal::open(&dir.0, 1).unwrap();
        assert_eq!(wal.appended(), 1);
    }
}
