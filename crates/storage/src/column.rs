//! Column specifications.
//!
//! In a column store, each column of a table occupies a very different
//! number of pages: data types differ and compression ratios differ. The
//! paper stresses that this is why chunks must be *logical tuple ranges*
//! rather than sets of pages. [`ColumnSpec::bytes_per_tuple`] captures the
//! physical width of a column after compression and drives the page-count
//! calculations in [`crate::layout`].

/// Logical type of a column.
///
/// The execution engine represents every value as an `i64` (dictionary /
/// scaled-decimal encoding); the type only influences the default physical
/// width and how synthetic data is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer key or measure.
    Int64,
    /// Scaled decimal (stored as i64).
    Decimal,
    /// Date stored as days since epoch.
    Date,
    /// Dictionary-encoded low-cardinality string (flag, status, ...).
    Dict {
        /// Number of distinct values.
        cardinality: u32,
    },
    /// Variable-length string; `avg_len` drives the physical width.
    Varchar {
        /// Average length in bytes after compression.
        avg_len: u16,
    },
}

impl ColumnType {
    /// Default compressed width for the type, in bytes per tuple.
    pub fn default_width(&self) -> f64 {
        match self {
            ColumnType::Int64 => 4.0,
            ColumnType::Decimal => 4.0,
            ColumnType::Date => 2.0,
            ColumnType::Dict { cardinality } => {
                // log2(cardinality) bits, rounded up to whole bytes, min 1 byte.
                let bits = (*cardinality as f64).log2().ceil().max(1.0);
                (bits / 8.0).max(0.25)
            }
            ColumnType::Varchar { avg_len } => *avg_len as f64,
        }
    }
}

/// Physical description of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Column name (unique within its table).
    pub name: String,
    /// Logical type.
    pub column_type: ColumnType,
    /// Compressed width in bytes per tuple. May be fractional (e.g. a
    /// run-length-encoded flag column can use far less than one byte per
    /// tuple).
    pub bytes_per_tuple: f64,
}

impl ColumnSpec {
    /// Creates a column with the default width for its type.
    pub fn new(name: impl Into<String>, column_type: ColumnType) -> Self {
        let bytes_per_tuple = column_type.default_width();
        Self {
            name: name.into(),
            column_type,
            bytes_per_tuple,
        }
    }

    /// Creates a column with an explicit compressed width.
    pub fn with_width(
        name: impl Into<String>,
        column_type: ColumnType,
        bytes_per_tuple: f64,
    ) -> Self {
        assert!(
            bytes_per_tuple > 0.0 && bytes_per_tuple.is_finite(),
            "bytes_per_tuple must be positive"
        );
        Self {
            name: name.into(),
            column_type,
            bytes_per_tuple,
        }
    }

    /// Number of tuples that fit in one page of `page_size_bytes`.
    /// Always at least one.
    pub fn tuples_per_page(&self, page_size_bytes: u64) -> u64 {
        ((page_size_bytes as f64 / self.bytes_per_tuple).floor() as u64).max(1)
    }

    /// Number of pages needed to store `tuples` tuples of this column.
    pub fn pages_for_tuples(&self, tuples: u64, page_size_bytes: u64) -> u64 {
        if tuples == 0 {
            return 0;
        }
        let tpp = self.tuples_per_page(page_size_bytes);
        tuples.div_ceil(tpp)
    }

    /// Total compressed bytes for `tuples` tuples.
    pub fn bytes_for_tuples(&self, tuples: u64) -> u64 {
        (self.bytes_per_tuple * tuples as f64).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_widths_are_sensible() {
        assert_eq!(ColumnType::Int64.default_width(), 4.0);
        assert_eq!(ColumnType::Date.default_width(), 2.0);
        assert!(ColumnType::Dict { cardinality: 2 }.default_width() <= 0.25 + f64::EPSILON);
        assert_eq!(ColumnType::Varchar { avg_len: 12 }.default_width(), 12.0);
    }

    #[test]
    fn tuples_per_page_depends_on_width() {
        let narrow = ColumnSpec::with_width("flag", ColumnType::Dict { cardinality: 3 }, 0.5);
        let wide = ColumnSpec::with_width("comment", ColumnType::Varchar { avg_len: 100 }, 100.0);
        let page = 64 * 1024;
        assert_eq!(narrow.tuples_per_page(page), 131_072);
        assert_eq!(wide.tuples_per_page(page), 655);
        // The paper: one column may fit on a single page while another takes
        // thousands of pages for the same tuple range.
        let tuples = 1_000_000;
        assert_eq!(narrow.pages_for_tuples(tuples, page), 8);
        assert_eq!(wide.pages_for_tuples(tuples, page), 1527);
    }

    #[test]
    fn tuples_per_page_is_at_least_one() {
        let huge = ColumnSpec::with_width("blob", ColumnType::Varchar { avg_len: 200 }, 1e9);
        assert_eq!(huge.tuples_per_page(4096), 1);
    }

    #[test]
    fn pages_for_zero_tuples_is_zero() {
        let c = ColumnSpec::new("k", ColumnType::Int64);
        assert_eq!(c.pages_for_tuples(0, 4096), 0);
    }

    #[test]
    fn bytes_for_tuples_rounds_up() {
        let c = ColumnSpec::with_width("f", ColumnType::Dict { cardinality: 2 }, 0.3);
        assert_eq!(c.bytes_for_tuples(10), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_is_rejected() {
        let _ = ColumnSpec::with_width("x", ColumnType::Int64, 0.0);
    }
}
