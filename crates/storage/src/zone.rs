//! Zone maps: per-chunk min/max summaries for data skipping.
//!
//! A [`ZoneMap`] records, for every column of a snapshot, the minimum and
//! maximum value of each *chunk* (the scan-sharing granularity of the
//! paper). A selective query intersects its predicate with the zone
//! metadata before the scan ever reaches the buffer-management backend:
//! chunks whose `[min, max]` interval cannot satisfy the predicate are
//! removed from the scan's SID ranges, so neither the page-level policies
//! (LRU/PBM) nor the Active Buffer Manager see them at all. That is what
//! wires skipping into the sharing machinery *for free* — a pruned chunk is
//! never registered, so ABM relevance and PBM consumption predictions only
//! count scans that still want the chunk.
//!
//! Zone entries are **conservative**: an entry may cover a wider interval
//! than the data (e.g. a pseudo-random column reports its generator span),
//! which can only cause a chunk to be kept, never wrongly skipped. Chunks
//! with no entry always survive.

use scanshare_common::{RangeList, TupleRange};

use crate::datagen::Value;

/// The `[min, max]` interval of one chunk of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneEntry {
    /// Smallest value in the chunk (inclusive, possibly conservative).
    pub min: Value,
    /// Largest value in the chunk (inclusive, possibly conservative).
    pub max: Value,
}

impl ZoneEntry {
    /// An entry covering exactly `value`.
    pub fn point(value: Value) -> Self {
        Self {
            min: value,
            max: value,
        }
    }

    /// The widest (never-prunes) entry.
    pub fn full() -> Self {
        Self {
            min: Value::MIN,
            max: Value::MAX,
        }
    }

    /// Widens the entry to cover `value`.
    pub fn widen(&mut self, value: Value) {
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges two entries into one covering both.
    pub fn merge(&self, other: &ZoneEntry) -> ZoneEntry {
        ZoneEntry {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// The exact entry of a value slice (`None` for an empty slice).
    pub fn of_values(values: &[Value]) -> Option<ZoneEntry> {
        let (&first, rest) = values.split_first()?;
        let mut entry = ZoneEntry::point(first);
        for &v in rest {
            entry.widen(v);
        }
        Some(entry)
    }
}

/// Comparison operators a zone map can prune against; mirrors the executor's
/// predicate operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneOp {
    /// `value < constant`
    Lt,
    /// `value <= constant`
    Le,
    /// `value > constant`
    Gt,
    /// `value >= constant`
    Ge,
    /// `value == constant`
    Eq,
}

/// A single-column comparison predicate in zone-map form. Unlike the
/// executor's `Predicate` (whose column index is positional within the
/// query's projection), `column` here is the **table** column index, so the
/// same value is meaningful to the storage layer, the execution engine and
/// the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZonePredicate {
    /// Table column index the predicate applies to.
    pub column: usize,
    /// Comparison operator.
    pub op: ZoneOp,
    /// Constant to compare against.
    pub value: Value,
}

impl ZonePredicate {
    /// Creates a predicate over table column `column`.
    pub fn new(column: usize, op: ZoneOp, value: Value) -> Self {
        Self { column, op, value }
    }

    /// Whether a chunk with interval `entry` can contain a matching value.
    pub fn may_match(&self, entry: &ZoneEntry) -> bool {
        match self.op {
            ZoneOp::Lt => entry.min < self.value,
            ZoneOp::Le => entry.min <= self.value,
            ZoneOp::Gt => entry.max > self.value,
            ZoneOp::Ge => entry.max >= self.value,
            ZoneOp::Eq => entry.min <= self.value && self.value <= entry.max,
        }
    }

    /// Whether one concrete value matches (used by tests to cross-check
    /// pruning against row-level evaluation).
    pub fn matches(&self, v: Value) -> bool {
        match self.op {
            ZoneOp::Lt => v < self.value,
            ZoneOp::Le => v <= self.value,
            ZoneOp::Gt => v > self.value,
            ZoneOp::Ge => v >= self.value,
            ZoneOp::Eq => v == self.value,
        }
    }
}

/// Per-chunk min/max metadata of one snapshot: `columns[col][chunk]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneMap {
    chunk_tuples: u64,
    columns: Vec<Vec<ZoneEntry>>,
}

impl ZoneMap {
    /// Builds a zone map directly from per-column entry vectors (all columns
    /// must agree on the chunk count).
    pub fn from_entries(chunk_tuples: u64, columns: Vec<Vec<ZoneEntry>>) -> Self {
        debug_assert!(chunk_tuples > 0);
        debug_assert!(columns.windows(2).all(|w| w[0].len() == w[1].len()));
        Self {
            chunk_tuples,
            columns,
        }
    }

    /// Builds the exact zone map of column-major `values` (one vector per
    /// column, equal lengths) — the checkpoint-install path, where the
    /// merged data is materialized anyway.
    pub fn from_values(chunk_tuples: u64, values: &[Vec<Value>]) -> Self {
        debug_assert!(chunk_tuples > 0);
        let columns = values
            .iter()
            .map(|col| {
                col.chunks(chunk_tuples as usize)
                    .map(|chunk| ZoneEntry::of_values(chunk).unwrap_or_else(ZoneEntry::full))
                    .collect()
            })
            .collect();
        Self {
            chunk_tuples,
            columns,
        }
    }

    /// Chunk granularity the map was built with.
    pub fn chunk_tuples(&self) -> u64 {
        self.chunk_tuples
    }

    /// Number of columns covered.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Number of chunks covered (0 for an empty map).
    pub fn chunk_count(&self) -> usize {
        self.columns.first().map(Vec::len).unwrap_or(0)
    }

    /// The entry of `(col, chunk)`, if recorded.
    pub fn entry(&self, col: usize, chunk: usize) -> Option<ZoneEntry> {
        self.columns.get(col).and_then(|c| c.get(chunk)).copied()
    }

    /// The per-column entry vectors (for manifest serialization).
    pub fn entries(&self) -> &[Vec<ZoneEntry>] {
        &self.columns
    }

    /// Widens the entries covering the appended SID range
    /// `[old_tuples, old_tuples + rows)` with the appended values
    /// (column-major), growing the chunk vectors as needed — the bulk-append
    /// path, which extends the last partial chunk and adds fresh ones.
    pub fn widen_append(&mut self, old_tuples: u64, rows: &[Vec<Value>]) {
        for (col, values) in rows.iter().enumerate() {
            if col >= self.columns.len() {
                break;
            }
            for (i, &v) in values.iter().enumerate() {
                let chunk = ((old_tuples + i as u64) / self.chunk_tuples) as usize;
                let entries = &mut self.columns[col];
                while entries.len() <= chunk {
                    entries.push(ZoneEntry::point(v));
                }
                entries[chunk].widen(v);
            }
        }
    }

    /// Whether chunk `chunk` can contain a row matching `pred`. Chunks
    /// without an entry (or predicates on uncovered columns) always may.
    pub fn chunk_may_match(&self, pred: &ZonePredicate, chunk: usize) -> bool {
        match self.entry(pred.column, chunk) {
            Some(entry) => pred.may_match(&entry),
            None => true,
        }
    }

    /// The chunk-aligned SID ranges of `[0, stable)` that survive `pred`:
    /// the complement is what a scan can skip. Chunks beyond the map's
    /// coverage always survive.
    pub fn surviving_ranges(&self, pred: &ZonePredicate, stable: u64) -> RangeList {
        let mut out = RangeList::new();
        if stable == 0 {
            return out;
        }
        let chunks = stable.div_ceil(self.chunk_tuples);
        for chunk in 0..chunks {
            if self.chunk_may_match(pred, chunk as usize) {
                let start = chunk * self.chunk_tuples;
                let end = (start + self.chunk_tuples).min(stable);
                out.add(TupleRange::new(start, end));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> ZoneMap {
        // One column, 3 chunks of 10 tuples: [0,9], [10,19], [20,29].
        ZoneMap::from_entries(
            10,
            vec![vec![
                ZoneEntry { min: 0, max: 9 },
                ZoneEntry { min: 10, max: 19 },
                ZoneEntry { min: 20, max: 29 },
            ]],
        )
    }

    #[test]
    fn operators_prune_and_keep_correctly() {
        let m = map();
        let keep = |op, value| m.surviving_ranges(&ZonePredicate::new(0, op, value), 30);
        assert_eq!(keep(ZoneOp::Lt, 10).total_tuples(), 10);
        assert_eq!(keep(ZoneOp::Le, 10).total_tuples(), 20);
        assert_eq!(keep(ZoneOp::Gt, 19).total_tuples(), 10);
        assert_eq!(keep(ZoneOp::Ge, 19).total_tuples(), 20);
        assert_eq!(keep(ZoneOp::Eq, 15).total_tuples(), 10);
        assert_eq!(keep(ZoneOp::Eq, 95).total_tuples(), 0);
        assert_eq!(keep(ZoneOp::Ge, -100).total_tuples(), 30);
    }

    #[test]
    fn surviving_ranges_are_chunk_aligned_and_clamped() {
        let m = map();
        // stable smaller than coverage: last chunk is clamped.
        let survivors = m.surviving_ranges(&ZonePredicate::new(0, ZoneOp::Ge, 20), 25);
        assert_eq!(survivors.ranges(), &[TupleRange::new(20, 25)]);
        // stable larger than coverage: uncovered chunks always survive.
        let survivors = m.surviving_ranges(&ZonePredicate::new(0, ZoneOp::Lt, 0), 45);
        assert_eq!(survivors.ranges(), &[TupleRange::new(30, 45)]);
    }

    #[test]
    fn uncovered_columns_never_prune() {
        let m = map();
        let survivors = m.surviving_ranges(&ZonePredicate::new(7, ZoneOp::Eq, -1), 30);
        assert_eq!(survivors.total_tuples(), 30);
    }

    #[test]
    fn from_values_is_exact() {
        let m = ZoneMap::from_values(3, &[vec![5, 1, 9, 2, 2, 2, 7]]);
        assert_eq!(m.chunk_count(), 3);
        assert_eq!(m.entry(0, 0), Some(ZoneEntry { min: 1, max: 9 }));
        assert_eq!(m.entry(0, 1), Some(ZoneEntry { min: 2, max: 2 }));
        assert_eq!(m.entry(0, 2), Some(ZoneEntry { min: 7, max: 7 }));
    }

    #[test]
    fn widen_append_extends_partial_and_new_chunks() {
        let mut m = ZoneMap::from_values(4, &[vec![1, 2, 3]]);
        assert_eq!(m.chunk_count(), 1);
        m.widen_append(3, &[vec![100, -5, 8, 9, 10]]);
        // Chunk 0 absorbed sid 3 (value 100); chunk 1 holds sids 4..8.
        assert_eq!(m.entry(0, 0), Some(ZoneEntry { min: 1, max: 100 }));
        assert_eq!(m.entry(0, 1), Some(ZoneEntry { min: -5, max: 10 }));
    }

    #[test]
    fn entry_merge_and_point_cover_both_sides() {
        let a = ZoneEntry::point(3);
        let b = ZoneEntry { min: -1, max: 2 };
        assert_eq!(a.merge(&b), ZoneEntry { min: -1, max: 3 });
        assert_eq!(ZoneEntry::of_values(&[]), None);
        assert!(ZoneEntry::full().min < ZoneEntry::full().max);
    }

    #[test]
    fn pruning_never_drops_a_matching_row() {
        // Cross-check surviving_ranges against row-level evaluation for a
        // deterministic pseudo-random column.
        let values: Vec<Value> = (0..200u64)
            .map(|sid| (crate::datagen::splitmix64(sid) % 50) as i64)
            .collect();
        let m = ZoneMap::from_values(16, std::slice::from_ref(&values));
        for (op, value) in [
            (ZoneOp::Lt, 5),
            (ZoneOp::Le, 0),
            (ZoneOp::Gt, 45),
            (ZoneOp::Ge, 49),
            (ZoneOp::Eq, 13),
        ] {
            let pred = ZonePredicate::new(0, op, value);
            let survivors = m.surviving_ranges(&pred, 200);
            for (sid, &v) in values.iter().enumerate() {
                if pred.matches(v) {
                    assert!(
                        survivors.contains(sid as u64),
                        "{pred:?} pruned matching sid {sid} (value {v})"
                    );
                }
            }
        }
    }
}
