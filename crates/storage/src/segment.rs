//! On-disk column segments: materialized snapshots and cold reopen.
//!
//! [`Storage::materialize_table`](crate::Storage::materialize_table) writes
//! the current master snapshot of a table to a directory as one *segment
//! file per column* plus a small text manifest, and registers the result in
//! a [`FileStore`] so the real-file I/O device
//! ([`scanshare_iosim::FileIoDevice`]) can serve page reads off disk.
//!
//! # Segment layout
//!
//! Every page of a column occupies one fixed-size *slot* of
//! `align_up(tuples_per_page * 8, 4096)` bytes at offset
//! `page_index * slot_bytes`: values are stored as 8-byte little-endian
//! `i64`s (the engine's universal value representation) with zero padding up
//! to the slot boundary. Slots are 4096-byte aligned so reads satisfy
//! `O_DIRECT` alignment rules, and `Snapshot::page` maps to a `(file,
//! offset)` pair by simple arithmetic. A 4096-byte footer block after the
//! last slot records a magic number, the page count and the slot size so a
//! cold open can sanity-check the file against the manifest.
//!
//! # Manifest
//!
//! The manifest (`<table>.manifest`) is a whitespace-separated text file
//! listing the table spec (page size, chunk granularity, stable tuples,
//! column names/types/widths) and, per column, the ordered [`PageId`]s the
//! snapshot was materialized with. Recording the page ids verbatim is what
//! makes a cold reopen ([`crate::Storage::open_directory`]) transparent: the
//! reopened snapshot references the *same* page ids, so buffer-manager state
//! and I/O traces are comparable across the round trip.

use std::collections::{HashMap, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use scanshare_common::sync::{Mutex, RwLock};
use scanshare_common::{Error, PageId, Result};
use scanshare_iosim::PageReader;

use crate::column::{ColumnSpec, ColumnType};
use crate::datagen::Value;
use crate::layout::TableLayout;
use crate::snapshot::Snapshot;
use crate::storage::Storage;
use crate::zone::ZoneEntry;

/// Slot (and footer) alignment in bytes; the strictest alignment `O_DIRECT`
/// requires on common filesystems.
pub const SEGMENT_ALIGN: u64 = 4096;

/// Magic bytes opening every segment footer block.
const FOOTER_MAGIC: &[u8; 8] = b"SSEGv1\0\0";

/// First line of every table manifest.
const MANIFEST_HEADER: &str = "scanshare-table-manifest v1";

/// Default capacity (in pages) of the decoded-page cache a [`FileStore`]
/// keeps so a page read by the I/O device is decoded once, not once per
/// consumer.
const DEFAULT_CACHE_PAGES: usize = 1024;

fn align_up(n: u64, align: u64) -> u64 {
    n.div_ceil(align) * align
}

/// Bytes of one page slot of column `col`: the full 8-byte value payload of
/// a page, rounded up to [`SEGMENT_ALIGN`].
pub fn slot_bytes(layout: &TableLayout, col: usize) -> u64 {
    align_up(layout.tuples_per_page(col) * 8, SEGMENT_ALIGN)
}

fn segment_file_name(table: &str, col: usize, version: u64) -> String {
    format!("{table}_col{col}.v{version}.seg")
}

pub(crate) fn manifest_file_name(table: &str) -> String {
    format!("{table}.manifest")
}

/// Fsyncs a directory so a just-renamed file inside it is durable.
fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

fn validate_name(kind: &str, name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if ok {
        Ok(())
    } else {
        Err(Error::config(format!(
            "{kind} name {name:?} cannot be materialized: segment file names allow only \
             ASCII alphanumerics, '_' and '-'"
        )))
    }
}

fn type_token(t: &ColumnType) -> String {
    match t {
        ColumnType::Int64 => "int64".to_string(),
        ColumnType::Decimal => "decimal".to_string(),
        ColumnType::Date => "date".to_string(),
        ColumnType::Dict { cardinality } => format!("dict:{cardinality}"),
        ColumnType::Varchar { avg_len } => format!("varchar:{avg_len}"),
    }
}

fn parse_type_token(token: &str) -> Result<ColumnType> {
    let bad = || Error::io(format!("manifest: unknown column type {token:?}"));
    match token {
        "int64" => Ok(ColumnType::Int64),
        "decimal" => Ok(ColumnType::Decimal),
        "date" => Ok(ColumnType::Date),
        other => {
            let (kind, arg) = other.split_once(':').ok_or_else(bad)?;
            match kind {
                "dict" => Ok(ColumnType::Dict {
                    cardinality: arg.parse().map_err(|_| bad())?,
                }),
                "varchar" => Ok(ColumnType::Varchar {
                    avg_len: arg.parse().map_err(|_| bad())?,
                }),
                _ => Err(bad()),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Writes the segment files and manifest for `snapshot` into `dir`,
/// replacing any previous materialization of the same table. Values are
/// pulled through [`Storage::read_page`], so whatever the snapshot would
/// serve in memory (generated base data, appended pages, checkpoint images)
/// is exactly what lands on disk.
///
/// The write is *crash-atomic*: segments land in fresh `.v<N>.seg` files
/// (the previous version's files are never modified), each is fsynced, and
/// the manifest — the single commit point — is written to a temp file,
/// fsynced, renamed over `<table>.manifest` and the directory fsynced. A
/// crash anywhere in between leaves the previous manifest pointing at the
/// previous, untouched segment files; orphaned new-version segments are
/// overwritten by the next materialization. `wal_seq` records the WAL
/// sequence number this image covers, so recovery can skip commit records
/// the image already contains. Returns the version number written.
pub(crate) fn write_table(
    storage: &Storage,
    layout: &TableLayout,
    snapshot: &Snapshot,
    dir: &Path,
    wal_seq: u64,
) -> Result<u64> {
    let table_name = &layout.spec().name;
    validate_name("table", table_name)?;
    for col in &layout.spec().columns {
        validate_name("column", &col.name)?;
    }
    fs::create_dir_all(dir)?;

    // The previous durable version, if any, fixes the new version number
    // and tells us which files to clean up once the new image is durable.
    let manifest_path = dir.join(manifest_file_name(table_name));
    let previous = match fs::read_to_string(&manifest_path) {
        Ok(text) => parse_manifest(&manifest_path, &text).ok(),
        Err(_) => None,
    };
    let version = previous.as_ref().map_or(1, |m| m.version + 1);

    for col in 0..layout.column_count() {
        let slot = slot_bytes(layout, col);
        let path = dir.join(segment_file_name(table_name, col, version));
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut writer = BufWriter::new(file);
        let pages = snapshot.column_pages(col).len() as u64;
        let mut slot_buf = vec![0u8; slot as usize];
        for page_index in 0..pages {
            let data = storage.read_page(layout, snapshot, col, page_index)?;
            let needed = data.values.len() * 8;
            if needed as u64 > slot {
                return Err(Error::internal(format!(
                    "page {} of {table_name}.{col} holds {} values but the slot is {slot} bytes",
                    data.page,
                    data.values.len()
                )));
            }
            slot_buf.fill(0);
            for (i, v) in data.values.iter().enumerate() {
                slot_buf[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
            }
            writer.write_all(&slot_buf)?;
        }
        // Footer block: magic, page count, slot bytes, value width.
        let mut footer = vec![0u8; SEGMENT_ALIGN as usize];
        footer[0..8].copy_from_slice(FOOTER_MAGIC);
        footer[8..16].copy_from_slice(&pages.to_le_bytes());
        footer[16..24].copy_from_slice(&slot.to_le_bytes());
        footer[24..32].copy_from_slice(&8u64.to_le_bytes());
        writer.write_all(&footer)?;
        writer
            .into_inner()
            .map_err(|e| e.into_error())?
            .sync_all()?;
    }

    let mut manifest = String::new();
    manifest.push_str(MANIFEST_HEADER);
    manifest.push('\n');
    manifest.push_str(&format!("table {table_name}\n"));
    manifest.push_str(&format!("table_id {}\n", snapshot.table().raw()));
    manifest.push_str(&format!("version {version}\n"));
    manifest.push_str(&format!("wal_seq {wal_seq}\n"));
    manifest.push_str(&format!("page_size {}\n", layout.page_size_bytes()));
    manifest.push_str(&format!("chunk_tuples {}\n", layout.chunk_tuples()));
    manifest.push_str(&format!("stable_tuples {}\n", snapshot.stable_tuples()));
    manifest.push_str(&format!("snapshot {}\n", snapshot.id().raw()));
    manifest.push_str(&format!("columns {}\n", layout.column_count()));
    let zone_map = storage.zone_map(snapshot.id());
    for (idx, col) in layout.spec().columns.iter().enumerate() {
        manifest.push_str(&format!(
            "column {idx} {} {} {}\n",
            col.name,
            type_token(&col.column_type),
            col.bytes_per_tuple
        ));
        manifest.push_str(&format!("pages {idx}"));
        for page in snapshot.column_pages(idx) {
            manifest.push_str(&format!(" {}", page.raw()));
        }
        manifest.push('\n');
        // Persist the snapshot's zone metadata (min/max pairs per chunk) so
        // a cold reopen keeps pruning exactly like the engine that wrote
        // this image.
        if let Some(entries) = zone_map.as_ref().and_then(|z| z.entries().get(idx)) {
            manifest.push_str(&format!("zones {idx}"));
            for e in entries {
                manifest.push_str(&format!(" {} {}", e.min, e.max));
            }
            manifest.push('\n');
        }
    }
    // Atomic manifest install: temp file, fsync, rename, fsync directory.
    // The rename is the commit point; a crash before it leaves the previous
    // manifest (pointing at the previous version's segments) authoritative.
    let tmp_path = dir.join(format!("{table_name}.manifest.tmp"));
    {
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(manifest.as_bytes())?;
        tmp.sync_all()?;
    }
    fs::rename(&tmp_path, &manifest_path)?;
    fsync_dir(dir)?;
    // Only now is it safe to drop the previous version's segment files.
    if let Some(old) = previous {
        for col in 0..old.columns.len() {
            let _ = fs::remove_file(dir.join(segment_file_name(&old.name, col, old.version)));
        }
    }
    Ok(version)
}

// ---------------------------------------------------------------------------
// Manifest parsing (cold reopen)
// ---------------------------------------------------------------------------

/// Everything a manifest records about one materialized table.
#[derive(Debug, Clone)]
pub(crate) struct ManifestTable {
    pub name: String,
    /// The table id the image was materialized under, when recorded.
    /// Reopening restores tables in id order so WAL records — which
    /// reference tables by id — resolve to the same tables after recovery.
    pub table_id: Option<u32>,
    /// Materialization version; segment files are `<name>_col<i>.v<version>.seg`.
    pub version: u64,
    /// WAL sequence number this durable image covers: commit records with a
    /// per-table sequence at or below this are already folded into the
    /// segments and must be skipped during recovery.
    pub wal_seq: u64,
    pub page_size: u64,
    pub chunk_tuples: u64,
    pub stable_tuples: u64,
    pub columns: Vec<ColumnSpec>,
    pub column_pages: Vec<Vec<PageId>>,
    /// Per-column per-chunk min/max zone entries, empty when the image was
    /// written without zone metadata (older manifests stay readable).
    pub zones: Vec<Vec<ZoneEntry>>,
}

fn parse_manifest(path: &Path, text: &str) -> Result<ManifestTable> {
    let ctx = |msg: String| Error::io(format!("{}: {msg}", path.display()));
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(MANIFEST_HEADER) {
        return Err(ctx("not a scanshare table manifest".to_string()));
    }
    let mut name = None;
    let mut table_id = None;
    let mut version = 1u64;
    let mut wal_seq = 0u64;
    let mut page_size = None;
    let mut chunk_tuples = None;
    let mut stable_tuples = None;
    let mut columns: Vec<ColumnSpec> = Vec::new();
    let mut column_pages: Vec<Vec<PageId>> = Vec::new();
    let mut zones: Vec<Vec<ZoneEntry>> = Vec::new();
    for line in lines {
        let mut fields = line.split_whitespace();
        let Some(key) = fields.next() else { continue };
        match key {
            "table" => name = fields.next().map(str::to_string),
            "table_id" => {
                table_id = Some(
                    fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| ctx("malformed table_id line".to_string()))?,
                );
            }
            "version" => {
                version = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ctx("malformed version line".to_string()))?;
            }
            "wal_seq" => {
                wal_seq = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ctx("malformed wal_seq line".to_string()))?;
            }
            "page_size" => page_size = fields.next().and_then(|v| v.parse().ok()),
            "chunk_tuples" => chunk_tuples = fields.next().and_then(|v| v.parse().ok()),
            "stable_tuples" => stable_tuples = fields.next().and_then(|v| v.parse().ok()),
            "snapshot" | "columns" => {}
            "column" => {
                let idx: usize = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ctx("malformed column line".to_string()))?;
                if idx != columns.len() {
                    return Err(ctx(format!("column {idx} out of order")));
                }
                let col_name = fields
                    .next()
                    .ok_or_else(|| ctx("column line missing name".to_string()))?;
                let ty = parse_type_token(
                    fields
                        .next()
                        .ok_or_else(|| ctx("column line missing type".to_string()))?,
                )?;
                let width: f64 = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ctx("column line missing width".to_string()))?;
                columns.push(ColumnSpec::with_width(col_name, ty, width));
            }
            "pages" => {
                let idx: usize = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ctx("malformed pages line".to_string()))?;
                if idx != column_pages.len() {
                    return Err(ctx(format!("pages {idx} out of order")));
                }
                let ids: Option<Vec<PageId>> = fields
                    .map(|v| v.parse::<u64>().ok().map(PageId::new))
                    .collect();
                column_pages
                    .push(ids.ok_or_else(|| ctx("pages line holds a non-numeric id".to_string()))?);
            }
            "zones" => {
                let idx: usize = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ctx("malformed zones line".to_string()))?;
                if idx != zones.len() {
                    return Err(ctx(format!("zones {idx} out of order")));
                }
                let nums: Vec<i64> = fields
                    .map(|v| v.parse::<i64>())
                    .collect::<std::result::Result<_, _>>()
                    .map_err(|_| ctx("zones line holds a non-numeric bound".to_string()))?;
                if nums.len() % 2 != 0 {
                    return Err(ctx("zones line holds an odd number of bounds".to_string()));
                }
                zones.push(
                    nums.chunks_exact(2)
                        .map(|pair| ZoneEntry {
                            min: pair[0],
                            max: pair[1],
                        })
                        .collect(),
                );
            }
            other => return Err(ctx(format!("unknown manifest key {other:?}"))),
        }
    }
    let name = name.ok_or_else(|| ctx("missing table name".to_string()))?;
    if columns.is_empty() || columns.len() != column_pages.len() {
        return Err(ctx(format!(
            "{} column specs but {} page lists",
            columns.len(),
            column_pages.len()
        )));
    }
    if !zones.is_empty()
        && (zones.len() != columns.len() || zones.windows(2).any(|w| w[0].len() != w[1].len()))
    {
        return Err(ctx(
            "zone entries must cover every column with equal chunk counts".to_string(),
        ));
    }
    Ok(ManifestTable {
        name,
        table_id,
        version,
        wal_seq,
        page_size: page_size.ok_or_else(|| ctx("missing page_size".to_string()))?,
        chunk_tuples: chunk_tuples.ok_or_else(|| ctx("missing chunk_tuples".to_string()))?,
        stable_tuples: stable_tuples.ok_or_else(|| ctx("missing stable_tuples".to_string()))?,
        columns,
        column_pages,
        zones,
    })
}

/// Reads every `*.manifest` in `dir`, ordered by recorded table id (file
/// name breaks ties and orders manifests from before table ids were
/// recorded), so a reopen assigns every table the id its WAL records
/// reference.
pub(crate) fn read_manifests(dir: &Path) -> Result<Vec<ManifestTable>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "manifest"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)?;
        out.push(parse_manifest(&path, &text)?);
    }
    out.sort_by(|a, b| {
        let key = |m: &ManifestTable| m.table_id.map_or(u64::from(u32::MAX) + 1, u64::from);
        key(a).cmp(&key(b)).then_with(|| a.name.cmp(&b.name))
    });
    Ok(out)
}

// ---------------------------------------------------------------------------
// FileStore
// ---------------------------------------------------------------------------

/// Where one page lives on disk.
#[derive(Debug, Clone, Copy)]
struct PageSlot {
    segment: usize,
    offset: u64,
    slot_bytes: u64,
    value_count: usize,
}

#[derive(Debug)]
struct Segment {
    path: PathBuf,
    file: File,
    /// Handle opened with `O_DIRECT`, present only while the flag is active
    /// and the filesystem accepted it.
    direct: Option<File>,
}

#[derive(Debug, Default)]
struct FileMap {
    segments: Vec<Segment>,
    /// (table name, column index) → index into `segments`; re-materializing
    /// a table replaces its entries in place.
    seg_index: HashMap<(String, usize), usize>,
    /// Pages registered per table, so a re-materialization can drop stale
    /// slots.
    table_pages: HashMap<String, Vec<PageId>>,
    pages: HashMap<PageId, PageSlot>,
}

#[derive(Debug)]
struct DecodeCache {
    map: HashMap<PageId, Arc<Vec<Value>>>,
    order: VecDeque<PageId>,
    capacity: usize,
}

impl DecodeCache {
    fn insert(&mut self, page: PageId, values: Arc<Vec<Value>>) {
        if self.map.insert(page, values).is_none() {
            self.order.push_back(page);
        }
        while self.map.len() > self.capacity {
            let Some(evict) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&evict);
        }
    }

    fn remove(&mut self, page: PageId) {
        if self.map.remove(&page).is_some() {
            self.order.retain(|p| *p != page);
        }
    }
}

/// Maps [`PageId`]s to on-disk segment slots and serves positional page
/// reads — the storage side of the real-file I/O backend.
///
/// The store implements [`scanshare_iosim::PageReader`], so an
/// [`scanshare_iosim::FileIoDevice`] built over it performs real `pread`s
/// against the segment files. Decoded pages land in a small bounded FIFO
/// cache that [`Storage::read_page`] consults before falling back to its own
/// synchronous read, so data correctness never depends on the device having
/// read a page first.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    o_direct: AtomicBool,
    /// Bytes read off disk through this store (device reads + synchronous
    /// fallback reads).
    bytes_read: AtomicU64,
    map: RwLock<FileMap>,
    cache: Mutex<DecodeCache>,
}

impl FileStore {
    /// Creates an empty store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            o_direct: AtomicBool::new(false),
            bytes_read: AtomicU64::new(0),
            map: RwLock::new(FileMap::default()),
            cache: Mutex::new(DecodeCache {
                map: HashMap::new(),
                order: VecDeque::new(),
                capacity: DEFAULT_CACHE_PAGES,
            }),
        }
    }

    /// The directory the segment files live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether `page` is backed by a segment file.
    pub fn contains(&self, page: PageId) -> bool {
        self.map.read().pages.contains_key(&page)
    }

    /// Number of pages currently mapped to disk slots.
    pub fn page_count(&self) -> usize {
        self.map.read().pages.len()
    }

    /// Total bytes read off disk through this store so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Enables or disables `O_DIRECT` reads at runtime. Enabling opens a
    /// second, direct handle per segment; if the platform or filesystem
    /// rejects the flag (tmpfs, for one, does not support it) the store
    /// stays on buffered reads. Returns whether `O_DIRECT` is active after
    /// the call.
    pub fn set_o_direct(&self, enabled: bool) -> bool {
        let mut map = self.map.write();
        if !enabled {
            for seg in &mut map.segments {
                seg.direct = None;
            }
            self.o_direct.store(false, Ordering::Relaxed);
            return false;
        }
        let mut all_ok = true;
        for seg in &mut map.segments {
            if seg.direct.is_none() {
                match open_direct(&seg.path) {
                    Some(file) => seg.direct = Some(file),
                    None => {
                        all_ok = false;
                        break;
                    }
                }
            }
        }
        if !all_ok {
            for seg in &mut map.segments {
                seg.direct = None;
            }
        }
        self.o_direct.store(all_ok, Ordering::Relaxed);
        all_ok
    }

    /// Whether reads currently go through `O_DIRECT` handles.
    pub fn o_direct_active(&self) -> bool {
        self.o_direct.load(Ordering::Relaxed)
    }

    /// Registers (or replaces) the mapping for one materialized table. The
    /// segment files of the given materialization version must already
    /// exist on disk.
    pub(crate) fn register_table(
        &self,
        layout: &TableLayout,
        snapshot: &Snapshot,
        version: u64,
    ) -> Result<()> {
        let table_name = layout.spec().name.clone();
        let o_direct = self.o_direct_active();
        let mut map = self.map.write();
        // Drop any previous registration of this table.
        if let Some(old_pages) = map.table_pages.remove(&table_name) {
            let mut cache = self.cache.lock();
            for page in old_pages {
                map.pages.remove(&page);
                cache.remove(page);
            }
        }
        let mut registered = Vec::new();
        for col in 0..layout.column_count() {
            let path = self.dir.join(segment_file_name(&table_name, col, version));
            let file = File::open(&path)?;
            let direct = if o_direct { open_direct(&path) } else { None };
            let segment = Segment { path, file, direct };
            let seg_idx = match map.seg_index.get(&(table_name.clone(), col)) {
                Some(&idx) => {
                    map.segments[idx] = segment;
                    idx
                }
                None => {
                    map.segments.push(segment);
                    let idx = map.segments.len() - 1;
                    map.seg_index.insert((table_name.clone(), col), idx);
                    idx
                }
            };
            let slot = slot_bytes(layout, col);
            for (page_index, &page) in snapshot.column_pages(col).iter().enumerate() {
                let sid_range =
                    layout.sid_range_of_page(col, page_index as u64, snapshot.stable_tuples());
                map.pages.insert(
                    page,
                    PageSlot {
                        segment: seg_idx,
                        offset: page_index as u64 * slot,
                        slot_bytes: slot,
                        value_count: sid_range.len() as usize,
                    },
                );
                registered.push(page);
            }
        }
        map.table_pages.insert(table_name, registered);
        Ok(())
    }

    /// The decoded values of `page`, if it was recently read off disk.
    pub fn cached_page(&self, page: PageId) -> Option<Arc<Vec<Value>>> {
        self.cache.lock().map.get(&page).cloned()
    }

    /// Decoded values of a file-backed page: served from the decode cache
    /// when possible, otherwise read synchronously off disk. `None` means
    /// the page is not backed by this store (it lives in memory — appended
    /// or checkpointed after the last materialization).
    pub fn page_values(&self, page: PageId) -> std::io::Result<Option<Arc<Vec<Value>>>> {
        if let Some(values) = self.cached_page(page) {
            return Ok(Some(values));
        }
        let Some((values, _)) = self.read_and_decode(page)? else {
            return Ok(None);
        };
        Ok(Some(values))
    }

    /// Reads the slot of `page` off disk and decodes it, returning the
    /// values and the bytes transferred. `None` if the page is not mapped.
    fn read_and_decode(&self, page: PageId) -> std::io::Result<Option<(Arc<Vec<Value>>, u64)>> {
        let map = self.map.read();
        let Some(slot) = map.pages.get(&page).copied() else {
            return Ok(None);
        };
        let segment = &map.segments[slot.segment];
        let len = slot.slot_bytes as usize;
        let mut raw = vec![0u8; len + SEGMENT_ALIGN as usize];
        let shift = raw.as_ptr().align_offset(SEGMENT_ALIGN as usize);
        let buf = &mut raw[shift..shift + len];
        match &segment.direct {
            Some(direct) => pread_exact(direct, buf, slot.offset)?,
            None => pread_exact(&segment.file, buf, slot.offset)?,
        }
        let values: Vec<Value> = buf[..slot.value_count * 8]
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
            .collect();
        drop(map);
        let values = Arc::new(values);
        self.cache.lock().insert(page, Arc::clone(&values));
        self.bytes_read
            .fetch_add(slot.slot_bytes, Ordering::Relaxed);
        Ok(Some((values, slot.slot_bytes)))
    }
}

impl PageReader for FileStore {
    /// Device-side read: always performs the disk transfer (the buffer
    /// manager asked for a load, so the bytes must move), then parks the
    /// decoded values in the cache for [`Storage::read_page`] to pick up.
    /// Pages that are not file-backed read as zero bytes — they live in
    /// memory (appended or checkpointed after the last materialization), so
    /// no disk transfer is needed to serve them.
    fn read_page(&self, page: PageId) -> std::io::Result<u64> {
        match self.read_and_decode(page)? {
            Some((_, bytes)) => Ok(bytes),
            None => Ok(0),
        }
    }
}

/// Positional read of exactly `buf.len()` bytes at `offset`.
fn pread_exact(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset)
    }
    #[cfg(not(unix))]
    {
        let _ = (file, buf, offset);
        Err(std::io::Error::other(
            "positional segment reads require a unix platform",
        ))
    }
}

/// Opens `path` with `O_DIRECT`, returning `None` if the platform or
/// filesystem does not support it.
fn open_direct(path: &Path) -> Option<File> {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        use std::os::unix::fs::OpenOptionsExt;
        #[cfg(target_arch = "x86_64")]
        const O_DIRECT: i32 = 0x4000;
        #[cfg(target_arch = "aarch64")]
        const O_DIRECT: i32 = 0x10000;
        OpenOptions::new()
            .read(true)
            .custom_flags(O_DIRECT)
            .open(path)
            .ok()
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        let _ = path;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::DataGen;
    use crate::table::TableSpec;
    use std::sync::atomic::AtomicU32;

    static TEST_DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A unique, self-cleaning temp directory (zero-dep stand-in for the
    /// tempfile crate).
    struct TestDir(PathBuf);

    impl TestDir {
        fn new(tag: &str) -> Self {
            let seq = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir()
                .join(format!("scanshare-seg-{tag}-{}-{seq}", std::process::id()));
            fs::create_dir_all(&path).unwrap();
            Self(path)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample_storage() -> (Arc<Storage>, scanshare_common::TableId) {
        let storage = Storage::with_seed(1024, 500, 11);
        let spec = TableSpec::new(
            "seg_t",
            vec![
                ColumnSpec::with_width("a", ColumnType::Int64, 8.0),
                ColumnSpec::with_width("b", ColumnType::Dict { cardinality: 16 }, 0.5),
            ],
            1000,
        );
        let id = storage
            .create_table_with_data(
                spec,
                vec![
                    DataGen::Sequential { start: 0, step: 3 },
                    DataGen::Uniform { min: 0, max: 15 },
                ],
            )
            .unwrap();
        (storage, id)
    }

    #[test]
    fn slot_bytes_are_aligned_and_hold_a_page() {
        let (storage, id) = sample_storage();
        let layout = storage.layout(id).unwrap();
        for col in 0..layout.column_count() {
            let slot = slot_bytes(&layout, col);
            assert_eq!(slot % SEGMENT_ALIGN, 0);
            assert!(slot >= layout.tuples_per_page(col) * 8);
        }
    }

    #[test]
    fn materialize_writes_segments_footer_and_manifest() {
        let (storage, id) = sample_storage();
        let dir = TestDir::new("write");
        storage.materialize_table(id, &dir.0).unwrap();
        let layout = storage.layout(id).unwrap();
        let snap = storage.master_snapshot(id).unwrap();
        for col in 0..layout.column_count() {
            let path = dir.0.join(segment_file_name("seg_t", col, 1));
            let bytes = fs::read(&path).unwrap();
            let pages = snap.column_pages(col).len() as u64;
            let slot = slot_bytes(&layout, col);
            assert_eq!(bytes.len() as u64, pages * slot + SEGMENT_ALIGN);
            let footer = &bytes[(pages * slot) as usize..];
            assert_eq!(&footer[0..8], FOOTER_MAGIC);
            assert_eq!(u64::from_le_bytes(footer[8..16].try_into().unwrap()), pages);
        }
        let manifest = fs::read_to_string(dir.0.join("seg_t.manifest")).unwrap();
        assert!(manifest.starts_with(MANIFEST_HEADER));
        let parsed = read_manifests(&dir.0).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "seg_t");
        assert_eq!(parsed[0].stable_tuples, 1000);
        assert_eq!(
            parsed[0].column_pages[0],
            snap.column_pages(0).to_vec(),
            "manifest records the snapshot's page ids verbatim"
        );
    }

    #[test]
    fn file_store_reads_match_the_in_memory_values() {
        let (storage, id) = sample_storage();
        let dir = TestDir::new("read");
        let store = storage.materialize_table(id, &dir.0).unwrap();
        let layout = storage.layout(id).unwrap();
        let snap = storage.master_snapshot(id).unwrap();
        for col in 0..layout.column_count() {
            for (idx, &page) in snap.column_pages(col).iter().enumerate() {
                let expected = storage.read_page(&layout, &snap, col, idx as u64).unwrap();
                let bytes = store.read_page(page).unwrap();
                assert_eq!(bytes, slot_bytes(&layout, col));
                let got = store.cached_page(page).expect("read decodes into cache");
                assert_eq!(*got, *expected.values);
            }
        }
        assert!(store.bytes_read() > 0);
    }

    #[test]
    fn unmapped_pages_read_as_zero_bytes() {
        let (storage, id) = sample_storage();
        let dir = TestDir::new("unmapped");
        let store = storage.materialize_table(id, &dir.0).unwrap();
        assert_eq!(store.read_page(PageId::new(999_999)).unwrap(), 0);
        assert!(store.page_values(PageId::new(999_999)).unwrap().is_none());
    }

    #[test]
    fn o_direct_toggle_never_breaks_reads() {
        let (storage, id) = sample_storage();
        let dir = TestDir::new("odirect");
        let store = storage.materialize_table(id, &dir.0).unwrap();
        let snap = storage.master_snapshot(id).unwrap();
        let page = snap.column_pages(0)[0];
        // Whether O_DIRECT is accepted depends on the filesystem backing the
        // temp dir (tmpfs rejects it); reads must work either way.
        let active = store.set_o_direct(true);
        assert_eq!(active, store.o_direct_active());
        assert!(store.read_page(page).unwrap() > 0);
        assert!(!store.set_o_direct(false));
        assert!(store.read_page(page).unwrap() > 0);
    }

    #[test]
    fn decode_cache_is_bounded() {
        let mut cache = DecodeCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: 2,
        };
        for i in 0..5u64 {
            cache.insert(PageId::new(i), Arc::new(vec![i as i64]));
        }
        assert_eq!(cache.map.len(), 2);
        assert!(cache.map.contains_key(&PageId::new(4)));
        assert!(!cache.map.contains_key(&PageId::new(0)));
    }

    #[test]
    fn cold_reopen_preserves_page_ids_and_values() {
        let (storage, id) = sample_storage();
        let dir = TestDir::new("reopen");
        storage.materialize_table(id, &dir.0).unwrap();
        let layout = storage.layout(id).unwrap();
        let snap = storage.master_snapshot(id).unwrap();

        let reopened = Storage::open_directory(&dir.0).unwrap();
        let rid = reopened.table_by_name("seg_t").unwrap().id;
        let rlayout = reopened.layout(rid).unwrap();
        let rsnap = reopened.master_snapshot(rid).unwrap();
        assert!(
            snap.same_pages(&rsnap),
            "reopened snapshot references the manifest's page ids verbatim"
        );
        assert_eq!(rsnap.stable_tuples(), snap.stable_tuples());
        for col in 0..layout.column_count() {
            assert_eq!(rlayout.tuples_per_page(col), layout.tuples_per_page(col));
            for idx in 0..snap.column_pages(col).len() as u64 {
                let a = storage.read_page(&layout, &snap, col, idx).unwrap();
                let b = reopened.read_page(&rlayout, &rsnap, col, idx).unwrap();
                assert_eq!(*a.values, *b.values, "column {col} page {idx}");
                assert_eq!(a.page, b.page);
            }
        }
        // Appending to the reopened table never collides with on-disk ids.
        let mut tx = reopened.begin_append(rid).unwrap();
        tx.append_rows(&[vec![7], vec![3]]).unwrap();
        let appended = tx.commit().unwrap();
        let max_disk = snap.pages().map(PageId::raw).max().unwrap();
        for page in appended.pages() {
            if !snap.references_page(page) {
                assert!(page.raw() > max_disk, "fresh page {page} collides");
            }
        }
    }

    #[test]
    fn rematerialization_bumps_version_and_drops_old_segments() {
        let (storage, id) = sample_storage();
        let dir = TestDir::new("version");
        storage.materialize_table(id, &dir.0).unwrap();
        assert!(dir.0.join(segment_file_name("seg_t", 0, 1)).exists());
        storage.materialize_table(id, &dir.0).unwrap();
        let parsed = read_manifests(&dir.0).unwrap();
        assert_eq!(parsed[0].version, 2);
        assert!(dir.0.join(segment_file_name("seg_t", 0, 2)).exists());
        assert!(
            !dir.0.join(segment_file_name("seg_t", 0, 1)).exists(),
            "previous version is cleaned up once the new manifest is durable"
        );
        // The reopened storage reads the new version's files.
        let reopened = Storage::open_directory(&dir.0).unwrap();
        let rid = reopened.table_by_name("seg_t").unwrap().id;
        assert!(reopened.master_snapshot(rid).is_ok());
    }

    #[test]
    fn manifest_records_wal_seq() {
        let (storage, id) = sample_storage();
        let dir = TestDir::new("walseq");
        let snap = storage.master_snapshot(id).unwrap();
        storage
            .materialize_snapshot_logged(&snap, &dir.0, 42)
            .unwrap();
        let parsed = read_manifests(&dir.0).unwrap();
        assert_eq!(parsed[0].wal_seq, 42);
        let reopened = Storage::open_directory(&dir.0).unwrap();
        let rid = reopened.table_by_name("seg_t").unwrap().id;
        assert_eq!(reopened.durable_wal_seq(rid), 42);
    }

    #[test]
    fn leftover_manifest_tmp_is_ignored_on_reopen() {
        let (storage, id) = sample_storage();
        let dir = TestDir::new("tmpleft");
        storage.materialize_table(id, &dir.0).unwrap();
        // A crash between the temp write and the rename leaves a .tmp file.
        fs::write(dir.0.join("seg_t.manifest.tmp"), "torn garbage").unwrap();
        let reopened = Storage::open_directory(&dir.0).unwrap();
        assert!(reopened.table_by_name("seg_t").is_ok());
    }

    #[test]
    fn open_directory_rejects_empty_and_garbled_dirs() {
        let dir = TestDir::new("empty");
        assert!(Storage::open_directory(&dir.0).is_err());
        fs::write(dir.0.join("junk.manifest"), "not a manifest\n").unwrap();
        assert!(Storage::open_directory(&dir.0).is_err());
    }

    #[test]
    fn type_tokens_round_trip() {
        for ty in [
            ColumnType::Int64,
            ColumnType::Decimal,
            ColumnType::Date,
            ColumnType::Dict { cardinality: 37 },
            ColumnType::Varchar { avg_len: 12 },
        ] {
            assert_eq!(parse_type_token(&type_token(&ty)).unwrap(), ty);
        }
        assert!(parse_type_token("blob").is_err());
        assert!(parse_type_token("dict:abc").is_err());
    }

    #[test]
    fn zone_metadata_round_trips_through_the_manifest() {
        let (storage, id) = sample_storage();
        let dir = TestDir::new("zones");
        storage.materialize_table(id, &dir.0).unwrap();
        let snap = storage.master_snapshot(id).unwrap();
        let zones = storage.zone_map(snap.id()).expect("base table has zones");
        let manifest = fs::read_to_string(dir.0.join("seg_t.manifest")).unwrap();
        assert!(manifest.contains("\nzones 0 "), "manifest persists zones");

        let reopened = Storage::open_directory(&dir.0).unwrap();
        let rid = reopened.table_by_name("seg_t").unwrap().id;
        let rsnap = reopened.master_snapshot(rid).unwrap();
        let rzones = reopened
            .zone_map(rsnap.id())
            .expect("cold reopen restores zones");
        assert_eq!(zones.entries(), rzones.entries());
    }

    #[test]
    fn manifests_without_zones_stay_readable_and_zoneless() {
        let (storage, id) = sample_storage();
        let dir = TestDir::new("nozones");
        storage.materialize_table(id, &dir.0).unwrap();
        // Strip the zones lines, as an older engine would have written.
        let path = dir.0.join("seg_t.manifest");
        let stripped: String = fs::read_to_string(&path)
            .unwrap()
            .lines()
            .filter(|l| !l.starts_with("zones "))
            .map(|l| format!("{l}\n"))
            .collect();
        fs::write(&path, stripped).unwrap();
        let reopened = Storage::open_directory(&dir.0).unwrap();
        let rid = reopened.table_by_name("seg_t").unwrap().id;
        let rsnap = reopened.master_snapshot(rid).unwrap();
        assert!(reopened.zone_map(rsnap.id()).is_none());
    }

    #[test]
    fn partial_zone_coverage_is_rejected() {
        let (storage, id) = sample_storage();
        let dir = TestDir::new("partialzones");
        storage.materialize_table(id, &dir.0).unwrap();
        let path = dir.0.join("seg_t.manifest");
        // Keep zones for column 0 only: the manifest becomes inconsistent.
        let mut seen = false;
        let broken: String = fs::read_to_string(&path)
            .unwrap()
            .lines()
            .filter(|l| {
                if l.starts_with("zones ") && seen {
                    return false;
                }
                if l.starts_with("zones ") {
                    seen = true;
                }
                true
            })
            .map(|l| format!("{l}\n"))
            .collect();
        fs::write(&path, broken).unwrap();
        assert!(Storage::open_directory(&dir.0).is_err());
    }

    #[test]
    fn hostile_names_are_rejected() {
        let storage = Storage::with_seed(1024, 500, 1);
        let spec = TableSpec::new(
            "evil/../name",
            vec![ColumnSpec::new("a", ColumnType::Int64)],
            10,
        );
        let id = storage.create_table(spec).unwrap();
        let dir = TestDir::new("hostile");
        let err = storage.materialize_table(id, &dir.0).unwrap_err();
        assert!(err.to_string().contains("segment file names"));
    }
}
