//! Table specifications.

use crate::column::{ColumnSpec, ColumnType};
use scanshare_common::{Error, Result};

/// Logical and physical description of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// Table name (unique within the catalog).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnSpec>,
    /// Number of tuples stored in stable storage when the table is created
    /// (appends may add more later).
    pub base_tuples: u64,
}

impl TableSpec {
    /// Creates a table spec.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnSpec>, base_tuples: u64) -> Self {
        Self {
            name: name.into(),
            columns,
            base_tuples,
        }
    }

    /// Convenience constructor: `n` identical Int64 columns named `c0..cN`.
    /// Useful in tests and microbenchmarks.
    pub fn with_int_columns(name: impl Into<String>, n: usize, base_tuples: u64) -> Self {
        let columns = (0..n)
            .map(|i| ColumnSpec::new(format!("c{i}"), ColumnType::Int64))
            .collect();
        Self::new(name, columns, base_tuples)
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Looks up a column by name, returning an error naming the table when
    /// it does not exist.
    pub fn column(&self, name: &str) -> Result<&ColumnSpec> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| Error::UnknownColumn {
                table: scanshare_common::TableId::new(u32::MAX),
                column: name.to_string(),
            })
    }

    /// Total compressed bytes per tuple across all columns.
    pub fn bytes_per_tuple(&self) -> f64 {
        self.columns.iter().map(|c| c.bytes_per_tuple).sum()
    }

    /// Total compressed size of the base data in bytes.
    pub fn base_bytes(&self) -> u64 {
        (self.bytes_per_tuple() * self.base_tuples as f64).ceil() as u64
    }

    /// Validates the spec.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(Error::config("table name must not be empty"));
        }
        if self.columns.is_empty() {
            return Err(Error::config(format!("table {} has no columns", self.name)));
        }
        let mut names: Vec<&str> = self.columns.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != self.columns.len() {
            return Err(Error::config(format!(
                "table {} has duplicate column names",
                self.name
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_int_columns_builds_named_columns() {
        let t = TableSpec::with_int_columns("t", 3, 100);
        assert_eq!(t.columns.len(), 3);
        assert_eq!(t.columns[2].name, "c2");
        assert_eq!(t.column_index("c1"), Some(1));
        assert_eq!(t.column_index("zzz"), None);
    }

    #[test]
    fn bytes_per_tuple_sums_columns() {
        let t = TableSpec::new(
            "t",
            vec![
                ColumnSpec::with_width("a", ColumnType::Int64, 4.0),
                ColumnSpec::with_width("b", ColumnType::Varchar { avg_len: 10 }, 10.0),
            ],
            1000,
        );
        assert_eq!(t.bytes_per_tuple(), 14.0);
        assert_eq!(t.base_bytes(), 14_000);
    }

    #[test]
    fn validate_rejects_duplicates_and_empties() {
        let dup = TableSpec::new(
            "t",
            vec![
                ColumnSpec::new("a", ColumnType::Int64),
                ColumnSpec::new("a", ColumnType::Int64),
            ],
            10,
        );
        assert!(dup.validate().is_err());
        let empty = TableSpec::new("t", vec![], 10);
        assert!(empty.validate().is_err());
        let unnamed = TableSpec::with_int_columns("", 1, 10);
        assert!(unnamed.validate().is_err());
        assert!(TableSpec::with_int_columns("ok", 1, 10).validate().is_ok());
    }

    #[test]
    fn column_lookup_errors_name_the_column() {
        let t = TableSpec::with_int_columns("t", 1, 10);
        let err = t.column("missing").unwrap_err();
        assert!(err.to_string().contains("missing"));
    }
}
