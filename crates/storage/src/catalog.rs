//! The table catalog.
//!
//! The catalog assigns [`TableId`]s and [`ColumnId`]s and owns the
//! [`TableLayout`] (page-mapping metadata) for every table. It is purely
//! metadata: page *contents* and snapshots live in [`crate::storage`].

use std::collections::HashMap;
use std::sync::Arc;

use scanshare_common::{ColumnId, Error, Result, TableId};

use crate::layout::TableLayout;
use crate::table::TableSpec;

/// Metadata registered for one table.
#[derive(Debug)]
pub struct TableEntry {
    /// The table id.
    pub id: TableId,
    /// The table specification.
    pub spec: TableSpec,
    /// Global column ids, parallel to `spec.columns`.
    pub column_ids: Vec<ColumnId>,
    /// Page-layout helper for the table.
    pub layout: Arc<TableLayout>,
}

/// A catalog of tables.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: Vec<Arc<TableEntry>>,
    by_name: HashMap<String, TableId>,
    next_column_id: u32,
    page_size_bytes: u64,
    chunk_tuples: u64,
}

impl Catalog {
    /// Creates a catalog. `page_size_bytes` and `chunk_tuples` apply to all
    /// tables registered with it.
    pub fn new(page_size_bytes: u64, chunk_tuples: u64) -> Self {
        assert!(page_size_bytes > 0 && chunk_tuples > 0);
        Self {
            tables: Vec::new(),
            by_name: HashMap::new(),
            next_column_id: 0,
            page_size_bytes,
            chunk_tuples,
        }
    }

    /// Page size used for all tables in this catalog.
    pub fn page_size_bytes(&self) -> u64 {
        self.page_size_bytes
    }

    /// Chunk granularity (tuples per chunk) used for all tables.
    pub fn chunk_tuples(&self) -> u64 {
        self.chunk_tuples
    }

    /// Registers a table and returns its id.
    pub fn create_table(&mut self, spec: TableSpec) -> Result<TableId> {
        spec.validate()?;
        if self.by_name.contains_key(&spec.name) {
            return Err(Error::config(format!(
                "table {:?} already exists",
                spec.name
            )));
        }
        let id = TableId::new(self.tables.len() as u32);
        let column_ids: Vec<ColumnId> = spec
            .columns
            .iter()
            .map(|_| {
                let cid = ColumnId::new(self.next_column_id);
                self.next_column_id += 1;
                cid
            })
            .collect();
        let layout = Arc::new(TableLayout::new(
            id,
            spec.clone(),
            column_ids.clone(),
            self.page_size_bytes,
            self.chunk_tuples,
        ));
        self.by_name.insert(spec.name.clone(), id);
        self.tables.push(Arc::new(TableEntry {
            id,
            spec,
            column_ids,
            layout,
        }));
        Ok(id)
    }

    /// Looks up a table by id.
    pub fn table(&self, id: TableId) -> Result<&Arc<TableEntry>> {
        self.tables.get(id.index()).ok_or(Error::UnknownTable(id))
    }

    /// Looks up a table by name.
    pub fn table_by_name(&self, name: &str) -> Result<&Arc<TableEntry>> {
        let id = *self
            .by_name
            .get(name)
            .ok_or_else(|| Error::config(format!("unknown table {name:?}")))?;
        self.table(id)
    }

    /// Returns the layout helper for a table.
    pub fn layout(&self, id: TableId) -> Result<Arc<TableLayout>> {
        Ok(Arc::clone(&self.table(id)?.layout))
    }

    /// Resolves column names of `table` to indices within the table spec.
    pub fn resolve_columns(&self, table: TableId, names: &[&str]) -> Result<Vec<usize>> {
        let entry = self.table(table)?;
        names
            .iter()
            .map(|n| {
                entry
                    .spec
                    .column_index(n)
                    .ok_or_else(|| Error::UnknownColumn {
                        table,
                        column: (*n).to_string(),
                    })
            })
            .collect()
    }

    /// Number of registered tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Iterates over all registered tables.
    pub fn tables(&self) -> impl Iterator<Item = &Arc<TableEntry>> {
        self.tables.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{ColumnSpec, ColumnType};

    fn catalog() -> Catalog {
        Catalog::new(64 * 1024, 100_000)
    }

    #[test]
    fn create_and_lookup_table() {
        let mut cat = catalog();
        let id = cat
            .create_table(TableSpec::with_int_columns("lineitem", 4, 1000))
            .unwrap();
        assert_eq!(cat.table(id).unwrap().spec.name, "lineitem");
        assert_eq!(cat.table_by_name("lineitem").unwrap().id, id);
        assert_eq!(cat.table_count(), 1);
        assert!(cat.table(TableId::new(9)).is_err());
        assert!(cat.table_by_name("orders").is_err());
    }

    #[test]
    fn duplicate_table_names_are_rejected() {
        let mut cat = catalog();
        cat.create_table(TableSpec::with_int_columns("t", 1, 10))
            .unwrap();
        assert!(cat
            .create_table(TableSpec::with_int_columns("t", 2, 10))
            .is_err());
    }

    #[test]
    fn column_ids_are_globally_unique() {
        let mut cat = catalog();
        let a = cat
            .create_table(TableSpec::with_int_columns("a", 2, 10))
            .unwrap();
        let b = cat
            .create_table(TableSpec::with_int_columns("b", 2, 10))
            .unwrap();
        let a_cols = &cat.table(a).unwrap().column_ids;
        let b_cols = &cat.table(b).unwrap().column_ids;
        assert_eq!(a_cols, &[ColumnId::new(0), ColumnId::new(1)]);
        assert_eq!(b_cols, &[ColumnId::new(2), ColumnId::new(3)]);
    }

    #[test]
    fn resolve_columns_maps_names_to_indices() {
        let mut cat = catalog();
        let spec = TableSpec::new(
            "t",
            vec![
                ColumnSpec::new("l_quantity", ColumnType::Decimal),
                ColumnSpec::new("l_shipdate", ColumnType::Date),
            ],
            100,
        );
        let id = cat.create_table(spec).unwrap();
        assert_eq!(
            cat.resolve_columns(id, &["l_shipdate", "l_quantity"])
                .unwrap(),
            vec![1, 0]
        );
        let err = cat.resolve_columns(id, &["nope"]).unwrap_err();
        assert!(matches!(err, Error::UnknownColumn { .. }));
    }
}
