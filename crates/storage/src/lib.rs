//! Columnar storage substrate for the scanshare workspace.
//!
//! This crate models the storage layer of a Vectorwise-style columnar
//! database at the level of detail the buffer-management algorithms in the
//! paper care about:
//!
//! * a **catalog** of tables, each with columns of very different physical
//!   width (bytes per tuple after compression), so that one logical *chunk*
//!   of tuples maps to a very different number of **pages** per column
//!   (Section 2 of the paper);
//! * **snapshots**: versioned per-column arrays of page references, used for
//!   snapshot isolation of bulk appends (Figure 6) and PDT checkpoints
//!   (Figure 7), including detection of the longest shared prefix;
//! * a **stable store** that can materialize the actual values of any page
//!   (deterministically generated for base data, explicitly stored for
//!   appended data) so the execution engine can run real queries;
//! * the **layout** translation used by the buffer managers: SID range ↔
//!   pages per column, chunk ↔ pages, and the page enumeration used by
//!   PBM's `RegisterScan`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod column;
pub mod datagen;
pub mod layout;
pub mod segment;
pub mod snapshot;
pub mod storage;
pub mod table;
pub mod wal;
pub mod zone;

pub use catalog::Catalog;
pub use column::{ColumnSpec, ColumnType};
pub use layout::{ChunkMap, PageDescriptor, ScanPagePlan, TableLayout};
pub use segment::FileStore;
pub use snapshot::{Snapshot, SnapshotStore};
pub use storage::{AppendTransaction, PageData, Storage};
pub use table::TableSpec;
pub use wal::{Wal, WalRecord, WalRecordKind};
pub use zone::{ZoneEntry, ZoneMap, ZoneOp, ZonePredicate};
