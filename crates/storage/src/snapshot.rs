//! Storage snapshots: versioned per-column arrays of page references.
//!
//! Vectorwise gives every transaction a *storage snapshot*: per column, an
//! array of page identifiers (Section 2.1, "Bulk Appends"). Appending data
//! creates new pages and adds references to them in a transaction-local
//! snapshot; committing promotes that snapshot to the *master* snapshot that
//! new transactions start from. A PDT checkpoint creates a snapshot whose
//! pages are all new (Figure 7).
//!
//! Two snapshots of the same table always share a *common prefix* of pages
//! (possibly empty after a checkpoint). The Active Buffer Manager uses the
//! longest prefix shared by at least two running CScans to mark chunks as
//! *shared* or *local*.

use std::collections::HashMap;
use std::sync::Arc;

use scanshare_common::{Error, PageId, Result, SnapshotId, TableId, TupleRange};

use crate::layout::TableLayout;

/// An immutable storage snapshot of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    id: SnapshotId,
    table: TableId,
    /// Page references per column (outer index = column index in the table
    /// spec, inner index = page index).
    column_pages: Vec<Vec<PageId>>,
    /// Number of tuples stored in stable storage under this snapshot.
    stable_tuples: u64,
    /// Snapshot this one was derived from (None for the base snapshot or a
    /// checkpoint image).
    parent: Option<SnapshotId>,
}

impl Snapshot {
    /// The snapshot id.
    pub fn id(&self) -> SnapshotId {
        self.id
    }

    /// The table this snapshot belongs to.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Number of stable tuples visible in this snapshot.
    pub fn stable_tuples(&self) -> u64 {
        self.stable_tuples
    }

    /// The snapshot this one was derived from, if any.
    pub fn parent(&self) -> Option<SnapshotId> {
        self.parent
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.column_pages.len()
    }

    /// Page reference `page_index` of column `col`, if it exists.
    pub fn page(&self, col: usize, page_index: u64) -> Option<PageId> {
        self.column_pages
            .get(col)
            .and_then(|pages| pages.get(page_index as usize))
            .copied()
    }

    /// All page references of column `col`.
    pub fn column_pages(&self, col: usize) -> &[PageId] {
        self.column_pages.get(col).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of page references across all columns.
    pub fn total_pages(&self) -> usize {
        self.column_pages.iter().map(Vec::len).sum()
    }

    /// All page references of the snapshot, column by column in table-spec
    /// order, pages in ascending page-index order within each column. The
    /// iteration order is deterministic; the engine's checkpoint path feeds
    /// it verbatim to the buffer-manager invalidation hook, and the
    /// simulator must invalidate in the identical order to keep replacement
    /// state byte-identical.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.column_pages.iter().flatten().copied()
    }

    /// Whether the given page is referenced by this snapshot.
    pub fn references_page(&self, page: PageId) -> bool {
        self.column_pages.iter().any(|pages| pages.contains(&page))
    }

    /// Per-column count of leading page references that are identical in
    /// `self` and `other`.
    pub fn common_prefix_pages(&self, other: &Snapshot) -> Vec<usize> {
        self.column_pages
            .iter()
            .zip(other.column_pages.iter())
            .map(|(a, b)| a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count())
            .collect()
    }

    /// Number of leading *tuples* whose pages (in **all** columns) are shared
    /// between the two snapshots. A chunk is "shared" only if every page of
    /// every column in the chunk belongs to both snapshots, so the shared
    /// tuple prefix is the minimum over columns of the tuples covered by the
    /// shared page prefix.
    pub fn shared_prefix_tuples(&self, other: &Snapshot, layout: &TableLayout) -> u64 {
        if self.table != other.table || self.column_pages.len() != other.column_pages.len() {
            return 0;
        }
        let limit = self.stable_tuples.min(other.stable_tuples);
        self.common_prefix_pages(other)
            .iter()
            .enumerate()
            .map(|(col, &prefix)| (prefix as u64 * layout.tuples_per_page(col)).min(limit))
            .min()
            .unwrap_or(0)
    }

    /// Whether the two snapshots reference exactly the same pages.
    pub fn same_pages(&self, other: &Snapshot) -> bool {
        self.column_pages == other.column_pages
    }
}

/// Descriptor of a page that was newly allocated while deriving a snapshot
/// (by an append or a checkpoint). The storage layer uses this to attach the
/// page's data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewPage {
    /// The freshly allocated page id.
    pub page: PageId,
    /// Column (index in the table spec) the page belongs to.
    pub column_index: usize,
    /// SID range the page covers in the *new* snapshot.
    pub sid_range: TupleRange,
}

/// Allocates page ids and snapshot ids, derives snapshots and tracks the
/// master snapshot of every table.
#[derive(Debug, Default)]
pub struct SnapshotStore {
    next_page: u64,
    next_snapshot: u64,
    snapshots: HashMap<SnapshotId, Arc<Snapshot>>,
    masters: HashMap<TableId, SnapshotId>,
}

impl SnapshotStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `n` fresh page ids.
    pub fn allocate_pages(&mut self, n: u64) -> Vec<PageId> {
        let start = self.next_page;
        self.next_page += n;
        (start..start + n).map(PageId::new).collect()
    }

    /// Allocates a fresh snapshot id.
    pub fn allocate_snapshot_id(&mut self) -> SnapshotId {
        let id = SnapshotId::new(self.next_snapshot);
        self.next_snapshot += 1;
        id
    }

    /// Creates the base snapshot of a table (its initial stable image) with
    /// an explicit id, registering it as the table's master snapshot.
    pub fn create_base_snapshot(&mut self, layout: &TableLayout, id: SnapshotId) -> Snapshot {
        self.next_snapshot = self.next_snapshot.max(id.raw() + 1);
        let base_tuples = layout.spec().base_tuples;
        let column_pages: Vec<Vec<PageId>> = (0..layout.column_count())
            .map(|col| self.allocate_pages(layout.pages_for_tuples(col, base_tuples)))
            .collect();
        let snapshot = Snapshot {
            id,
            table: layout.table(),
            column_pages,
            stable_tuples: base_tuples,
            parent: None,
        };
        self.register(snapshot.clone());
        self.masters.insert(layout.table(), id);
        snapshot
    }

    /// Installs a snapshot with *explicit* page references, registering it
    /// and making it the table's master. Used when reopening a table
    /// directory cold: the on-disk manifest records the page ids the
    /// materialized snapshot was built with, and those ids must survive the
    /// round trip so `Snapshot::page` keeps mapping to the same (file,
    /// offset) slots. The page and snapshot counters are bumped past every
    /// installed id so later appends and checkpoints never collide.
    pub fn install_snapshot(
        &mut self,
        table: TableId,
        column_pages: Vec<Vec<PageId>>,
        stable_tuples: u64,
    ) -> Arc<Snapshot> {
        let id = self.allocate_snapshot_id();
        if let Some(max) = column_pages.iter().flatten().map(|p| p.raw()).max() {
            self.next_page = self.next_page.max(max + 1);
        }
        let snapshot = Snapshot {
            id,
            table,
            column_pages,
            stable_tuples,
            parent: None,
        };
        let arc = self.register(snapshot);
        self.masters.insert(table, id);
        arc
    }

    /// Registers a snapshot so it can be looked up by id.
    pub fn register(&mut self, snapshot: Snapshot) -> Arc<Snapshot> {
        let arc = Arc::new(snapshot);
        self.snapshots.insert(arc.id(), Arc::clone(&arc));
        arc
    }

    /// Looks up a snapshot by id.
    pub fn snapshot(&self, id: SnapshotId) -> Result<Arc<Snapshot>> {
        self.snapshots
            .get(&id)
            .cloned()
            .ok_or(Error::UnknownSnapshot(id))
    }

    /// The master snapshot id of a table.
    pub fn master_id(&self, table: TableId) -> Result<SnapshotId> {
        self.masters
            .get(&table)
            .copied()
            .ok_or(Error::UnknownTable(table))
    }

    /// The master snapshot of a table.
    pub fn master(&self, table: TableId) -> Result<Arc<Snapshot>> {
        self.snapshot(self.master_id(table)?)
    }

    /// Promotes `id` to be the master snapshot of its table.
    pub fn set_master(&mut self, id: SnapshotId) -> Result<()> {
        let snap = self.snapshot(id)?;
        self.masters.insert(snap.table(), id);
        Ok(())
    }

    /// Derives a new snapshot from `parent` by appending `added_tuples`
    /// tuples. Following the copy-on-write rule, a partially-filled last page
    /// of any column is replaced by a fresh page (this is why "even after
    /// appending a single value to a table, its last chunk becomes local").
    ///
    /// Returns the derived snapshot and the list of newly allocated pages
    /// with the SID ranges they cover.
    pub fn derive_append(
        &mut self,
        layout: &TableLayout,
        parent: &Snapshot,
        added_tuples: u64,
    ) -> (Snapshot, Vec<NewPage>) {
        let id = self.allocate_snapshot_id();
        let old_tuples = parent.stable_tuples;
        let new_tuples = old_tuples + added_tuples;
        let mut column_pages = parent.column_pages.clone();
        let mut new_pages = Vec::new();

        if added_tuples > 0 {
            for (col, pages) in column_pages
                .iter_mut()
                .enumerate()
                .take(layout.column_count())
            {
                let tpp = layout.tuples_per_page(col);
                // Replace a partial last page (copy-on-write).
                let first_new_sid;
                if old_tuples % tpp != 0 && !pages.is_empty() {
                    let last_idx = pages.len() - 1;
                    let fresh = self.allocate_pages(1)[0];
                    pages[last_idx] = fresh;
                    first_new_sid = last_idx as u64 * tpp;
                    new_pages.push(NewPage {
                        page: fresh,
                        column_index: col,
                        sid_range: layout.sid_range_of_page(col, last_idx as u64, new_tuples),
                    });
                } else {
                    first_new_sid = pages.len() as u64 * tpp;
                }
                // Append brand-new pages until new_tuples are covered.
                let needed = layout.pages_for_tuples(col, new_tuples);
                let mut idx = pages.len() as u64;
                while (pages.len() as u64) < needed {
                    let fresh = self.allocate_pages(1)[0];
                    pages.push(fresh);
                    new_pages.push(NewPage {
                        page: fresh,
                        column_index: col,
                        sid_range: layout.sid_range_of_page(col, idx, new_tuples),
                    });
                    idx += 1;
                }
                debug_assert!(first_new_sid <= new_tuples);
            }
        }

        let snapshot = Snapshot {
            id,
            table: parent.table,
            column_pages,
            stable_tuples: new_tuples,
            parent: Some(parent.id),
        };
        (snapshot, new_pages)
    }

    /// Derives a checkpoint snapshot: a completely new set of pages holding
    /// `new_tuples` tuples (the result of merging PDT changes into the old
    /// image). The old and new snapshot share no pages at all.
    pub fn derive_checkpoint(
        &mut self,
        layout: &TableLayout,
        new_tuples: u64,
    ) -> (Snapshot, Vec<NewPage>) {
        let id = self.allocate_snapshot_id();
        let mut new_pages = Vec::new();
        let column_pages: Vec<Vec<PageId>> = (0..layout.column_count())
            .map(|col| {
                let pages = self.allocate_pages(layout.pages_for_tuples(col, new_tuples));
                for (idx, &page) in pages.iter().enumerate() {
                    new_pages.push(NewPage {
                        page,
                        column_index: col,
                        sid_range: layout.sid_range_of_page(col, idx as u64, new_tuples),
                    });
                }
                pages
            })
            .collect();
        let snapshot = Snapshot {
            id,
            table: layout.table(),
            column_pages,
            stable_tuples: new_tuples,
            parent: None,
        };
        (snapshot, new_pages)
    }

    /// Number of page ids allocated so far.
    pub fn pages_allocated(&self) -> u64 {
        self.next_page
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{ColumnSpec, ColumnType};
    use crate::table::TableSpec;
    use scanshare_common::ColumnId;

    fn layout(base_tuples: u64) -> TableLayout {
        // 1024-byte pages; wide column 8 B/tuple (128 t/page), narrow 1 B/tuple (1024 t/page).
        let spec = TableSpec::new(
            "t",
            vec![
                ColumnSpec::with_width("wide", ColumnType::Int64, 8.0),
                ColumnSpec::with_width("narrow", ColumnType::Dict { cardinality: 200 }, 1.0),
            ],
            base_tuples,
        );
        TableLayout::new(
            TableId::new(0),
            spec,
            vec![ColumnId::new(0), ColumnId::new(1)],
            1024,
            1000,
        )
    }

    #[test]
    fn base_snapshot_allocates_expected_pages() {
        let layout = layout(1000);
        let mut store = SnapshotStore::new();
        let snap = store.create_base_snapshot(&layout, SnapshotId::new(0));
        assert_eq!(snap.column_pages(0).len(), 8); // 1000/128 -> 8 pages
        assert_eq!(snap.column_pages(1).len(), 1); // 1000/1024 -> 1 page
        assert_eq!(snap.stable_tuples(), 1000);
        assert_eq!(store.master(TableId::new(0)).unwrap().id(), snap.id());
        assert_eq!(store.pages_allocated(), 9);
    }

    #[test]
    fn append_reuses_prefix_and_rewrites_partial_last_page() {
        let layout = layout(1000);
        let mut store = SnapshotStore::new();
        let base = store.create_base_snapshot(&layout, SnapshotId::new(0));
        let (appended, new_pages) = store.derive_append(&layout, &base, 500);
        assert_eq!(appended.stable_tuples(), 1500);
        assert_eq!(appended.parent(), Some(base.id()));

        // Wide column: 1000 tuples = 7 full pages + 1 partial page of 104 tuples.
        // The partial page is rewritten, and 1500 tuples need 12 pages total.
        assert_eq!(appended.column_pages(0).len(), 12);
        let prefix = base.common_prefix_pages(&appended);
        assert_eq!(
            prefix[0], 7,
            "partial last page of the wide column is rewritten"
        );
        // Narrow column: 1000 of 1024 used -> its single page is rewritten too.
        assert_eq!(prefix[1], 0);

        // New pages are reported for both columns.
        assert!(new_pages.iter().any(|p| p.column_index == 0));
        assert!(new_pages.iter().any(|p| p.column_index == 1));
        // All new pages really are new (not referenced by the base snapshot).
        for p in &new_pages {
            assert!(!base.references_page(p.page));
            assert!(appended.references_page(p.page));
        }
    }

    #[test]
    fn append_on_page_boundary_keeps_whole_prefix() {
        let layout = layout(1024); // narrow column exactly fills one page
        let mut store = SnapshotStore::new();
        let base = store.create_base_snapshot(&layout, SnapshotId::new(0));
        let (appended, _) = store.derive_append(&layout, &base, 1024);
        let prefix = base.common_prefix_pages(&appended);
        assert_eq!(prefix[1], 1, "full pages are shared, not rewritten");
        assert_eq!(appended.column_pages(1).len(), 2);
    }

    #[test]
    fn append_zero_tuples_shares_everything() {
        let layout = layout(1000);
        let mut store = SnapshotStore::new();
        let base = store.create_base_snapshot(&layout, SnapshotId::new(0));
        let (same, new_pages) = store.derive_append(&layout, &base, 0);
        assert!(new_pages.is_empty());
        assert!(same.same_pages(&base));
    }

    #[test]
    fn shared_prefix_tuples_is_min_over_columns() {
        let layout = layout(1000);
        let mut store = SnapshotStore::new();
        let base = store.create_base_snapshot(&layout, SnapshotId::new(0));
        let (appended, _) = store.derive_append(&layout, &base, 500);
        // Wide column shares 7 pages = 896 tuples; narrow shares 0 pages.
        assert_eq!(base.shared_prefix_tuples(&appended, &layout), 0);
        // A snapshot always fully shares with itself (clamped to tuple count).
        assert_eq!(base.shared_prefix_tuples(&base, &layout), 1000);
    }

    #[test]
    fn checkpoint_shares_no_pages() {
        let layout = layout(1000);
        let mut store = SnapshotStore::new();
        let base = store.create_base_snapshot(&layout, SnapshotId::new(0));
        let (ckpt, new_pages) = store.derive_checkpoint(&layout, 900);
        assert_eq!(ckpt.stable_tuples(), 900);
        assert_eq!(base.common_prefix_pages(&ckpt), vec![0, 0]);
        assert_eq!(base.shared_prefix_tuples(&ckpt, &layout), 0);
        assert_eq!(new_pages.len(), ckpt.total_pages());
        assert_eq!(ckpt.parent(), None);
    }

    #[test]
    fn master_promotion() {
        let layout = layout(1000);
        let mut store = SnapshotStore::new();
        let base = store.create_base_snapshot(&layout, SnapshotId::new(0));
        let (appended, _) = store.derive_append(&layout, &base, 10);
        let arc = store.register(appended.clone());
        store.set_master(arc.id()).unwrap();
        assert_eq!(store.master(TableId::new(0)).unwrap().id(), appended.id());
        assert!(store.set_master(SnapshotId::new(999)).is_err());
    }

    #[test]
    fn snapshot_lookup_errors_on_unknown_id() {
        let store = SnapshotStore::new();
        assert!(store.snapshot(SnapshotId::new(5)).is_err());
        assert!(store.master(TableId::new(3)).is_err());
    }
}
