//! Sharing-potential analysis (Figures 17 and 18 of the paper).
//!
//! "In a system loaded with concurrently working queries, at any moment in
//! time, one can count for each page how many active scans still want to
//! consume it. Thus, one can compute the volume of data that is needed at
//! some moment by only one scan, exactly two scans etc."
//!
//! The simulator samples this distribution at a fixed virtual-time interval;
//! the benchmark harness prints the same stacked series the paper plots.

use std::collections::HashMap;

use scanshare_common::{PageId, VirtualInstant};

/// Overlap classes used by the paper's plots: data needed by exactly one
/// scan, two scans, three scans, or four and more scans.
pub const OVERLAP_CLASSES: usize = 4;

/// One sample of the sharing-potential distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingSample {
    /// Virtual time of the sample.
    pub time: VirtualInstant,
    /// Bytes needed by exactly 1, 2, 3 and >=4 active scans.
    pub bytes_by_overlap: [u64; OVERLAP_CLASSES],
}

impl SharingSample {
    /// Total outstanding bytes at this sample.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_by_overlap.iter().sum()
    }

    /// Bytes needed by at least `n` scans (`n` is 1-based).
    pub fn bytes_with_overlap_at_least(&self, n: usize) -> u64 {
        self.bytes_by_overlap[(n - 1).min(OVERLAP_CLASSES - 1)..]
            .iter()
            .sum()
    }
}

/// A time series of sharing samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SharingProfile {
    /// Samples in time order.
    pub samples: Vec<SharingSample>,
}

impl SharingProfile {
    /// Builds a sample from the outstanding pages of every active scan.
    ///
    /// `outstanding` yields, per active scan, the distinct pages it still has
    /// to consume.
    pub fn sample_from_outstanding<'a, I>(
        time: VirtualInstant,
        page_size: u64,
        outstanding: I,
    ) -> SharingSample
    where
        I: IntoIterator<Item = &'a Vec<PageId>>,
    {
        let mut counts: HashMap<PageId, u32> = HashMap::new();
        for pages in outstanding {
            for &page in pages {
                *counts.entry(page).or_insert(0) += 1;
            }
        }
        let mut bytes_by_overlap = [0u64; OVERLAP_CLASSES];
        for (_, count) in counts {
            let class = (count as usize).min(OVERLAP_CLASSES) - 1;
            bytes_by_overlap[class] += page_size;
        }
        SharingSample {
            time,
            bytes_by_overlap,
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: SharingSample) {
        self.samples.push(sample);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the profile has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Average (over samples) of the fraction of outstanding data that is
    /// wanted by at least two scans: a scalar summary of the reuse potential.
    pub fn avg_shared_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let fractions: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.total_bytes() > 0)
            .map(|s| s.bytes_with_overlap_at_least(2) as f64 / s.total_bytes() as f64)
            .collect();
        if fractions.is_empty() {
            0.0
        } else {
            fractions.iter().sum::<f64>() / fractions.len() as f64
        }
    }

    /// Peak of the total outstanding volume across samples, in bytes.
    pub fn peak_outstanding_bytes(&self) -> u64 {
        self.samples
            .iter()
            .map(SharingSample::total_bytes)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(ids: &[u64]) -> Vec<PageId> {
        ids.iter().map(|&i| PageId::new(i)).collect()
    }

    #[test]
    fn sample_classifies_pages_by_overlap() {
        let a = pages(&[1, 2, 3, 4]);
        let b = pages(&[3, 4, 5]);
        let c = pages(&[4, 5]);
        let d = pages(&[4]);
        let sample =
            SharingProfile::sample_from_outstanding(VirtualInstant::EPOCH, 1000, [&a, &b, &c, &d]);
        // Page 1,2 -> 1 scan; 3 -> 2 scans; 5 -> 2 scans; 4 -> 4 scans.
        assert_eq!(sample.bytes_by_overlap, [2000, 2000, 0, 1000]);
        assert_eq!(sample.total_bytes(), 5000);
        assert_eq!(sample.bytes_with_overlap_at_least(2), 3000);
        assert_eq!(sample.bytes_with_overlap_at_least(4), 1000);
    }

    #[test]
    fn overlap_beyond_four_lands_in_the_last_class() {
        let a = pages(&[7]);
        let outstanding: Vec<Vec<PageId>> = (0..10).map(|_| a.clone()).collect();
        let sample =
            SharingProfile::sample_from_outstanding(VirtualInstant::EPOCH, 512, outstanding.iter());
        assert_eq!(sample.bytes_by_overlap, [0, 0, 0, 512]);
    }

    #[test]
    fn profile_summaries() {
        let mut profile = SharingProfile::default();
        assert!(profile.is_empty());
        assert_eq!(profile.avg_shared_fraction(), 0.0);
        profile.push(SharingSample {
            time: VirtualInstant::EPOCH,
            bytes_by_overlap: [100, 100, 0, 0],
        });
        profile.push(SharingSample {
            time: VirtualInstant::from_nanos(1),
            bytes_by_overlap: [300, 0, 0, 100],
        });
        assert_eq!(profile.len(), 2);
        assert!((profile.avg_shared_fraction() - (0.5 + 0.25) / 2.0).abs() < 1e-12);
        assert_eq!(profile.peak_outstanding_bytes(), 400);
    }
}
