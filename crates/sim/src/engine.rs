//! The discrete-event simulator.
//!
//! Streams execute their queries back to back. A query is a sequence of range
//! scans; each scan either issues page requests in order against the shared
//! [`BufferPool`] (LRU, PBM, OPT-trace runs) or attaches to the
//! [`Abm`] and consumes chunks out of order
//! (Cooperative Scans). Misses are served by a bandwidth-limited
//! [`IoDevice`]; CPU work is charged per tuple, scaled by the query's CPU
//! factor and by the effective intra-query parallelism
//! (`min(threads_per_query, cores / streams)`).
//!
//! # Mixed read/write workloads
//!
//! A workload with update streams executes in **rounds**, mirroring the
//! engine-side `WorkloadDriver` exactly: at every round barrier the
//! simulator applies each update stream's generated batch to a per-table
//! *mirror* — the same `(Snapshot, PdtStack)` algebra the engine's
//! transaction layer uses, driven by the identical deterministic operation
//! generator — checkpoints when due (merging the mirrored PDT stack into a
//! brand-new stable image via the engine's own `checkpoint_stack`, then
//! invalidating the superseded pages from the pool, exactly like the
//! engine's epoch-tagged invalidation hook), and then simulates one query
//! per stream concurrently. Scan ranges are translated from visible-row
//! (RID) space to stable (SID) space through the mirrored PDTs with the
//! *same* `scanshare_pdt::translate` functions the engine's scan operator
//! uses, so both executors touch the identical page sets and their I/O
//! volumes match byte for byte. The buffer pool (or ABM) and the I/O device
//! persist across rounds — the whole point of the model is measuring how
//! updates and checkpoints churn a *warm* buffer pool.
//!
//! Note that simulating a mixed workload **mutates the storage** (checkpoint
//! snapshots are installed and promoted to master); give each mixed run its
//! own deterministically rebuilt `Storage` rather than sharing one across
//! runs.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use scanshare_common::{
    Error, PageId, PolicyKind, RangeList, Result, Rid, ScanId, ScanShareConfig, TableId,
    TupleRange, VirtualDuration, VirtualInstant,
};
use scanshare_core::abm::{Abm, AbmConfig, CScanHandle, CScanRequest, LoadPlan};
use scanshare_core::bufferpool::{top_up_prefetch_window, BufferPool};
use scanshare_core::metrics::BufferStats;
use scanshare_core::opt::simulate_opt;
use scanshare_core::registry::{pooled_policy_name, PolicyRegistry};
use scanshare_iosim::{IoDevice, ReferenceTrace};
use scanshare_pdt::checkpoint::checkpoint_stack;
use scanshare_pdt::pdt::Pdt;
use scanshare_pdt::stack::PdtStack;
use scanshare_pdt::translate::rid_range_to_sid_ranges;
use scanshare_storage::snapshot::Snapshot;
use scanshare_storage::storage::Storage;
use scanshare_workload::spec::{QuerySpec, UpdateOp, UpdateOpGen, UpdateStreamSpec, WorkloadSpec};

use crate::result::SimResult;
use crate::sharing::SharingProfile;

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Storage / buffer / policy configuration shared with the rest of the
    /// workspace. The simulator is single-threaded, so
    /// `ScanShareConfig::pool_shards` — a lock-partitioning knob for the
    /// live engine — has no effect here; that is sound because sharding
    /// never changes replacement decisions or I/O accounting (see
    /// `scanshare_core::sharded`), only contention.
    pub scanshare: ScanShareConfig,
    /// Number of CPU cores of the simulated server (the paper's machine has
    /// two 4-core CPUs).
    pub cores: usize,
    /// When set, the simulator records a sharing-potential sample every this
    /// much virtual time (Figures 17/18).
    pub sharing_sample_interval: Option<VirtualDuration>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            scanshare: ScanShareConfig::default(),
            cores: 8,
            sharing_sample_interval: None,
        }
    }
}

/// A simulation of one workload against one policy.
#[derive(Debug)]
pub struct Simulation {
    storage: Arc<Storage>,
    config: SimConfig,
}

// ---------------------------------------------------------------------------
// Internal run state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Stream(usize),
    LoadDone,
}

#[derive(Debug)]
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
    plan: Option<LoadPlan>,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// One scan of a query, resolved against the snapshot and SID ranges its
/// executor actually reads. For read-only workloads this is the spec
/// verbatim against the master snapshot; in mixed workloads the ranges went
/// through the mirrored PDT translation and the snapshot is the mirror's
/// (possibly checkpoint-swapped) pinned image.
#[derive(Debug, Clone)]
struct ResolvedScan {
    table: TableId,
    columns: Vec<usize>,
    snapshot: Arc<Snapshot>,
    /// Stable ranges to read; empty when the visible range maps to no
    /// stable data (the engine then registers no backend scan either).
    sid_ranges: RangeList,
}

/// One query with its scans resolved and its CPU cost precomputed.
#[derive(Debug, Clone)]
struct ResolvedQuery {
    scans: Vec<ResolvedScan>,
    cpu_ns_per_tuple: f64,
    /// Whether this is a broadcast-join query: `scans[0]` is the build side
    /// and the remaining scans (the probe side) register with the pool only
    /// once the build scan has fully drained, exactly like the engine's
    /// `QueryTask` join phase.
    join: bool,
}

/// Finishes query resolution (shared by the read-only and mixed paths):
/// validates a join spec's shape and mirrors the engine's build-side
/// projection order — the join key first, the remaining columns after — so
/// the simulated build scan reads the identical page sequence the engine's
/// `open_build_scan` does.
fn finish_resolve(
    query: &QuerySpec,
    mut scans: Vec<ResolvedScan>,
    cpu_ns_per_tuple: f64,
) -> Result<ResolvedQuery> {
    if let Some(join) = &query.join {
        if scans.len() != 2 {
            return Err(Error::plan(format!(
                "join query {:?} needs exactly two scans (build, probe), got {}",
                query.label,
                scans.len()
            )));
        }
        let build = &mut scans[0];
        if join.right_col >= build.columns.len() {
            return Err(Error::plan(format!(
                "join query {:?} keys on build column {} of {}",
                query.label,
                join.right_col,
                build.columns.len()
            )));
        }
        let key = build.columns.remove(join.right_col);
        build.columns.insert(0, key);
    }
    Ok(ResolvedQuery {
        scans,
        cpu_ns_per_tuple,
        join: query.join.is_some(),
    })
}

/// One scan of a query in the page-level (order-preserving) model.
#[derive(Debug)]
struct PartRun {
    scan_id: ScanId,
    /// (page, tuples on that page) in consumption order.
    pages: Vec<(PageId, u64)>,
    next: usize,
    consumed: u64,
}

#[derive(Debug)]
struct QueryRun {
    parts: Vec<PartRun>,
    part_idx: usize,
    /// Probe-side scans of a join query, registered with the pool only once
    /// every already-registered part has drained (the engine's probe scans
    /// open together after the build phase finishes).
    pending: Vec<ResolvedScan>,
    cpu_ns_per_tuple: f64,
    started: VirtualInstant,
}

#[derive(Debug)]
struct StreamState {
    queries: VecDeque<ResolvedQuery>,
    current: Option<QueryRun>,
    finished: Option<VirtualInstant>,
}

/// One query in the chunk-level (Cooperative Scans) model.
#[derive(Debug)]
struct CScanQueryRun {
    scans: Vec<ResolvedScan>,
    part_idx: usize,
    active: Option<CScanHandle>,
    cpu_ns_per_tuple: f64,
    started: VirtualInstant,
}

#[derive(Debug)]
struct CScanStreamState {
    queries: VecDeque<ResolvedQuery>,
    current: Option<CScanQueryRun>,
    finished: Option<VirtualInstant>,
}

/// Periodic sharing-potential sampling state (Figures 17/18), shared by the
/// pooled and Cooperative Scans event loops so the sampling cadence exists
/// exactly once; the loops differ only in how each computes the outstanding
/// page sets.
struct SharingSampler {
    profile: Option<SharingProfile>,
    next_sample: u64,
    interval: u64,
}

impl SharingSampler {
    fn new(interval: Option<VirtualDuration>) -> Self {
        Self {
            profile: interval.map(|_| SharingProfile::default()),
            next_sample: 0,
            interval: interval.map(|d| d.as_nanos()).unwrap_or(u64::MAX),
        }
    }

    /// Pushes a sample when `time_ns` reached the next sampling point;
    /// `outstanding` (the per-scan still-to-consume page sets) is only
    /// evaluated when a sample is actually taken.
    fn sample_if_due<F>(&mut self, time_ns: u64, page_size: u64, outstanding: F)
    where
        F: FnOnce() -> Vec<Vec<PageId>>,
    {
        let Some(profile) = self.profile.as_mut() else {
            return;
        };
        if time_ns < self.next_sample {
            return;
        }
        let outstanding = outstanding();
        profile.push(SharingProfile::sample_from_outstanding(
            VirtualInstant::from_nanos(time_ns),
            page_size,
            outstanding.iter(),
        ));
        self.next_sample = time_ns + self.interval;
    }

    fn into_profile(self) -> Option<SharingProfile> {
        self.profile
    }
}

/// The engine-state mirror of a mixed workload: per table, the pinned
/// snapshot and PDT stack the engine's transaction layer would publish at
/// the same round barrier.
#[derive(Debug, Default)]
struct UpdateMirror {
    tables: HashMap<TableId, MirrorTable>,
}

#[derive(Debug)]
struct MirrorTable {
    snapshot: Arc<Snapshot>,
    stack: PdtStack,
}

/// Persistent state of a pooled (LRU / PBM / OPT-trace) run: survives round
/// barriers so checkpointed tables churn a warm pool, exactly as in the
/// engine.
struct PoolRunState {
    pool: BufferPool,
    device: IoDevice,
    /// The asynchronous prefetch window, mirroring
    /// `PooledBackend::top_up_prefetch` in the execution engine: page ->
    /// completion time of prefetch transfers that may still be in flight.
    inflight: HashMap<PageId, VirtualInstant>,
    sampler: SharingSampler,
    query_latencies: Vec<VirtualDuration>,
}

/// Persistent state of a Cooperative Scans run.
struct CScanRunState {
    abm: Abm,
    device: IoDevice,
    sampler: SharingSampler,
    query_latencies: Vec<VirtualDuration>,
}

impl Simulation {
    /// Creates a simulation over `storage` (which must already contain the
    /// workload's tables).
    pub fn new(storage: Arc<Storage>, config: SimConfig) -> Result<Self> {
        config.scanshare.validate()?;
        if config.cores == 0 {
            return Err(Error::config(
                "the simulated machine needs at least one core",
            ));
        }
        Ok(Self { storage, config })
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Total volume of distinct data accessed by the workload, in bytes
    /// (the quantity the paper sizes buffer pools against: "buffer pool
    /// capacity equal to 40% of accessed data volume"). Computed against the
    /// current master snapshots, before any update stream runs.
    pub fn accessed_volume(&self, workload: &WorkloadSpec) -> Result<u64> {
        let mut pages: HashSet<PageId> = HashSet::new();
        for stream in &workload.streams {
            for query in &stream.queries {
                for scan in &query.scans {
                    let layout = self.storage.layout(scan.table)?;
                    let snapshot = self.storage.master_snapshot(scan.table)?;
                    let plan = layout.scan_page_plan(&snapshot, &scan.columns, &scan.ranges);
                    pages.extend(plan.pages.iter().map(|p| p.page));
                }
            }
        }
        Ok(pages.len() as u64 * self.config.scanshare.page_size_bytes)
    }

    /// Runs `workload` under the policy selected in the configuration. See
    /// the [module docs](self) for how workloads with update streams are
    /// executed (and note they mutate the storage).
    pub fn run(&self, workload: &WorkloadSpec) -> Result<SimResult> {
        if workload.has_updates() && self.config.scanshare.policy == PolicyKind::Opt {
            return Err(Error::Unsupported(
                "OPT trace replay is undefined across checkpoint invalidations; \
                 run mixed workloads under lru, pbm or cscan"
                    .into(),
            ));
        }
        match self.config.scanshare.policy {
            PolicyKind::CScan => self.run_cscan(workload),
            PolicyKind::Opt => self.run_opt(workload),
            policy => self.run_pool(workload, policy, false).map(|(r, _)| r),
        }
    }

    fn effective_parallelism(&self, streams: usize) -> u64 {
        let per_stream = (self.config.cores / streams.max(1)).max(1);
        per_stream.min(self.config.scanshare.threads_per_query) as u64
    }

    fn cpu_ns_per_tuple(&self, query: &QuerySpec, streams: usize) -> f64 {
        let parallelism = self.effective_parallelism(streams) as f64;
        1e9 * query.cpu_factor / (self.config.scanshare.cpu_tuples_per_sec as f64 * parallelism)
    }

    fn device(&self) -> IoDevice {
        IoDevice::new(
            self.config.scanshare.io_bandwidth,
            VirtualDuration::from_nanos(self.config.scanshare.io_latency_nanos),
        )
    }

    // -----------------------------------------------------------------
    // Query resolution and the update mirror
    // -----------------------------------------------------------------

    /// Resolves a query of a read-only workload: spec ranges verbatim (they
    /// are already SID ranges when no updates exist) against the master
    /// snapshot, minus the chunks whose zone maps refute the scan's
    /// predicate — the identical `prune_sid_ranges` call (and the identical
    /// skipped-tuple accounting into `pruned`) the engine's scan operator
    /// performs.
    fn resolve_read_only(
        &self,
        query: &QuerySpec,
        streams: usize,
        pruned: &mut u64,
    ) -> Result<ResolvedQuery> {
        let mut scans = Vec::with_capacity(query.scans.len());
        for scan in &query.scans {
            let snapshot = self.storage.master_snapshot(scan.table)?;
            let mut sid_ranges = scan.ranges.clone();
            if let Some(pred) = scan.predicate {
                if self.config.scanshare.zone_maps {
                    let (kept, skipped) =
                        self.storage.prune_sid_ranges(&snapshot, &pred, &sid_ranges);
                    *pruned += skipped;
                    sid_ranges = kept;
                }
            }
            scans.push(ResolvedScan {
                table: scan.table,
                columns: scan.columns.clone(),
                snapshot,
                sid_ranges,
            });
        }
        finish_resolve(query, scans, self.cpu_ns_per_tuple(query, streams))
    }

    /// The mirror entry of `table`, created on first touch from the current
    /// master snapshot — exactly like the engine's per-table state.
    fn mirror_table<'a>(
        &self,
        mirror: &'a mut UpdateMirror,
        table: TableId,
    ) -> Result<&'a mut MirrorTable> {
        use std::collections::hash_map::Entry;
        match mirror.tables.entry(table) {
            Entry::Occupied(entry) => Ok(entry.into_mut()),
            Entry::Vacant(entry) => {
                let snapshot = self.storage.master_snapshot(table)?;
                let columns = self.storage.table(table)?.spec.columns.len();
                Ok(entry.insert(MirrorTable {
                    snapshot,
                    stack: PdtStack::new(columns, 1),
                }))
            }
        }
    }

    /// Resolves a query of a mixed workload against the mirror: the spec's
    /// visible-row ranges are clamped to the mirrored visible count and
    /// translated to SID ranges through the mirrored PDT — the same
    /// `rid_range_to_sid_ranges` call the engine's scan operator performs
    /// on its pin.
    fn resolve_mixed(
        &self,
        mirror: &mut UpdateMirror,
        query: &QuerySpec,
        streams: usize,
        pruned: &mut u64,
    ) -> Result<ResolvedQuery> {
        let cpu_ns_per_tuple = self.cpu_ns_per_tuple(query, streams);
        let mut scans = Vec::with_capacity(query.scans.len());
        for scan in &query.scans {
            let table = self.mirror_table(mirror, scan.table)?;
            let stable = table.snapshot.stable_tuples();
            let flat = table.stack.flatten(stable)?;
            let visible = flat.visible_count(stable);
            let mut sid_ranges = RangeList::new();
            for &range in scan.ranges.ranges() {
                let rid_range = range.intersect(&TupleRange::new(0, visible));
                for &sids in rid_range_to_sid_ranges(&flat, &rid_range, stable).ranges() {
                    sid_ranges.add(sids);
                }
            }
            // Zone-map pruning mirrors the engine's scan operator exactly,
            // including its safety gate: prune only while the mirrored PDT
            // is empty (RID == SID), because a pending Modify could make a
            // base-failing row match the predicate.
            if let Some(pred) = scan.predicate {
                if self.config.scanshare.zone_maps && flat.is_empty() {
                    let (kept, skipped) =
                        self.storage
                            .prune_sid_ranges(&table.snapshot, &pred, &sid_ranges);
                    *pruned += skipped;
                    sid_ranges = kept;
                }
            }
            scans.push(ResolvedScan {
                table: scan.table,
                columns: scan.columns.clone(),
                snapshot: Arc::clone(&table.snapshot),
                sid_ranges,
            });
        }
        finish_resolve(query, scans, cpu_ns_per_tuple)
    }

    /// Applies one update stream's round batch to the mirror — one
    /// transaction through the identical `PdtStack` algebra the engine's
    /// `Txn::commit` uses — and performs the periodic checkpoint when due:
    /// the same merged `checkpoint_stack` the engine runs (so the new image
    /// carries values and zone maps), plus `invalidate(stale_pages)`,
    /// matching the engine's epoch-tagged buffer invalidation.
    fn mirror_update_batch(
        &self,
        mirror: &mut UpdateMirror,
        spec: &UpdateStreamSpec,
        generator: &mut UpdateOpGen,
        round: usize,
        invalidate: &mut dyn FnMut(&[PageId]),
    ) -> Result<()> {
        let columns = self.storage.table(spec.table)?.spec.columns.len();
        if spec.ops_per_round > 0 {
            let table = self.mirror_table(mirror, spec.table)?;
            let stable = table.snapshot.stable_tuples();
            let mut work = table.stack.clone();
            work.push_layer(Pdt::new(columns));
            for _ in 0..spec.ops_per_round {
                let visible = work.visible_count(stable);
                match generator.next_op(visible, columns) {
                    UpdateOp::Insert { rid, row } => work.insert(Rid::new(rid), row, stable)?,
                    UpdateOp::Delete { rid } => work.delete(Rid::new(rid), stable)?,
                    UpdateOp::Modify { rid, col, value } => {
                        work.modify(Rid::new(rid), col, value, stable)?
                    }
                }
            }
            let private = work.pop_layer().expect("pushed above");
            table.stack.absorb_top(&private, stable)?;
        }
        if spec.checkpoint_due(round) {
            let table = self.mirror_table(mirror, spec.table)?;
            let stale: Vec<PageId> = table.snapshot.pages().collect();
            // A real merged checkpoint (not a metadata-only install): the new
            // stable image carries the merged values, so its zone maps are
            // rebuilt exactly as the engine's checkpoint rebuilds them — the
            // post-checkpoint pruning decisions of both executors agree.
            let new_snapshot =
                checkpoint_stack(&self.storage, spec.table, &table.snapshot, &table.stack)?;
            table.snapshot = new_snapshot;
            table.stack = PdtStack::new(columns, 1);
            invalidate(&stale);
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Order-preserving policies: LRU / PBM (and the PBM run behind OPT)
    // -----------------------------------------------------------------

    fn make_pool(
        &self,
        policy: PolicyKind,
        trace: Option<Arc<ReferenceTrace>>,
    ) -> Result<BufferPool> {
        // The simulator shares policy construction with the execution engine:
        // the page-level policy comes from the registry (honouring
        // `custom_policy`), so the policies the figures measure are the
        // policies the engine runs.
        let name = pooled_policy_name(&self.config.scanshare, policy);
        let replacement = PolicyRegistry::default().build(name, &self.config.scanshare)?;
        let mut pool = BufferPool::new(
            self.config.scanshare.buffer_pool_pages().max(1),
            self.config.scanshare.page_size_bytes,
            replacement,
        );
        if let Some(trace) = trace {
            pool = pool.with_trace(trace);
        }
        Ok(pool)
    }

    /// Registers one resolved scan with the pool and lays out its page
    /// consumption order; `None` for scans whose visible range maps to no
    /// stable data (the engine then registers no backend scan either —
    /// pure PDT rows cost no I/O).
    fn build_part_run(
        &self,
        pool: &mut BufferPool,
        scan: &ResolvedScan,
        now: VirtualInstant,
    ) -> Result<Option<PartRun>> {
        if scan.sid_ranges.is_empty() {
            return Ok(None);
        }
        let layout = self.storage.layout(scan.table)?;
        let plan = layout.scan_page_plan(&scan.snapshot, &scan.columns, &scan.sid_ranges);
        let scan_id = pool.register_scan(&plan, now);
        let pages: Vec<(PageId, u64)> = plan
            .interleaved()
            .iter()
            .map(|p| (p.page, p.tuple_count))
            .collect();
        Ok(Some(PartRun {
            scan_id,
            pages,
            next: 0,
            consumed: 0,
        }))
    }

    fn build_query_run(
        &self,
        pool: &mut BufferPool,
        query: &ResolvedQuery,
        now: VirtualInstant,
    ) -> Result<QueryRun> {
        // A join query registers only its build scan up front; the probe
        // scans stay pending until the build side has drained, matching the
        // engine's build-then-probe registration order.
        let (eager, pending) = if query.join {
            query.scans.split_at(1.min(query.scans.len()))
        } else {
            query.scans.split_at(query.scans.len())
        };
        let mut parts = Vec::with_capacity(eager.len());
        for scan in eager {
            if let Some(part) = self.build_part_run(pool, scan, now)? {
                parts.push(part);
            }
        }
        Ok(QueryRun {
            parts,
            part_idx: 0,
            pending: pending.to_vec(),
            cpu_ns_per_tuple: query.cpu_ns_per_tuple,
            started: now,
        })
    }

    /// Runs one phase (a whole read-only workload, or one round of a mixed
    /// one) of the page-level event loop over the persistent `state`.
    /// `phase_queries` holds each stream's queries for this phase; all
    /// streams start at `start_ns`. Returns each stream's finish time.
    fn pool_phase(
        &self,
        state: &mut PoolRunState,
        phase_queries: Vec<VecDeque<ResolvedQuery>>,
        start_ns: u64,
    ) -> Result<Vec<u64>> {
        let page_size = self.config.scanshare.page_size_bytes;
        let prefetch_window = self.config.scanshare.prefetch_pages;

        let mut streams: Vec<StreamState> = phase_queries
            .into_iter()
            .map(|queries| StreamState {
                queries,
                current: None,
                finished: None,
            })
            .collect();

        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut BinaryHeap<Reverse<Event>>, time: u64, kind: EventKind| {
            heap.push(Reverse(Event {
                time,
                seq,
                kind,
                plan: None,
            }));
            seq += 1;
        };
        for s in 0..streams.len() {
            push(&mut heap, start_ns, EventKind::Stream(s));
        }

        while let Some(Reverse(event)) = heap.pop() {
            let now = VirtualInstant::from_nanos(event.time);
            let EventKind::Stream(s) = event.kind else {
                unreachable!("no loader in pool mode")
            };

            // Periodic sharing-potential sampling.
            state.sampler.sample_if_due(event.time, page_size, || {
                streams
                    .iter()
                    .filter_map(|st| st.current.as_ref())
                    .flat_map(|q| {
                        q.parts[q.part_idx..].iter().map(|part| {
                            let mut pages: Vec<PageId> =
                                part.pages[part.next..].iter().map(|(p, _)| *p).collect();
                            pages.sort_unstable();
                            pages.dedup();
                            pages
                        })
                    })
                    .collect()
            });

            // Start the next query if needed.
            if streams[s].current.is_none() {
                let Some(query) = streams[s].queries.pop_front() else {
                    if streams[s].finished.is_none() {
                        streams[s].finished = Some(now);
                    }
                    continue;
                };
                let run = self.build_query_run(&mut state.pool, &query, now)?;
                streams[s].current = Some(run);
            }

            // Process one page of the current query.
            let run = streams[s].current.as_mut().expect("set above");
            if run.part_idx >= run.parts.len() {
                if !run.pending.is_empty() {
                    // Build side of a join drained: register the probe
                    // scans, exactly when the engine's task opens them.
                    let pending = std::mem::take(&mut run.pending);
                    for scan in &pending {
                        if let Some(part) = self.build_part_run(&mut state.pool, scan, now)? {
                            run.parts.push(part);
                        }
                    }
                    push(&mut heap, event.time, EventKind::Stream(s));
                    continue;
                }
                // Query finished.
                state.query_latencies.push(now.since(run.started));
                streams[s].current = None;
                push(&mut heap, event.time, EventKind::Stream(s));
                continue;
            }
            let cpu_ns_per_tuple = run.cpu_ns_per_tuple;
            let part = &mut run.parts[run.part_idx];
            if part.next >= part.pages.len() {
                state.pool.unregister_scan(part.scan_id, now);
                run.part_idx += 1;
                push(&mut heap, event.time, EventKind::Stream(s));
                continue;
            }
            let (page, tuples) = part.pages[part.next];
            part.next += 1;
            part.consumed += tuples;
            let outcome = state.pool.request_page(page, Some(part.scan_id), now)?;
            state
                .pool
                .report_scan_position(part.scan_id, part.consumed, now);
            let cpu_ns = (tuples as f64 * cpu_ns_per_tuple).round() as u64;
            let mut consumed_inflight = false;
            let io_done = if outcome.is_hit() {
                // A hit on a page whose prefetch is still in flight waits
                // for the remaining transfer time only.
                match state.inflight.remove(&page) {
                    Some(done) => {
                        consumed_inflight = true;
                        done.as_nanos().max(event.time)
                    }
                    None => event.time,
                }
            } else {
                state.device.submit(now, page_size).as_nanos()
            };
            // Top up the prefetch window (after the demand read, which must
            // not queue behind new speculative transfers), but — like the
            // engine's PooledBackend — only when this access changed the
            // prefetch picture, so warm-pool hits stay cheap.
            if !outcome.is_hit() || consumed_inflight {
                top_up_prefetch_window(
                    &mut state.pool,
                    &state.device,
                    &mut state.inflight,
                    prefetch_window,
                    now,
                );
            }
            push(&mut heap, io_done + cpu_ns, EventKind::Stream(s));
        }

        Ok(streams
            .iter()
            .map(|s| {
                s.finished
                    .unwrap_or(VirtualInstant::from_nanos(start_ns))
                    .as_nanos()
            })
            .collect())
    }

    fn run_pool(
        &self,
        workload: &WorkloadSpec,
        policy: PolicyKind,
        record_trace: bool,
    ) -> Result<(SimResult, Option<Arc<ReferenceTrace>>)> {
        let trace = record_trace.then(|| Arc::new(ReferenceTrace::new()));
        let stream_count = workload.stream_count();
        let mut state = PoolRunState {
            pool: self.make_pool(policy, trace.clone())?,
            device: self.device(),
            inflight: HashMap::new(),
            sampler: SharingSampler::new(self.config.sharing_sample_interval),
            query_latencies: Vec::new(),
        };
        let mut pruned = 0u64;

        let finish_ns = if !workload.has_updates() {
            let phase: Vec<VecDeque<ResolvedQuery>> = workload
                .streams
                .iter()
                .map(|s| {
                    s.queries
                        .iter()
                        .map(|q| self.resolve_read_only(q, stream_count, &mut pruned))
                        .collect::<Result<VecDeque<_>>>()
                })
                .collect::<Result<_>>()?;
            self.pool_phase(&mut state, phase, 0)?
        } else {
            let mut generators: Vec<UpdateOpGen> = workload
                .update_streams
                .iter()
                .map(UpdateStreamSpec::ops)
                .collect();
            let mut mirror = UpdateMirror::default();
            let mut finish = vec![0u64; stream_count];
            let mut barrier_ns = 0u64;
            for round in 0..workload.rounds() {
                // Barrier: apply the update batches (in spec order, exactly
                // like the driver), invalidating checkpointed pages from
                // the persistent pool through the same hook semantics the
                // engine's backend uses.
                for (spec, generator) in workload.update_streams.iter().zip(generators.iter_mut()) {
                    let pool = &mut state.pool;
                    let inflight = &mut state.inflight;
                    self.mirror_update_batch(&mut mirror, spec, generator, round, &mut |stale| {
                        for page in stale {
                            inflight.remove(page);
                        }
                        pool.invalidate_pages(stale);
                    })?;
                }
                // Concurrent phase: this round's query of every stream.
                let phase: Vec<VecDeque<ResolvedQuery>> = workload
                    .streams
                    .iter()
                    .map(|stream| {
                        let mut queries = VecDeque::new();
                        if round < stream.queries.len() {
                            queries.push_back(self.resolve_mixed(
                                &mut mirror,
                                &stream.queries[round],
                                stream_count,
                                &mut pruned,
                            )?);
                        }
                        Ok(queries)
                    })
                    .collect::<Result<_>>()?;
                let round_finish = self.pool_phase(&mut state, phase, barrier_ns)?;
                for (s, stream) in workload.streams.iter().enumerate() {
                    if round < stream.queries.len() {
                        finish[s] = round_finish[s];
                    }
                }
                barrier_ns =
                    barrier_ns.max(round_finish.iter().copied().max().unwrap_or(barrier_ns));
            }
            finish
        };

        let makespan_ns = finish_ns.iter().copied().max().unwrap_or(0);
        let stream_times: Vec<VirtualDuration> = finish_ns
            .iter()
            .map(|&ns| VirtualInstant::from_nanos(ns).since(VirtualInstant::EPOCH))
            .collect();
        let mut stats = state.pool.stats();
        stats.pruned_tuples = pruned;
        let result = SimResult {
            workload: workload.name.clone(),
            policy,
            stream_times,
            query_latencies: state.query_latencies,
            total_io_bytes: stats.io_bytes,
            buffer: stats,
            makespan: VirtualInstant::from_nanos(makespan_ns).since(VirtualInstant::EPOCH),
            has_timing: true,
            sharing: state.sampler.into_profile(),
        };
        Ok((result, trace))
    }

    // -----------------------------------------------------------------
    // OPT: replay the PBM trace through Belady's algorithm
    // -----------------------------------------------------------------

    fn run_opt(&self, workload: &WorkloadSpec) -> Result<SimResult> {
        let (pbm_result, trace) = self.run_pool(workload, PolicyKind::Pbm, true)?;
        let trace = trace.expect("trace recording was requested");
        let capacity = self.config.scanshare.buffer_pool_pages().max(1);
        let opt = simulate_opt(&trace.pages(), capacity);
        let page_size = self.config.scanshare.page_size_bytes;
        Ok(SimResult {
            workload: workload.name.clone(),
            policy: PolicyKind::Opt,
            stream_times: pbm_result.stream_times,
            query_latencies: Vec::new(),
            total_io_bytes: opt.io_bytes(page_size),
            buffer: BufferStats {
                hits: opt.hits,
                misses: opt.misses,
                evictions: opt.evictions,
                pages_loaded: opt.misses,
                io_bytes: opt.io_bytes(page_size),
                ..BufferStats::default()
            },
            makespan: pbm_result.makespan,
            has_timing: false,
            sharing: None,
        })
    }

    // -----------------------------------------------------------------
    // Cooperative Scans
    // -----------------------------------------------------------------

    fn register_cscan_part(&self, abm: &Abm, scan: &ResolvedScan) -> Result<CScanHandle> {
        let layout = self.storage.layout(scan.table)?;
        abm.register_cscan(CScanRequest {
            table: scan.table,
            snapshot: Arc::clone(&scan.snapshot),
            layout,
            columns: scan.columns.clone(),
            ranges: scan.sid_ranges.clone(),
            in_order: false,
        })
    }

    /// Advances a CScan query to its next part with stable data to read,
    /// registering it; `None` when the query has no further parts.
    fn activate_next_cscan_part(
        &self,
        abm: &Abm,
        run: &mut CScanQueryRun,
    ) -> Result<Option<CScanHandle>> {
        while run.part_idx < run.scans.len() {
            let scan = &run.scans[run.part_idx];
            if scan.sid_ranges.is_empty() {
                // The engine registers no backend scan for PDT-only ranges.
                run.part_idx += 1;
                continue;
            }
            return Ok(Some(self.register_cscan_part(abm, scan)?));
        }
        Ok(None)
    }

    /// One phase of the Cooperative Scans event loop over the persistent
    /// `state`; the ABM's chunk cache survives phases.
    fn cscan_phase(
        &self,
        state: &mut CScanRunState,
        phase_queries: Vec<VecDeque<ResolvedQuery>>,
        start_ns: u64,
    ) -> Result<Vec<u64>> {
        let page_size = self.config.scanshare.page_size_bytes;

        let mut streams: Vec<CScanStreamState> = phase_queries
            .into_iter()
            .map(|queries| CScanStreamState {
                queries,
                current: None,
                finished: None,
            })
            .collect();

        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push_event = |heap: &mut BinaryHeap<Reverse<Event>>,
                              time: u64,
                              kind: EventKind,
                              plan: Option<LoadPlan>| {
            heap.push(Reverse(Event {
                time,
                seq,
                kind,
                plan,
            }));
            seq += 1;
        };
        for s in 0..streams.len() {
            push_event(&mut heap, start_ns, EventKind::Stream(s), None);
        }

        let mut blocked: HashSet<usize> = HashSet::new();
        let mut loader_busy = false;

        macro_rules! kick_loader {
            ($heap:expr, $now:expr) => {
                if !loader_busy {
                    if let Some(plan) = state.abm.next_load(VirtualInstant::from_nanos($now)) {
                        let done = state
                            .device
                            .submit(VirtualInstant::from_nanos($now), plan.bytes)
                            .as_nanos();
                        loader_busy = true;
                        push_event($heap, done, EventKind::LoadDone, Some(plan));
                    }
                }
            };
        }

        while let Some(Reverse(event)) = heap.pop() {
            let now_ns = event.time;
            let now = VirtualInstant::from_nanos(now_ns);

            // Periodic sharing-potential sampling: the outstanding data of
            // a CScan is the page set of its still-needed chunks, which the
            // ABM tracks directly.
            let abm = &state.abm;
            state.sampler.sample_if_due(event.time, page_size, || {
                streams
                    .iter()
                    .filter_map(|st| st.current.as_ref())
                    .filter_map(|q| q.active)
                    .map(|handle| abm.outstanding_pages(handle.id))
                    .collect()
            });

            match event.kind {
                EventKind::LoadDone => {
                    let plan = event.plan.expect("load event carries its plan");
                    state.abm.complete_load(&plan, now)?;
                    loader_busy = false;
                    // Wake blocked streams in index order: HashSet iteration
                    // order varies between processes and would make ABM
                    // scheduling (and therefore I/O volumes) nondeterministic.
                    let mut woken: Vec<usize> = blocked.drain().collect();
                    woken.sort_unstable();
                    for s in woken {
                        push_event(&mut heap, now_ns, EventKind::Stream(s), None);
                    }
                    kick_loader!(&mut heap, now_ns);
                }
                EventKind::Stream(s) => {
                    if streams[s].current.is_none() {
                        let Some(query) = streams[s].queries.pop_front() else {
                            if streams[s].finished.is_none() {
                                streams[s].finished = Some(now);
                            }
                            continue;
                        };
                        let mut run = CScanQueryRun {
                            scans: query.scans,
                            part_idx: 0,
                            active: None,
                            cpu_ns_per_tuple: query.cpu_ns_per_tuple,
                            started: now,
                        };
                        run.active = self.activate_next_cscan_part(&state.abm, &mut run)?;
                        streams[s].current = Some(run);
                        kick_loader!(&mut heap, now_ns);
                    }

                    let run = streams[s].current.as_mut().expect("set above");
                    let Some(handle) = run.active else {
                        // All parts done: the query is finished.
                        state.query_latencies.push(now.since(run.started));
                        streams[s].current = None;
                        push_event(&mut heap, now_ns, EventKind::Stream(s), None);
                        continue;
                    };

                    match state.abm.get_chunk(handle.id)? {
                        Some(delivery) => {
                            let cpu_ns =
                                (delivery.tuples as f64 * run.cpu_ns_per_tuple).round() as u64;
                            push_event(&mut heap, now_ns + cpu_ns, EventKind::Stream(s), None);
                        }
                        None => {
                            if state.abm.is_finished(handle.id) {
                                state.abm.unregister_cscan(handle.id)?;
                                run.part_idx += 1;
                                run.active = self.activate_next_cscan_part(&state.abm, run)?;
                                push_event(&mut heap, now_ns, EventKind::Stream(s), None);
                                kick_loader!(&mut heap, now_ns);
                            } else {
                                blocked.insert(s);
                                kick_loader!(&mut heap, now_ns);
                            }
                        }
                    }
                }
            }
        }

        if streams.iter().any(|s| s.finished.is_none()) {
            return Err(Error::internal(
                "Cooperative Scans simulation deadlocked: buffer pool too small for one chunk",
            ));
        }

        Ok(streams
            .iter()
            .map(|s| s.finished.expect("checked above").as_nanos())
            .collect())
    }

    fn run_cscan(&self, workload: &WorkloadSpec) -> Result<SimResult> {
        let stream_count = workload.stream_count();
        let mut state = CScanRunState {
            abm: Abm::new(AbmConfig::new(
                self.config.scanshare.buffer_pool_bytes,
                self.config.scanshare.page_size_bytes,
            )),
            device: self.device(),
            sampler: SharingSampler::new(self.config.sharing_sample_interval),
            query_latencies: Vec::new(),
        };
        let mut pruned = 0u64;

        let finish_ns = if !workload.has_updates() {
            let phase: Vec<VecDeque<ResolvedQuery>> = workload
                .streams
                .iter()
                .map(|s| {
                    s.queries
                        .iter()
                        .map(|q| self.resolve_read_only(q, stream_count, &mut pruned))
                        .collect::<Result<VecDeque<_>>>()
                })
                .collect::<Result<_>>()?;
            self.cscan_phase(&mut state, phase, 0)?
        } else {
            let mut generators: Vec<UpdateOpGen> = workload
                .update_streams
                .iter()
                .map(UpdateStreamSpec::ops)
                .collect();
            let mut mirror = UpdateMirror::default();
            let mut finish = vec![0u64; stream_count];
            let mut barrier_ns = 0u64;
            for round in 0..workload.rounds() {
                for (spec, generator) in workload.update_streams.iter().zip(generators.iter_mut()) {
                    // The ABM's chunk cache is snapshot-versioned: stale
                    // versions die with their last scan (the engine-side
                    // CScanBackend invalidation hook is likewise a no-op),
                    // so checkpoint invalidation drops nothing here.
                    self.mirror_update_batch(&mut mirror, spec, generator, round, &mut |_| {})?;
                }
                let phase: Vec<VecDeque<ResolvedQuery>> = workload
                    .streams
                    .iter()
                    .map(|stream| {
                        let mut queries = VecDeque::new();
                        if round < stream.queries.len() {
                            queries.push_back(self.resolve_mixed(
                                &mut mirror,
                                &stream.queries[round],
                                stream_count,
                                &mut pruned,
                            )?);
                        }
                        Ok(queries)
                    })
                    .collect::<Result<_>>()?;
                let round_finish = self.cscan_phase(&mut state, phase, barrier_ns)?;
                for (s, stream) in workload.streams.iter().enumerate() {
                    if round < stream.queries.len() {
                        finish[s] = round_finish[s];
                    }
                }
                barrier_ns =
                    barrier_ns.max(round_finish.iter().copied().max().unwrap_or(barrier_ns));
            }
            finish
        };

        let makespan_ns = finish_ns.iter().copied().max().unwrap_or(0);
        let stream_times: Vec<VirtualDuration> = finish_ns
            .iter()
            .map(|&ns| VirtualInstant::from_nanos(ns).since(VirtualInstant::EPOCH))
            .collect();
        let mut stats = state.abm.stats();
        stats.pruned_tuples = pruned;
        Ok(SimResult {
            workload: workload.name.clone(),
            policy: PolicyKind::CScan,
            stream_times,
            query_latencies: state.query_latencies,
            total_io_bytes: stats.io_bytes,
            buffer: stats,
            makespan: VirtualInstant::from_nanos(makespan_ns).since(VirtualInstant::EPOCH),
            has_timing: true,
            sharing: state.sampler.into_profile(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::Bandwidth;
    use scanshare_workload::microbench::{self, MicrobenchConfig};

    fn sim_config(policy: PolicyKind, pool_bytes: u64) -> SimConfig {
        SimConfig {
            scanshare: ScanShareConfig {
                page_size_bytes: 64 * 1024,
                chunk_tuples: 10_000,
                buffer_pool_bytes: pool_bytes,
                io_bandwidth: Bandwidth::from_mb_per_sec(700.0),
                policy,
                ..Default::default()
            },
            cores: 8,
            sharing_sample_interval: None,
        }
    }

    fn build_micro() -> (Arc<Storage>, scanshare_workload::WorkloadSpec) {
        let config = MicrobenchConfig::tiny();
        microbench::build(&config, 64 * 1024, 10_000).unwrap()
    }

    #[test]
    fn all_policies_complete_the_microbenchmark() {
        let (storage, workload) = build_micro();
        for policy in PolicyKind::ALL {
            let sim =
                Simulation::new(Arc::clone(&storage), sim_config(policy, 512 * 1024)).unwrap();
            let result = sim.run(&workload).unwrap();
            assert_eq!(result.policy, policy);
            assert!(result.total_io_bytes > 0, "{policy}: no I/O recorded");
            if policy != PolicyKind::Opt {
                assert_eq!(result.stream_times.len(), workload.stream_count());
                assert!(result.makespan > VirtualDuration::ZERO);
                assert_eq!(result.query_latencies.len(), workload.query_count());
                assert!(result.avg_stream_time_secs().unwrap() > 0.0);
            } else {
                assert!(result.avg_stream_time_secs().is_none());
            }
        }
    }

    #[test]
    fn accessed_volume_counts_distinct_pages_once() {
        let (storage, workload) = build_micro();
        let sim = Simulation::new(storage, sim_config(PolicyKind::Lru, 1 << 20)).unwrap();
        let accessed = sim.accessed_volume(&workload).unwrap();
        assert!(accessed > 0);
        // Accessed volume can never exceed the total compressed table size
        // (plus page rounding per column).
        let table_bytes = 1_200_000u64; // 100k tuples * ~11 B/tuple + slack
        assert!(
            accessed < 2 * table_bytes,
            "accessed volume {accessed} looks too large"
        );
    }

    #[test]
    fn scan_aware_policies_do_less_io_than_lru_under_pressure() {
        let (storage, workload) = build_micro();
        let sim_of = |policy| {
            let accessed = {
                let sim =
                    Simulation::new(Arc::clone(&storage), sim_config(policy, 1 << 20)).unwrap();
                sim.accessed_volume(&workload).unwrap()
            };
            // 40% of the accessed volume, as in the paper's default setting.
            let pool = (accessed * 2 / 5).max(4 * 64 * 1024);
            Simulation::new(Arc::clone(&storage), sim_config(policy, pool)).unwrap()
        };
        let lru = sim_of(PolicyKind::Lru).run(&workload).unwrap();
        let pbm = sim_of(PolicyKind::Pbm).run(&workload).unwrap();
        let cscan = sim_of(PolicyKind::CScan).run(&workload).unwrap();
        let opt = sim_of(PolicyKind::Opt).run(&workload).unwrap();
        assert!(
            pbm.total_io_bytes <= lru.total_io_bytes,
            "PBM ({}) must not exceed LRU ({})",
            pbm.total_io_bytes,
            lru.total_io_bytes
        );
        assert!(
            cscan.total_io_bytes <= lru.total_io_bytes,
            "CScans ({}) must not exceed LRU ({})",
            cscan.total_io_bytes,
            lru.total_io_bytes
        );
        assert!(
            opt.total_io_bytes <= pbm.total_io_bytes,
            "OPT is a lower bound for the PBM trace"
        );
    }

    #[test]
    fn larger_buffer_pools_reduce_io() {
        let (storage, workload) = build_micro();
        let small = Simulation::new(
            Arc::clone(&storage),
            sim_config(PolicyKind::Pbm, 256 * 1024),
        )
        .unwrap()
        .run(&workload)
        .unwrap();
        let large = Simulation::new(Arc::clone(&storage), sim_config(PolicyKind::Pbm, 8 << 20))
            .unwrap()
            .run(&workload)
            .unwrap();
        assert!(large.total_io_bytes <= small.total_io_bytes);
    }

    #[test]
    fn higher_bandwidth_reduces_stream_time_but_not_io() {
        let (storage, workload) = build_micro();
        let mut slow_cfg = sim_config(PolicyKind::Pbm, 512 * 1024);
        slow_cfg.scanshare.io_bandwidth = Bandwidth::from_mb_per_sec(200.0);
        let mut fast_cfg = sim_config(PolicyKind::Pbm, 512 * 1024);
        fast_cfg.scanshare.io_bandwidth = Bandwidth::from_gb_per_sec(2.0);
        let slow = Simulation::new(Arc::clone(&storage), slow_cfg)
            .unwrap()
            .run(&workload)
            .unwrap();
        let fast = Simulation::new(Arc::clone(&storage), fast_cfg)
            .unwrap()
            .run(&workload)
            .unwrap();
        assert!(fast.avg_stream_time_secs().unwrap() <= slow.avg_stream_time_secs().unwrap());
        // The I/O volume is (approximately) bandwidth-independent. It is not
        // exactly equal for PBM because the scans' observed speeds — and
        // therefore the next-consumption estimates — depend on how fast pages
        // arrive, which is precisely the paper's "approximately constant".
        let ratio = fast.total_io_bytes as f64 / slow.total_io_bytes as f64;
        assert!(
            (0.85..=1.15).contains(&ratio),
            "I/O volume changed too much: {ratio}"
        );
    }

    #[test]
    fn sharing_profile_is_recorded_when_enabled() {
        let (storage, workload) = build_micro();
        let mut cfg = sim_config(PolicyKind::Pbm, 512 * 1024);
        cfg.sharing_sample_interval = Some(VirtualDuration::from_micros(500));
        let result = Simulation::new(storage, cfg)
            .unwrap()
            .run(&workload)
            .unwrap();
        let profile = result.sharing.expect("sampling enabled");
        assert!(!profile.is_empty());
        assert!(profile.peak_outstanding_bytes() > 0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let (storage, workload) = build_micro();
        let run = || {
            Simulation::new(
                Arc::clone(&storage),
                sim_config(PolicyKind::Pbm, 512 * 1024),
            )
            .unwrap()
            .run(&workload)
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_io_bytes, b.total_io_bytes);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.stream_times, b.stream_times);
    }

    #[test]
    fn zero_core_config_is_rejected() {
        let (storage, _) = build_micro();
        let mut cfg = sim_config(PolicyKind::Lru, 1 << 20);
        cfg.cores = 0;
        assert!(Simulation::new(storage, cfg).is_err());
    }

    // -----------------------------------------------------------------
    // Mixed read/write workloads
    // -----------------------------------------------------------------

    use scanshare_workload::spec::UpdateMix;

    fn mixed_workload(
        rate: u64,
        checkpoint_every: Option<u64>,
    ) -> scanshare_workload::WorkloadSpec {
        let config = MicrobenchConfig {
            streams: 2,
            queries_per_stream: 4,
            ..MicrobenchConfig::tiny()
        };
        let (storage, workload) = microbench::build(&config, 64 * 1024, 10_000).unwrap();
        let table = storage.table_ids()[0];
        drop(storage);
        workload.with_update_stream(UpdateStreamSpec {
            label: "updates".into(),
            table,
            ops_per_round: rate,
            mix: UpdateMix::balanced(),
            checkpoint_every,
            seed: 0xfeed,
        })
    }

    /// Fresh storage matching `mixed_workload` (mixed runs mutate storage,
    /// so every run gets its own deterministically rebuilt instance).
    fn mixed_storage() -> Arc<Storage> {
        let config = MicrobenchConfig {
            streams: 2,
            queries_per_stream: 4,
            ..MicrobenchConfig::tiny()
        };
        microbench::build(&config, 64 * 1024, 10_000).unwrap().0
    }

    #[test]
    fn mixed_workloads_run_deterministically_under_every_policy() {
        let workload = mixed_workload(32, Some(2));
        for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
            let run = || {
                Simulation::new(mixed_storage(), sim_config(policy, 1 << 20))
                    .unwrap()
                    .run(&workload)
                    .unwrap()
            };
            let a = run();
            let b = run();
            assert!(a.total_io_bytes > 0, "{policy}");
            assert_eq!(a.total_io_bytes, b.total_io_bytes, "{policy}");
            assert_eq!(a.stream_times, b.stream_times, "{policy}");
            assert_eq!(a.query_latencies.len(), workload.query_count(), "{policy}");
        }
    }

    #[test]
    fn checkpoints_cold_start_future_scans() {
        // Checkpointing swaps the whole stable image: scans after a
        // checkpoint read brand-new pages, so a pool that fit the table
        // now re-reads it — more I/O than the update-only run.
        let no_ckpt = Simulation::new(mixed_storage(), sim_config(PolicyKind::Lru, 8 << 20))
            .unwrap()
            .run(&mixed_workload(16, None))
            .unwrap();
        let ckpt = Simulation::new(mixed_storage(), sim_config(PolicyKind::Lru, 8 << 20))
            .unwrap()
            .run(&mixed_workload(16, Some(1)))
            .unwrap();
        assert!(
            ckpt.total_io_bytes > no_ckpt.total_io_bytes,
            "checkpoints must invalidate the warm pool (ckpt {} vs none {})",
            ckpt.total_io_bytes,
            no_ckpt.total_io_bytes
        );
        assert!(ckpt.buffer.invalidated_pages > 0);
        assert_eq!(no_ckpt.buffer.invalidated_pages, 0);
    }

    #[test]
    fn zone_maps_cut_io_for_selective_workloads() {
        use scanshare_workload::skipping::{self, SkippingConfig};
        let config = SkippingConfig::tiny().with_selectivity(0.01);
        let run = |policy: PolicyKind, zone_maps: bool| {
            let (storage, workload) = skipping::build(&config, 16 * 1024, 1000).unwrap();
            let mut cfg = sim_config(policy, 256 * 1024);
            cfg.scanshare.page_size_bytes = 16 * 1024;
            cfg.scanshare.chunk_tuples = 1000;
            cfg.scanshare.zone_maps = zone_maps;
            Simulation::new(storage, cfg)
                .unwrap()
                .run(&workload)
                .unwrap()
        };
        for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
            let on = run(policy, true);
            let off = run(policy, false);
            assert!(on.buffer.pruned_tuples > 0, "{policy}: nothing pruned");
            assert_eq!(off.buffer.pruned_tuples, 0, "{policy}");
            assert!(
                on.total_io_bytes * 5 <= off.total_io_bytes,
                "{policy}: skipping saved too little I/O ({} vs {})",
                on.total_io_bytes,
                off.total_io_bytes
            );
        }
    }

    #[test]
    fn mixed_opt_is_rejected() {
        let workload = mixed_workload(8, None);
        let err = Simulation::new(mixed_storage(), sim_config(PolicyKind::Opt, 1 << 20))
            .unwrap()
            .run(&workload)
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }
}
