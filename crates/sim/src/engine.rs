//! The discrete-event simulator.
//!
//! Streams execute their queries back to back. A query is a sequence of range
//! scans; each scan either issues page requests in order against the shared
//! [`BufferPool`] (LRU, PBM, OPT-trace runs) or attaches to the
//! [`Abm`] and consumes chunks out of order
//! (Cooperative Scans). Misses are served by a bandwidth-limited
//! [`IoDevice`]; CPU work is charged per tuple, scaled by the query's CPU
//! factor and by the effective intra-query parallelism
//! (`min(threads_per_query, cores / streams)`).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use scanshare_common::{
    Error, PageId, PolicyKind, Result, ScanId, ScanShareConfig, VirtualDuration, VirtualInstant,
};
use scanshare_core::abm::{Abm, AbmConfig, CScanHandle, CScanRequest, LoadPlan};
use scanshare_core::bufferpool::{top_up_prefetch_window, BufferPool};
use scanshare_core::metrics::BufferStats;
use scanshare_core::opt::simulate_opt;
use scanshare_core::registry::{pooled_policy_name, PolicyRegistry};
use scanshare_iosim::{IoDevice, ReferenceTrace};
use scanshare_storage::storage::Storage;
use scanshare_workload::spec::{QuerySpec, WorkloadSpec};

use crate::result::SimResult;
use crate::sharing::SharingProfile;

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Storage / buffer / policy configuration shared with the rest of the
    /// workspace. The simulator is single-threaded, so
    /// `ScanShareConfig::pool_shards` — a lock-partitioning knob for the
    /// live engine — has no effect here; that is sound because sharding
    /// never changes replacement decisions or I/O accounting (see
    /// `scanshare_core::sharded`), only contention.
    pub scanshare: ScanShareConfig,
    /// Number of CPU cores of the simulated server (the paper's machine has
    /// two 4-core CPUs).
    pub cores: usize,
    /// When set, the simulator records a sharing-potential sample every this
    /// much virtual time (Figures 17/18).
    pub sharing_sample_interval: Option<VirtualDuration>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            scanshare: ScanShareConfig::default(),
            cores: 8,
            sharing_sample_interval: None,
        }
    }
}

/// A simulation of one workload against one policy.
#[derive(Debug)]
pub struct Simulation {
    storage: Arc<Storage>,
    config: SimConfig,
}

// ---------------------------------------------------------------------------
// Internal run state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Stream(usize),
    LoadDone,
}

#[derive(Debug)]
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
    plan: Option<LoadPlan>,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// One scan of a query in the page-level (order-preserving) model.
#[derive(Debug)]
struct PartRun {
    scan_id: ScanId,
    /// (page, tuples on that page) in consumption order.
    pages: Vec<(PageId, u64)>,
    next: usize,
    consumed: u64,
}

#[derive(Debug)]
struct QueryRun {
    parts: Vec<PartRun>,
    part_idx: usize,
    cpu_ns_per_tuple: f64,
    started: VirtualInstant,
}

#[derive(Debug)]
struct StreamState {
    queries: VecDeque<usize>,
    current: Option<QueryRun>,
    finished: Option<VirtualInstant>,
}

/// One scan of a query in the chunk-level (Cooperative Scans) model.
#[derive(Debug)]
struct CScanQueryRun {
    scan_specs: Vec<usize>,
    part_idx: usize,
    active: Option<CScanHandle>,
    cpu_ns_per_tuple: f64,
    started: VirtualInstant,
}

#[derive(Debug)]
struct CScanStreamState {
    queries: VecDeque<usize>,
    current: Option<CScanQueryRun>,
    finished: Option<VirtualInstant>,
}

/// Periodic sharing-potential sampling state (Figures 17/18), shared by the
/// pooled and Cooperative Scans event loops so the sampling cadence exists
/// exactly once; the loops differ only in how each computes the outstanding
/// page sets.
struct SharingSampler {
    profile: Option<SharingProfile>,
    next_sample: u64,
    interval: u64,
}

impl SharingSampler {
    fn new(interval: Option<VirtualDuration>) -> Self {
        Self {
            profile: interval.map(|_| SharingProfile::default()),
            next_sample: 0,
            interval: interval.map(|d| d.as_nanos()).unwrap_or(u64::MAX),
        }
    }

    /// Pushes a sample when `time_ns` reached the next sampling point;
    /// `outstanding` (the per-scan still-to-consume page sets) is only
    /// evaluated when a sample is actually taken.
    fn sample_if_due<F>(&mut self, time_ns: u64, page_size: u64, outstanding: F)
    where
        F: FnOnce() -> Vec<Vec<PageId>>,
    {
        let Some(profile) = self.profile.as_mut() else {
            return;
        };
        if time_ns < self.next_sample {
            return;
        }
        let outstanding = outstanding();
        profile.push(SharingProfile::sample_from_outstanding(
            VirtualInstant::from_nanos(time_ns),
            page_size,
            outstanding.iter(),
        ));
        self.next_sample = time_ns + self.interval;
    }

    fn into_profile(self) -> Option<SharingProfile> {
        self.profile
    }
}

impl Simulation {
    /// Creates a simulation over `storage` (which must already contain the
    /// workload's tables).
    pub fn new(storage: Arc<Storage>, config: SimConfig) -> Result<Self> {
        config.scanshare.validate()?;
        if config.cores == 0 {
            return Err(Error::config(
                "the simulated machine needs at least one core",
            ));
        }
        Ok(Self { storage, config })
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Total volume of distinct data accessed by the workload, in bytes
    /// (the quantity the paper sizes buffer pools against: "buffer pool
    /// capacity equal to 40% of accessed data volume").
    pub fn accessed_volume(&self, workload: &WorkloadSpec) -> Result<u64> {
        let mut pages: HashSet<PageId> = HashSet::new();
        for stream in &workload.streams {
            for query in &stream.queries {
                for scan in &query.scans {
                    let layout = self.storage.layout(scan.table)?;
                    let snapshot = self.storage.master_snapshot(scan.table)?;
                    let plan = layout.scan_page_plan(&snapshot, &scan.columns, &scan.ranges);
                    pages.extend(plan.pages.iter().map(|p| p.page));
                }
            }
        }
        Ok(pages.len() as u64 * self.config.scanshare.page_size_bytes)
    }

    /// Runs `workload` under the policy selected in the configuration.
    pub fn run(&self, workload: &WorkloadSpec) -> Result<SimResult> {
        match self.config.scanshare.policy {
            PolicyKind::CScan => self.run_cscan(workload),
            PolicyKind::Opt => self.run_opt(workload),
            policy => self.run_pool(workload, policy, false).map(|(r, _)| r),
        }
    }

    fn effective_parallelism(&self, streams: usize) -> u64 {
        let per_stream = (self.config.cores / streams.max(1)).max(1);
        per_stream.min(self.config.scanshare.threads_per_query) as u64
    }

    fn cpu_ns_per_tuple(&self, query: &QuerySpec, streams: usize) -> f64 {
        let parallelism = self.effective_parallelism(streams) as f64;
        1e9 * query.cpu_factor / (self.config.scanshare.cpu_tuples_per_sec as f64 * parallelism)
    }

    fn device(&self) -> IoDevice {
        IoDevice::new(
            self.config.scanshare.io_bandwidth,
            VirtualDuration::from_nanos(self.config.scanshare.io_latency_nanos),
        )
    }

    // -----------------------------------------------------------------
    // Order-preserving policies: LRU / PBM (and the PBM run behind OPT)
    // -----------------------------------------------------------------

    fn make_pool(
        &self,
        policy: PolicyKind,
        trace: Option<Arc<ReferenceTrace>>,
    ) -> Result<BufferPool> {
        // The simulator shares policy construction with the execution engine:
        // the page-level policy comes from the registry (honouring
        // `custom_policy`), so the policies the figures measure are the
        // policies the engine runs.
        let name = pooled_policy_name(&self.config.scanshare, policy);
        let replacement = PolicyRegistry::default().build(name, &self.config.scanshare)?;
        let mut pool = BufferPool::new(
            self.config.scanshare.buffer_pool_pages().max(1),
            self.config.scanshare.page_size_bytes,
            replacement,
        );
        if let Some(trace) = trace {
            pool = pool.with_trace(trace);
        }
        Ok(pool)
    }

    fn build_query_run(
        &self,
        pool: &mut BufferPool,
        query: &QuerySpec,
        streams: usize,
        now: VirtualInstant,
    ) -> Result<QueryRun> {
        let mut parts = Vec::with_capacity(query.scans.len());
        for scan in &query.scans {
            let layout = self.storage.layout(scan.table)?;
            let snapshot = self.storage.master_snapshot(scan.table)?;
            let plan = layout.scan_page_plan(&snapshot, &scan.columns, &scan.ranges);
            let scan_id = pool.register_scan(&plan, now);
            let pages: Vec<(PageId, u64)> = plan
                .interleaved()
                .iter()
                .map(|p| (p.page, p.tuple_count))
                .collect();
            parts.push(PartRun {
                scan_id,
                pages,
                next: 0,
                consumed: 0,
            });
        }
        Ok(QueryRun {
            parts,
            part_idx: 0,
            cpu_ns_per_tuple: self.cpu_ns_per_tuple(query, streams),
            started: now,
        })
    }

    fn run_pool(
        &self,
        workload: &WorkloadSpec,
        policy: PolicyKind,
        record_trace: bool,
    ) -> Result<(SimResult, Option<Arc<ReferenceTrace>>)> {
        let trace = record_trace.then(|| Arc::new(ReferenceTrace::new()));
        let mut pool = self.make_pool(policy, trace.clone())?;
        let device = self.device();
        let stream_count = workload.stream_count();
        let page_size = self.config.scanshare.page_size_bytes;
        // The asynchronous prefetch window, mirroring
        // `PooledBackend::top_up_prefetch` in the execution engine: page ->
        // completion time (ns) of prefetch transfers that may still be in
        // flight.
        let prefetch_window = self.config.scanshare.prefetch_pages;
        let mut inflight: HashMap<PageId, VirtualInstant> = HashMap::new();

        let mut streams: Vec<StreamState> = workload
            .streams
            .iter()
            .map(|s| StreamState {
                queries: (0..s.queries.len()).collect(),
                current: None,
                finished: None,
            })
            .collect();

        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut BinaryHeap<Reverse<Event>>, time: u64, kind: EventKind| {
            heap.push(Reverse(Event {
                time,
                seq,
                kind,
                plan: None,
            }));
            seq += 1;
        };
        for s in 0..stream_count {
            push(&mut heap, 0, EventKind::Stream(s));
        }

        let mut query_latencies = Vec::new();
        let mut sampler = SharingSampler::new(self.config.sharing_sample_interval);

        while let Some(Reverse(event)) = heap.pop() {
            let now = VirtualInstant::from_nanos(event.time);
            let EventKind::Stream(s) = event.kind else {
                unreachable!("no loader in pool mode")
            };

            // Periodic sharing-potential sampling.
            sampler.sample_if_due(event.time, page_size, || {
                streams
                    .iter()
                    .filter_map(|st| st.current.as_ref())
                    .flat_map(|q| {
                        q.parts[q.part_idx..].iter().map(|part| {
                            let mut pages: Vec<PageId> =
                                part.pages[part.next..].iter().map(|(p, _)| *p).collect();
                            pages.sort_unstable();
                            pages.dedup();
                            pages
                        })
                    })
                    .collect()
            });

            // Start the next query if needed.
            if streams[s].current.is_none() {
                let Some(query_idx) = streams[s].queries.pop_front() else {
                    if streams[s].finished.is_none() {
                        streams[s].finished = Some(now);
                    }
                    continue;
                };
                let query = &workload.streams[s].queries[query_idx];
                let run = self.build_query_run(&mut pool, query, stream_count, now)?;
                streams[s].current = Some(run);
            }

            // Process one page of the current query.
            let run = streams[s].current.as_mut().expect("set above");
            if run.part_idx >= run.parts.len() {
                // Query finished.
                query_latencies.push(now.since(run.started));
                streams[s].current = None;
                push(&mut heap, event.time, EventKind::Stream(s));
                continue;
            }
            let cpu_ns_per_tuple = run.cpu_ns_per_tuple;
            let part = &mut run.parts[run.part_idx];
            if part.next >= part.pages.len() {
                pool.unregister_scan(part.scan_id, now);
                run.part_idx += 1;
                push(&mut heap, event.time, EventKind::Stream(s));
                continue;
            }
            let (page, tuples) = part.pages[part.next];
            part.next += 1;
            part.consumed += tuples;
            let outcome = pool.request_page(page, Some(part.scan_id), now)?;
            pool.report_scan_position(part.scan_id, part.consumed, now);
            let cpu_ns = (tuples as f64 * cpu_ns_per_tuple).round() as u64;
            let mut consumed_inflight = false;
            let io_done = if outcome.is_hit() {
                // A hit on a page whose prefetch is still in flight waits
                // for the remaining transfer time only.
                match inflight.remove(&page) {
                    Some(done) => {
                        consumed_inflight = true;
                        done.as_nanos().max(event.time)
                    }
                    None => event.time,
                }
            } else {
                device.submit(now, page_size).as_nanos()
            };
            // Top up the prefetch window (after the demand read, which must
            // not queue behind new speculative transfers), but — like the
            // engine's PooledBackend — only when this access changed the
            // prefetch picture, so warm-pool hits stay cheap.
            if !outcome.is_hit() || consumed_inflight {
                top_up_prefetch_window(&mut pool, &device, &mut inflight, prefetch_window, now);
            }
            push(&mut heap, io_done + cpu_ns, EventKind::Stream(s));
        }

        let makespan = streams
            .iter()
            .filter_map(|s| s.finished)
            .max()
            .unwrap_or(VirtualInstant::EPOCH);
        let stream_times: Vec<VirtualDuration> = streams
            .iter()
            .map(|s| s.finished.unwrap_or(makespan).since(VirtualInstant::EPOCH))
            .collect();
        let stats = pool.stats();
        let result = SimResult {
            workload: workload.name.clone(),
            policy,
            stream_times,
            query_latencies,
            total_io_bytes: stats.io_bytes,
            buffer: stats,
            makespan: makespan.since(VirtualInstant::EPOCH),
            has_timing: true,
            sharing: sampler.into_profile(),
        };
        Ok((result, trace))
    }

    // -----------------------------------------------------------------
    // OPT: replay the PBM trace through Belady's algorithm
    // -----------------------------------------------------------------

    fn run_opt(&self, workload: &WorkloadSpec) -> Result<SimResult> {
        let (pbm_result, trace) = self.run_pool(workload, PolicyKind::Pbm, true)?;
        let trace = trace.expect("trace recording was requested");
        let capacity = self.config.scanshare.buffer_pool_pages().max(1);
        let opt = simulate_opt(&trace.pages(), capacity);
        let page_size = self.config.scanshare.page_size_bytes;
        Ok(SimResult {
            workload: workload.name.clone(),
            policy: PolicyKind::Opt,
            stream_times: pbm_result.stream_times,
            query_latencies: Vec::new(),
            total_io_bytes: opt.io_bytes(page_size),
            buffer: BufferStats {
                hits: opt.hits,
                misses: opt.misses,
                evictions: opt.evictions,
                pages_loaded: opt.misses,
                io_bytes: opt.io_bytes(page_size),
                ..BufferStats::default()
            },
            makespan: pbm_result.makespan,
            has_timing: false,
            sharing: None,
        })
    }

    // -----------------------------------------------------------------
    // Cooperative Scans
    // -----------------------------------------------------------------

    fn register_cscan_part(
        &self,
        abm: &Abm,
        query: &QuerySpec,
        part_idx: usize,
    ) -> Result<CScanHandle> {
        let scan = &query.scans[part_idx];
        let layout = self.storage.layout(scan.table)?;
        let snapshot = self.storage.master_snapshot(scan.table)?;
        abm.register_cscan(CScanRequest {
            table: scan.table,
            snapshot,
            layout,
            columns: scan.columns.clone(),
            ranges: scan.ranges.clone(),
            in_order: false,
        })
    }

    fn run_cscan(&self, workload: &WorkloadSpec) -> Result<SimResult> {
        let abm = Abm::new(AbmConfig::new(
            self.config.scanshare.buffer_pool_bytes,
            self.config.scanshare.page_size_bytes,
        ));
        let device = self.device();
        let stream_count = workload.stream_count();
        let page_size = self.config.scanshare.page_size_bytes;

        let mut streams: Vec<CScanStreamState> = workload
            .streams
            .iter()
            .map(|s| CScanStreamState {
                queries: (0..s.queries.len()).collect(),
                current: None,
                finished: None,
            })
            .collect();

        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push_event = |heap: &mut BinaryHeap<Reverse<Event>>,
                              time: u64,
                              kind: EventKind,
                              plan: Option<LoadPlan>| {
            heap.push(Reverse(Event {
                time,
                seq,
                kind,
                plan,
            }));
            seq += 1;
        };
        for s in 0..stream_count {
            push_event(&mut heap, 0, EventKind::Stream(s), None);
        }

        let mut blocked: HashSet<usize> = HashSet::new();
        let mut loader_busy = false;
        let mut query_latencies = Vec::new();
        let mut sampler = SharingSampler::new(self.config.sharing_sample_interval);

        macro_rules! kick_loader {
            ($heap:expr, $now:expr) => {
                if !loader_busy {
                    if let Some(plan) = abm.next_load(VirtualInstant::from_nanos($now)) {
                        let done = device
                            .submit(VirtualInstant::from_nanos($now), plan.bytes)
                            .as_nanos();
                        loader_busy = true;
                        push_event($heap, done, EventKind::LoadDone, Some(plan));
                    }
                }
            };
        }

        while let Some(Reverse(event)) = heap.pop() {
            let now_ns = event.time;
            let now = VirtualInstant::from_nanos(now_ns);

            // Periodic sharing-potential sampling: the outstanding data of
            // a CScan is the page set of its still-needed chunks, which the
            // ABM tracks directly.
            sampler.sample_if_due(event.time, page_size, || {
                streams
                    .iter()
                    .filter_map(|st| st.current.as_ref())
                    .filter_map(|q| q.active)
                    .map(|handle| abm.outstanding_pages(handle.id))
                    .collect()
            });

            match event.kind {
                EventKind::LoadDone => {
                    let plan = event.plan.expect("load event carries its plan");
                    abm.complete_load(&plan, now)?;
                    loader_busy = false;
                    // Wake blocked streams in index order: HashSet iteration
                    // order varies between processes and would make ABM
                    // scheduling (and therefore I/O volumes) nondeterministic.
                    let mut woken: Vec<usize> = blocked.drain().collect();
                    woken.sort_unstable();
                    for s in woken {
                        push_event(&mut heap, now_ns, EventKind::Stream(s), None);
                    }
                    kick_loader!(&mut heap, now_ns);
                }
                EventKind::Stream(s) => {
                    if streams[s].current.is_none() {
                        let Some(query_idx) = streams[s].queries.pop_front() else {
                            if streams[s].finished.is_none() {
                                streams[s].finished = Some(now);
                            }
                            continue;
                        };
                        let query = &workload.streams[s].queries[query_idx];
                        let handle = self.register_cscan_part(&abm, query, 0)?;
                        streams[s].current = Some(CScanQueryRun {
                            scan_specs: vec![query_idx],
                            part_idx: 0,
                            active: Some(handle),
                            cpu_ns_per_tuple: self.cpu_ns_per_tuple(query, stream_count),
                            started: now,
                        });
                        kick_loader!(&mut heap, now_ns);
                    }

                    let query_idx = streams[s].current.as_ref().expect("set above").scan_specs[0];
                    let query = &workload.streams[s].queries[query_idx];
                    let run = streams[s].current.as_mut().expect("set above");
                    let Some(handle) = run.active else {
                        // All parts done: the query is finished.
                        query_latencies.push(now.since(run.started));
                        streams[s].current = None;
                        push_event(&mut heap, now_ns, EventKind::Stream(s), None);
                        continue;
                    };

                    match abm.get_chunk(handle.id)? {
                        Some(delivery) => {
                            let cpu_ns =
                                (delivery.tuples as f64 * run.cpu_ns_per_tuple).round() as u64;
                            push_event(&mut heap, now_ns + cpu_ns, EventKind::Stream(s), None);
                        }
                        None => {
                            if abm.is_finished(handle.id) {
                                abm.unregister_cscan(handle.id)?;
                                run.part_idx += 1;
                                if run.part_idx < query.scans.len() {
                                    let next =
                                        self.register_cscan_part(&abm, query, run.part_idx)?;
                                    run.active = Some(next);
                                } else {
                                    run.active = None;
                                }
                                push_event(&mut heap, now_ns, EventKind::Stream(s), None);
                                kick_loader!(&mut heap, now_ns);
                            } else {
                                blocked.insert(s);
                                kick_loader!(&mut heap, now_ns);
                            }
                        }
                    }
                }
            }
        }

        if streams.iter().any(|s| s.finished.is_none()) {
            return Err(Error::internal(
                "Cooperative Scans simulation deadlocked: buffer pool too small for one chunk",
            ));
        }

        let makespan = streams
            .iter()
            .filter_map(|s| s.finished)
            .max()
            .unwrap_or(VirtualInstant::EPOCH);
        let stream_times: Vec<VirtualDuration> = streams
            .iter()
            .map(|s| s.finished.unwrap().since(VirtualInstant::EPOCH))
            .collect();
        let stats = abm.stats();
        Ok(SimResult {
            workload: workload.name.clone(),
            policy: PolicyKind::CScan,
            stream_times,
            query_latencies,
            total_io_bytes: stats.io_bytes,
            buffer: stats,
            makespan: makespan.since(VirtualInstant::EPOCH),
            has_timing: true,
            sharing: sampler.into_profile(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::Bandwidth;
    use scanshare_workload::microbench::{self, MicrobenchConfig};

    fn sim_config(policy: PolicyKind, pool_bytes: u64) -> SimConfig {
        SimConfig {
            scanshare: ScanShareConfig {
                page_size_bytes: 64 * 1024,
                chunk_tuples: 10_000,
                buffer_pool_bytes: pool_bytes,
                io_bandwidth: Bandwidth::from_mb_per_sec(700.0),
                policy,
                ..Default::default()
            },
            cores: 8,
            sharing_sample_interval: None,
        }
    }

    fn build_micro() -> (Arc<Storage>, scanshare_workload::WorkloadSpec) {
        let config = MicrobenchConfig::tiny();
        microbench::build(&config, 64 * 1024, 10_000).unwrap()
    }

    #[test]
    fn all_policies_complete_the_microbenchmark() {
        let (storage, workload) = build_micro();
        for policy in PolicyKind::ALL {
            let sim =
                Simulation::new(Arc::clone(&storage), sim_config(policy, 512 * 1024)).unwrap();
            let result = sim.run(&workload).unwrap();
            assert_eq!(result.policy, policy);
            assert!(result.total_io_bytes > 0, "{policy}: no I/O recorded");
            if policy != PolicyKind::Opt {
                assert_eq!(result.stream_times.len(), workload.stream_count());
                assert!(result.makespan > VirtualDuration::ZERO);
                assert_eq!(result.query_latencies.len(), workload.query_count());
                assert!(result.avg_stream_time_secs().unwrap() > 0.0);
            } else {
                assert!(result.avg_stream_time_secs().is_none());
            }
        }
    }

    #[test]
    fn accessed_volume_counts_distinct_pages_once() {
        let (storage, workload) = build_micro();
        let sim = Simulation::new(storage, sim_config(PolicyKind::Lru, 1 << 20)).unwrap();
        let accessed = sim.accessed_volume(&workload).unwrap();
        assert!(accessed > 0);
        // Accessed volume can never exceed the total compressed table size
        // (plus page rounding per column).
        let table_bytes = 1_200_000u64; // 100k tuples * ~11 B/tuple + slack
        assert!(
            accessed < 2 * table_bytes,
            "accessed volume {accessed} looks too large"
        );
    }

    #[test]
    fn scan_aware_policies_do_less_io_than_lru_under_pressure() {
        let (storage, workload) = build_micro();
        let sim_of = |policy| {
            let accessed = {
                let sim =
                    Simulation::new(Arc::clone(&storage), sim_config(policy, 1 << 20)).unwrap();
                sim.accessed_volume(&workload).unwrap()
            };
            // 40% of the accessed volume, as in the paper's default setting.
            let pool = (accessed * 2 / 5).max(4 * 64 * 1024);
            Simulation::new(Arc::clone(&storage), sim_config(policy, pool)).unwrap()
        };
        let lru = sim_of(PolicyKind::Lru).run(&workload).unwrap();
        let pbm = sim_of(PolicyKind::Pbm).run(&workload).unwrap();
        let cscan = sim_of(PolicyKind::CScan).run(&workload).unwrap();
        let opt = sim_of(PolicyKind::Opt).run(&workload).unwrap();
        assert!(
            pbm.total_io_bytes <= lru.total_io_bytes,
            "PBM ({}) must not exceed LRU ({})",
            pbm.total_io_bytes,
            lru.total_io_bytes
        );
        assert!(
            cscan.total_io_bytes <= lru.total_io_bytes,
            "CScans ({}) must not exceed LRU ({})",
            cscan.total_io_bytes,
            lru.total_io_bytes
        );
        assert!(
            opt.total_io_bytes <= pbm.total_io_bytes,
            "OPT is a lower bound for the PBM trace"
        );
    }

    #[test]
    fn larger_buffer_pools_reduce_io() {
        let (storage, workload) = build_micro();
        let small = Simulation::new(
            Arc::clone(&storage),
            sim_config(PolicyKind::Pbm, 256 * 1024),
        )
        .unwrap()
        .run(&workload)
        .unwrap();
        let large = Simulation::new(Arc::clone(&storage), sim_config(PolicyKind::Pbm, 8 << 20))
            .unwrap()
            .run(&workload)
            .unwrap();
        assert!(large.total_io_bytes <= small.total_io_bytes);
    }

    #[test]
    fn higher_bandwidth_reduces_stream_time_but_not_io() {
        let (storage, workload) = build_micro();
        let mut slow_cfg = sim_config(PolicyKind::Pbm, 512 * 1024);
        slow_cfg.scanshare.io_bandwidth = Bandwidth::from_mb_per_sec(200.0);
        let mut fast_cfg = sim_config(PolicyKind::Pbm, 512 * 1024);
        fast_cfg.scanshare.io_bandwidth = Bandwidth::from_gb_per_sec(2.0);
        let slow = Simulation::new(Arc::clone(&storage), slow_cfg)
            .unwrap()
            .run(&workload)
            .unwrap();
        let fast = Simulation::new(Arc::clone(&storage), fast_cfg)
            .unwrap()
            .run(&workload)
            .unwrap();
        assert!(fast.avg_stream_time_secs().unwrap() <= slow.avg_stream_time_secs().unwrap());
        // The I/O volume is (approximately) bandwidth-independent. It is not
        // exactly equal for PBM because the scans' observed speeds — and
        // therefore the next-consumption estimates — depend on how fast pages
        // arrive, which is precisely the paper's "approximately constant".
        let ratio = fast.total_io_bytes as f64 / slow.total_io_bytes as f64;
        assert!(
            (0.85..=1.15).contains(&ratio),
            "I/O volume changed too much: {ratio}"
        );
    }

    #[test]
    fn sharing_profile_is_recorded_when_enabled() {
        let (storage, workload) = build_micro();
        let mut cfg = sim_config(PolicyKind::Pbm, 512 * 1024);
        cfg.sharing_sample_interval = Some(VirtualDuration::from_micros(500));
        let result = Simulation::new(storage, cfg)
            .unwrap()
            .run(&workload)
            .unwrap();
        let profile = result.sharing.expect("sampling enabled");
        assert!(!profile.is_empty());
        assert!(profile.peak_outstanding_bytes() > 0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let (storage, workload) = build_micro();
        let run = || {
            Simulation::new(
                Arc::clone(&storage),
                sim_config(PolicyKind::Pbm, 512 * 1024),
            )
            .unwrap()
            .run(&workload)
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_io_bytes, b.total_io_bytes);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.stream_times, b.stream_times);
    }

    #[test]
    fn zero_core_config_is_rejected() {
        let (storage, _) = build_micro();
        let mut cfg = sim_config(PolicyKind::Lru, 1 << 20);
        cfg.cores = 0;
        assert!(Simulation::new(storage, cfg).is_err());
    }
}
