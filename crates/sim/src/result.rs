//! Simulation results.

use scanshare_common::{PolicyKind, VirtualDuration};
use scanshare_core::metrics::BufferStats;

use crate::sharing::SharingProfile;

/// The outcome of simulating one workload under one policy.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Workload name.
    pub workload: String,
    /// The simulated policy.
    pub policy: PolicyKind,
    /// Completion time of each stream.
    pub stream_times: Vec<VirtualDuration>,
    /// Latency of every executed query.
    pub query_latencies: Vec<VirtualDuration>,
    /// Total I/O volume in bytes (the paper's second metric). For OPT this is
    /// the volume the oracle would have caused on the recorded trace.
    pub total_io_bytes: u64,
    /// Buffer-manager counters.
    pub buffer: BufferStats,
    /// Virtual time at which the last stream finished.
    pub makespan: VirtualDuration,
    /// Whether stream times are meaningful (OPT is replayed from a trace and
    /// therefore only reports I/O volume, like in the paper).
    pub has_timing: bool,
    /// Sharing-potential samples, when recording was enabled.
    pub sharing: Option<SharingProfile>,
}

impl SimResult {
    /// Average stream completion time in seconds, if timing is meaningful.
    pub fn avg_stream_time_secs(&self) -> Option<f64> {
        if !self.has_timing || self.stream_times.is_empty() {
            return None;
        }
        Some(
            self.stream_times
                .iter()
                .map(|d| d.as_secs_f64())
                .sum::<f64>()
                / self.stream_times.len() as f64,
        )
    }

    /// Average query latency in seconds, if timing is meaningful.
    pub fn avg_query_latency_secs(&self) -> Option<f64> {
        if !self.has_timing || self.query_latencies.is_empty() {
            return None;
        }
        Some(
            self.query_latencies
                .iter()
                .map(|d| d.as_secs_f64())
                .sum::<f64>()
                / self.query_latencies.len() as f64,
        )
    }

    /// Total I/O volume in (decimal) gigabytes.
    pub fn total_io_gb(&self) -> f64 {
        self.total_io_bytes as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_and_unit_conversions() {
        let result = SimResult {
            workload: "w".into(),
            policy: PolicyKind::Pbm,
            stream_times: vec![VirtualDuration::from_secs(2), VirtualDuration::from_secs(4)],
            query_latencies: vec![VirtualDuration::from_millis(500)],
            total_io_bytes: 2_000_000_000,
            buffer: BufferStats::default(),
            makespan: VirtualDuration::from_secs(4),
            has_timing: true,
            sharing: None,
        };
        assert_eq!(result.avg_stream_time_secs(), Some(3.0));
        assert_eq!(result.avg_query_latency_secs(), Some(0.5));
        assert_eq!(result.total_io_gb(), 2.0);

        let opt = SimResult {
            has_timing: false,
            ..result
        };
        assert_eq!(opt.avg_stream_time_secs(), None);
        assert_eq!(opt.avg_query_latency_secs(), None);
    }
}
