//! Discrete-event simulation of concurrent scan workloads and the experiment
//! harness reproducing every figure of the paper's evaluation.
//!
//! The simulator executes a [`scanshare_workload::WorkloadSpec`] — several
//! concurrent streams of range-scan queries — against one of the four
//! buffer-management approaches (LRU, Cooperative Scans, PBM, OPT) on a
//! virtual clock with a bandwidth-limited I/O device. It reports the two
//! measures used throughout the paper: **average stream time** and **total
//! I/O volume**, plus the sharing-potential analysis of Figures 17/18.
//!
//! The policies being simulated are the *same implementations* the execution
//! engine uses (`scanshare-core`); the simulator only supplies the workload
//! and the timing model.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod experiment;
pub mod report;
pub mod result;
pub mod sharing;

pub use engine::{SimConfig, Simulation};
pub use experiment::{ExperimentRow, ExperimentScale};
pub use report::{format_rows, format_sharing};
pub use result::SimResult;
pub use sharing::{SharingProfile, SharingSample};
