//! Plain-text reporting of experiment results.
//!
//! The benchmark harness and the `figures` example print the same rows and
//! series the paper's figures plot: per (x-value, policy) the average stream
//! time and the total I/O volume, and for the sharing-potential figures the
//! stacked volumes per overlap class.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use scanshare_common::PolicyKind;

use crate::experiment::ExperimentRow;
use crate::sharing::SharingProfile;

/// Formats experiment rows as two aligned tables (stream time and I/O
/// volume), one column per policy — the textual equivalent of the paper's
/// paired plots.
pub fn format_rows(title: &str, rows: &[ExperimentRow]) -> String {
    let mut out = String::new();
    if rows.is_empty() {
        let _ = writeln!(out, "== {title} == (no data)");
        return out;
    }
    let x_label = rows[0].x_label.clone();
    let policies: Vec<PolicyKind> = {
        let mut seen = Vec::new();
        for row in rows {
            if !seen.contains(&row.policy) {
                seen.push(row.policy);
            }
        }
        seen
    };
    let xs: BTreeSet<u64> = rows.iter().map(|r| r.x_value.to_bits()).collect();
    let xs: Vec<f64> = xs.into_iter().map(f64::from_bits).collect();
    let mut xs = xs;
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(out, "-- average stream time [s] --");
    let _ = write!(out, "{x_label:>32}");
    for p in &policies {
        let _ = write!(out, "{:>12}", p.name());
    }
    let _ = writeln!(out);
    for &x in &xs {
        let _ = write!(out, "{x:>32.1}");
        for p in &policies {
            let cell = rows
                .iter()
                .find(|r| r.policy == *p && (r.x_value - x).abs() < 1e-9)
                .and_then(|r| r.avg_stream_time_s);
            match cell {
                Some(v) => {
                    let _ = write!(out, "{v:>12.3}");
                }
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "-- total I/O volume [GB] --");
    let _ = write!(out, "{x_label:>32}");
    for p in &policies {
        let _ = write!(out, "{:>12}", p.name());
    }
    let _ = writeln!(out);
    for &x in &xs {
        let _ = write!(out, "{x:>32.1}");
        for p in &policies {
            let cell = rows
                .iter()
                .find(|r| r.policy == *p && (r.x_value - x).abs() < 1e-9)
                .map(|r| r.total_io_gb);
            match cell {
                Some(v) => {
                    let _ = write!(out, "{v:>12.3}");
                }
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Formats a sharing-potential profile as a time series of stacked volumes
/// (Figures 17/18).
pub fn format_sharing(title: &str, profile: &SharingProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:>12}{:>14}{:>14}{:>14}{:>14}",
        "time [s]", "1 scan [MB]", "2 scans [MB]", "3 scans [MB]", ">=4 scans [MB]"
    );
    for sample in &profile.samples {
        let mb = |b: u64| b as f64 / 1e6;
        let _ = writeln!(
            out,
            "{:>12.2}{:>14.1}{:>14.1}{:>14.1}{:>14.1}",
            sample.time.as_secs_f64(),
            mb(sample.bytes_by_overlap[0]),
            mb(sample.bytes_by_overlap[1]),
            mb(sample.bytes_by_overlap[2]),
            mb(sample.bytes_by_overlap[3]),
        );
    }
    let _ = writeln!(
        out,
        "avg shared fraction (>=2 scans): {:.1}%",
        profile.avg_shared_fraction() * 100.0
    );
    out
}

/// Serializes rows to JSON (one object per row) for downstream plotting.
pub fn rows_to_json(rows: &[ExperimentRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"figure\":\"{}\",\"policy\":\"{}\",\"x_label\":\"{}\",\"x\":{},\
                 \"avg_stream_time_s\":{},\"total_io_gb\":{:.6},\"hit_ratio\":{:.6}}}",
                r.figure,
                r.policy.name(),
                r.x_label,
                r.x_value,
                r.avg_stream_time_s
                    .map(|v| format!("{v:.6}"))
                    .unwrap_or_else(|| "null".into()),
                r.total_io_gb,
                r.hit_ratio
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharing::SharingSample;
    use scanshare_common::VirtualInstant;

    fn row(policy: PolicyKind, x: f64, time: Option<f64>, io: f64) -> ExperimentRow {
        ExperimentRow {
            figure: "fig11".into(),
            workload: "micro".into(),
            policy,
            x_label: "buffer pool (% of accessed data)".into(),
            x_value: x,
            avg_stream_time_s: time,
            total_io_gb: io,
            hit_ratio: 0.5,
        }
    }

    #[test]
    fn format_rows_produces_a_table_per_metric() {
        let rows = vec![
            row(PolicyKind::Lru, 10.0, Some(12.5), 3.2),
            row(PolicyKind::Pbm, 10.0, Some(8.0), 2.0),
            row(PolicyKind::Opt, 10.0, None, 1.5),
            row(PolicyKind::Lru, 40.0, Some(6.0), 1.2),
            row(PolicyKind::Pbm, 40.0, Some(5.0), 0.9),
            row(PolicyKind::Opt, 40.0, None, 0.8),
        ];
        let text = format_rows("Figure 11", &rows);
        assert!(text.contains("Figure 11"));
        assert!(text.contains("average stream time"));
        assert!(text.contains("total I/O volume"));
        assert!(text.contains("lru"));
        assert!(text.contains("pbm"));
        assert!(text.contains("opt"));
        // OPT has no timing: a dash appears in the time table.
        assert!(text.contains('-'));
        // Both x values appear.
        assert!(text.contains("10.0"));
        assert!(text.contains("40.0"));
    }

    #[test]
    fn format_rows_handles_empty_input() {
        let text = format_rows("Nothing", &[]);
        assert!(text.contains("no data"));
    }

    #[test]
    fn format_sharing_lists_samples_and_summary() {
        let mut profile = SharingProfile::default();
        profile.push(SharingSample {
            time: VirtualInstant::from_nanos(2_000_000_000),
            bytes_by_overlap: [1_000_000, 2_000_000, 0, 500_000],
        });
        let text = format_sharing("Figure 17", &profile);
        assert!(text.contains("Figure 17"));
        assert!(text.contains("2.00"));
        assert!(text.contains("avg shared fraction"));
    }

    #[test]
    fn json_output_is_well_formed_enough() {
        let rows = vec![
            row(PolicyKind::Lru, 10.0, Some(1.0), 2.0),
            row(PolicyKind::Opt, 10.0, None, 1.0),
        ];
        let json = rows_to_json(&rows);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"policy\":\"lru\""));
        assert!(json.contains("\"avg_stream_time_s\":null"));
    }
}
