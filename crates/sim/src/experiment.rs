//! Experiment sweeps reproducing every figure of the paper's evaluation.
//!
//! Each `figNN_*` function regenerates one figure: it builds the workload,
//! sweeps the parameter the paper sweeps (buffer-pool size, I/O bandwidth or
//! stream count), runs all four policies and returns one [`ExperimentRow`]
//! per (policy, x-value) point. The absolute numbers depend on the simulated
//! substrate, but the *shape* — who wins, by roughly what factor, where the
//! cross-overs fall — reproduces the paper (see `EXPERIMENTS.md`).

use std::sync::Arc;

use scanshare_common::{Bandwidth, PolicyKind, Result, ScanShareConfig, VirtualDuration};
use scanshare_storage::storage::Storage;
use scanshare_workload::microbench::{self, MicrobenchConfig};
use scanshare_workload::spec::WorkloadSpec;
use scanshare_workload::tpch::{self, TpchConfig};

use crate::engine::{SimConfig, Simulation};
use crate::sharing::SharingProfile;

/// One data point of a figure: a (policy, x-value) pair with the two metrics
/// the paper reports.
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Figure identifier ("fig11", ...).
    pub figure: String,
    /// Workload name.
    pub workload: String,
    /// Policy of this row.
    pub policy: PolicyKind,
    /// Name of the swept parameter ("buffer pool %", "bandwidth MB/s", ...).
    pub x_label: String,
    /// Value of the swept parameter.
    pub x_value: f64,
    /// Average stream time in seconds (absent for OPT, which is replayed
    /// from a trace).
    pub avg_stream_time_s: Option<f64>,
    /// Total I/O volume in gigabytes.
    pub total_io_gb: f64,
    /// Buffer hit ratio.
    pub hit_ratio: f64,
}

/// Controls the size of the generated workloads so the same experiment code
/// serves fast unit tests, the `figures` example and the Criterion benches.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentScale {
    /// `lineitem` tuples in the microbenchmark.
    pub micro_lineitem_tuples: u64,
    /// `lineitem` tuples in the TPC-H-like workload.
    pub tpch_lineitem_tuples: u64,
    /// Page size in bytes.
    pub page_size_bytes: u64,
    /// Chunk granularity in tuples.
    pub chunk_tuples: u64,
    /// Buffer-pool sizes swept by the Figure 11/14 experiments, as fractions
    /// of the accessed data volume.
    pub buffer_fractions: Vec<f64>,
    /// I/O bandwidths (MB/s) swept by the Figure 12/15 experiments.
    pub bandwidths_mb: Vec<f64>,
    /// Stream counts swept by Figure 13 (microbenchmark).
    pub micro_streams: Vec<usize>,
    /// Stream counts swept by Figure 16 (TPC-H).
    pub tpch_streams: Vec<usize>,
    /// Default number of concurrent streams.
    pub default_streams: usize,
    /// Default buffer-pool fraction of the accessed volume (0.4 in the
    /// microbenchmarks of the paper).
    pub micro_default_pool_fraction: f64,
    /// Default TPC-H pool fraction (0.3 in the paper).
    pub tpch_default_pool_fraction: f64,
    /// Default microbenchmark bandwidth (MB/s).
    pub micro_default_bandwidth_mb: f64,
    /// Default TPC-H bandwidth (MB/s).
    pub tpch_default_bandwidth_mb: f64,
}

impl ExperimentScale {
    /// Tiny scale for unit tests (fractions of a second per figure).
    pub fn test() -> Self {
        Self {
            micro_lineitem_tuples: 120_000,
            tpch_lineitem_tuples: 60_000,
            page_size_bytes: 64 * 1024,
            chunk_tuples: 10_000,
            buffer_fractions: vec![0.1, 0.4, 1.0],
            bandwidths_mb: vec![200.0, 700.0, 2000.0],
            micro_streams: vec![1, 4, 8],
            tpch_streams: vec![1, 4],
            default_streams: 4,
            micro_default_pool_fraction: 0.4,
            tpch_default_pool_fraction: 0.3,
            micro_default_bandwidth_mb: 700.0,
            tpch_default_bandwidth_mb: 600.0,
        }
    }

    /// Medium scale used by the `figures` example (a few seconds per figure).
    pub fn quick() -> Self {
        Self {
            micro_lineitem_tuples: 1_000_000,
            tpch_lineitem_tuples: 400_000,
            page_size_bytes: 128 * 1024,
            chunk_tuples: 50_000,
            buffer_fractions: vec![0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
            bandwidths_mb: vec![200.0, 400.0, 700.0, 1000.0, 1500.0, 2000.0],
            micro_streams: vec![1, 2, 4, 8, 16],
            tpch_streams: vec![1, 2, 4, 8],
            default_streams: 8,
            micro_default_pool_fraction: 0.4,
            tpch_default_pool_fraction: 0.3,
            micro_default_bandwidth_mb: 700.0,
            tpch_default_bandwidth_mb: 600.0,
        }
    }

    /// Larger scale for the Criterion benches (closer to the paper's setup,
    /// still laptop-friendly).
    pub fn paper() -> Self {
        Self {
            micro_lineitem_tuples: 4_000_000,
            tpch_lineitem_tuples: 1_500_000,
            page_size_bytes: 256 * 1024,
            chunk_tuples: 100_000,
            buffer_fractions: vec![0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
            bandwidths_mb: vec![200.0, 400.0, 700.0, 1000.0, 1200.0, 1500.0, 2000.0],
            micro_streams: vec![1, 2, 4, 8, 16, 32],
            tpch_streams: vec![1, 2, 4, 8, 16, 24],
            default_streams: 8,
            micro_default_pool_fraction: 0.4,
            tpch_default_pool_fraction: 0.3,
            micro_default_bandwidth_mb: 700.0,
            tpch_default_bandwidth_mb: 600.0,
        }
    }

    fn micro_config(&self, streams: usize) -> MicrobenchConfig {
        MicrobenchConfig {
            streams,
            lineitem_tuples: self.micro_lineitem_tuples,
            ..MicrobenchConfig::default()
        }
    }

    fn tpch_config(&self, streams: usize) -> TpchConfig {
        TpchConfig {
            streams,
            lineitem_tuples: self.tpch_lineitem_tuples,
            ..TpchConfig::default()
        }
    }

    fn base_sim_config(&self, bandwidth_mb: f64) -> SimConfig {
        SimConfig {
            scanshare: ScanShareConfig {
                page_size_bytes: self.page_size_bytes,
                chunk_tuples: self.chunk_tuples,
                io_bandwidth: Bandwidth::from_mb_per_sec(bandwidth_mb),
                ..ScanShareConfig::default()
            },
            cores: 8,
            sharing_sample_interval: None,
        }
    }
}

/// The four policies every figure compares.
pub const ALL_POLICIES: [PolicyKind; 4] = [
    PolicyKind::Lru,
    PolicyKind::CScan,
    PolicyKind::Pbm,
    PolicyKind::Opt,
];

fn run_point(
    storage: &Arc<Storage>,
    workload: &WorkloadSpec,
    mut sim_config: SimConfig,
    policy: PolicyKind,
    figure: &str,
    x_label: &str,
    x_value: f64,
) -> Result<ExperimentRow> {
    sim_config.scanshare.policy = policy;
    let sim = Simulation::new(Arc::clone(storage), sim_config)?;
    let result = sim.run(workload)?;
    Ok(ExperimentRow {
        figure: figure.to_string(),
        workload: workload.name.clone(),
        policy,
        x_label: x_label.to_string(),
        x_value,
        avg_stream_time_s: result.avg_stream_time_secs(),
        total_io_gb: result.total_io_gb(),
        hit_ratio: result.buffer.hit_ratio(),
    })
}

fn buffer_sweep(
    figure: &str,
    storage: &Arc<Storage>,
    workload: &WorkloadSpec,
    scale: &ExperimentScale,
    bandwidth_mb: f64,
    fractions: &[f64],
) -> Result<Vec<ExperimentRow>> {
    let base = scale.base_sim_config(bandwidth_mb);
    let probe = Simulation::new(Arc::clone(storage), base.clone())?;
    let accessed = probe.accessed_volume(workload)?;
    let mut rows = Vec::new();
    for &fraction in fractions {
        let pool = ((accessed as f64 * fraction) as u64).max(4 * scale.page_size_bytes);
        for policy in ALL_POLICIES {
            let mut cfg = base.clone();
            cfg.scanshare.buffer_pool_bytes = pool;
            rows.push(run_point(
                storage,
                workload,
                cfg,
                policy,
                figure,
                "buffer pool (% of accessed data)",
                fraction * 100.0,
            )?);
        }
    }
    Ok(rows)
}

fn bandwidth_sweep(
    figure: &str,
    storage: &Arc<Storage>,
    workload: &WorkloadSpec,
    scale: &ExperimentScale,
    pool_fraction: f64,
    bandwidths: &[f64],
) -> Result<Vec<ExperimentRow>> {
    let probe = Simulation::new(Arc::clone(storage), scale.base_sim_config(700.0))?;
    let accessed = probe.accessed_volume(workload)?;
    let pool = ((accessed as f64 * pool_fraction) as u64).max(4 * scale.page_size_bytes);
    let mut rows = Vec::new();
    for &mb in bandwidths {
        for policy in ALL_POLICIES {
            let mut cfg = scale.base_sim_config(mb);
            cfg.scanshare.buffer_pool_bytes = pool;
            rows.push(run_point(
                storage,
                workload,
                cfg,
                policy,
                figure,
                "I/O bandwidth (MB/s)",
                mb,
            )?);
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Microbenchmark figures
// ---------------------------------------------------------------------------

/// Figure 11: microbenchmark, varying the buffer pool size.
pub fn fig11_micro_buffer_sweep(scale: &ExperimentScale) -> Result<Vec<ExperimentRow>> {
    let config = scale.micro_config(scale.default_streams);
    let (storage, workload) =
        microbench::build(&config, scale.page_size_bytes, scale.chunk_tuples)?;
    buffer_sweep(
        "fig11",
        &storage,
        &workload,
        scale,
        scale.micro_default_bandwidth_mb,
        &scale.buffer_fractions,
    )
}

/// Figure 12: microbenchmark, varying the I/O bandwidth.
pub fn fig12_micro_bandwidth_sweep(scale: &ExperimentScale) -> Result<Vec<ExperimentRow>> {
    let config = scale.micro_config(scale.default_streams);
    let (storage, workload) =
        microbench::build(&config, scale.page_size_bytes, scale.chunk_tuples)?;
    bandwidth_sweep(
        "fig12",
        &storage,
        &workload,
        scale,
        scale.micro_default_pool_fraction,
        &scale.bandwidths_mb,
    )
}

/// Figure 13: microbenchmark, varying the number of concurrent streams
/// (all queries scan 50 % of the table, as in the paper).
pub fn fig13_micro_stream_sweep(scale: &ExperimentScale) -> Result<Vec<ExperimentRow>> {
    let mut rows = Vec::new();
    for &streams in &scale.micro_streams {
        let config = scale.micro_config(streams).with_fixed_percentage(50);
        let (storage, workload) =
            microbench::build(&config, scale.page_size_bytes, scale.chunk_tuples)?;
        let probe = Simulation::new(
            Arc::clone(&storage),
            scale.base_sim_config(scale.micro_default_bandwidth_mb),
        )?;
        let accessed = probe.accessed_volume(&workload)?;
        let pool = ((accessed as f64 * scale.micro_default_pool_fraction) as u64)
            .max(4 * scale.page_size_bytes);
        for policy in ALL_POLICIES {
            let mut cfg = scale.base_sim_config(scale.micro_default_bandwidth_mb);
            cfg.scanshare.buffer_pool_bytes = pool;
            rows.push(run_point(
                &storage,
                &workload,
                cfg,
                policy,
                "fig13",
                "concurrent streams",
                streams as f64,
            )?);
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// TPC-H throughput figures
// ---------------------------------------------------------------------------

/// Figure 14: TPC-H throughput, varying the buffer pool size.
pub fn fig14_tpch_buffer_sweep(scale: &ExperimentScale) -> Result<Vec<ExperimentRow>> {
    let config = scale.tpch_config(scale.default_streams);
    let (storage, _tables, workload) =
        tpch::build(&config, scale.page_size_bytes, scale.chunk_tuples)?;
    buffer_sweep(
        "fig14",
        &storage,
        &workload,
        scale,
        scale.tpch_default_bandwidth_mb,
        &scale.buffer_fractions,
    )
}

/// Figure 15: TPC-H throughput, varying the I/O bandwidth.
pub fn fig15_tpch_bandwidth_sweep(scale: &ExperimentScale) -> Result<Vec<ExperimentRow>> {
    let config = scale.tpch_config(scale.default_streams);
    let (storage, _tables, workload) =
        tpch::build(&config, scale.page_size_bytes, scale.chunk_tuples)?;
    bandwidth_sweep(
        "fig15",
        &storage,
        &workload,
        scale,
        scale.tpch_default_pool_fraction,
        &scale.bandwidths_mb,
    )
}

/// Figure 16: TPC-H throughput, varying the number of streams.
pub fn fig16_tpch_stream_sweep(scale: &ExperimentScale) -> Result<Vec<ExperimentRow>> {
    let mut rows = Vec::new();
    for &streams in &scale.tpch_streams {
        let config = scale.tpch_config(streams);
        let (storage, _tables, workload) =
            tpch::build(&config, scale.page_size_bytes, scale.chunk_tuples)?;
        let probe = Simulation::new(
            Arc::clone(&storage),
            scale.base_sim_config(scale.tpch_default_bandwidth_mb),
        )?;
        let accessed = probe.accessed_volume(&workload)?;
        let pool = ((accessed as f64 * scale.tpch_default_pool_fraction) as u64)
            .max(4 * scale.page_size_bytes);
        for policy in ALL_POLICIES {
            let mut cfg = scale.base_sim_config(scale.tpch_default_bandwidth_mb);
            cfg.scanshare.buffer_pool_bytes = pool;
            rows.push(run_point(
                &storage,
                &workload,
                cfg,
                policy,
                "fig16",
                "concurrent streams",
                streams as f64,
            )?);
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Sharing-potential figures
// ---------------------------------------------------------------------------

fn sharing_profile(
    storage: &Arc<Storage>,
    workload: &WorkloadSpec,
    scale: &ExperimentScale,
    pool_fraction: f64,
    bandwidth_mb: f64,
) -> Result<SharingProfile> {
    let probe = Simulation::new(Arc::clone(storage), scale.base_sim_config(bandwidth_mb))?;
    let accessed = probe.accessed_volume(workload)?;
    let mut cfg = scale.base_sim_config(bandwidth_mb);
    cfg.scanshare.policy = PolicyKind::Pbm;
    cfg.scanshare.buffer_pool_bytes =
        ((accessed as f64 * pool_fraction) as u64).max(4 * scale.page_size_bytes);
    // Sample densely enough that even the down-scaled workloads (whose whole
    // run may last only tens of virtual milliseconds) produce a profile.
    cfg.sharing_sample_interval = Some(VirtualDuration::from_millis(1));
    let result = Simulation::new(Arc::clone(storage), cfg)?.run(workload)?;
    Ok(result.sharing.unwrap_or_default())
}

/// Figure 17: sharing potential over time in the microbenchmark.
pub fn fig17_sharing_micro(scale: &ExperimentScale) -> Result<SharingProfile> {
    let config = scale.micro_config(scale.default_streams);
    let (storage, workload) =
        microbench::build(&config, scale.page_size_bytes, scale.chunk_tuples)?;
    sharing_profile(
        &storage,
        &workload,
        scale,
        scale.micro_default_pool_fraction,
        scale.micro_default_bandwidth_mb,
    )
}

/// Figure 18: sharing potential over time in the TPC-H throughput run.
pub fn fig18_sharing_tpch(scale: &ExperimentScale) -> Result<SharingProfile> {
    let config = scale.tpch_config(scale.default_streams);
    let (storage, _tables, workload) =
        tpch::build(&config, scale.page_size_bytes, scale.chunk_tuples)?;
    sharing_profile(
        &storage,
        &workload,
        scale,
        scale.tpch_default_pool_fraction,
        scale.tpch_default_bandwidth_mb,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_rows_cover_all_policies_and_fractions() {
        let scale = ExperimentScale::test();
        let rows = fig11_micro_buffer_sweep(&scale).unwrap();
        assert_eq!(
            rows.len(),
            scale.buffer_fractions.len() * ALL_POLICIES.len()
        );
        for row in &rows {
            assert_eq!(row.figure, "fig11");
            assert!(row.total_io_gb >= 0.0);
            if row.policy == PolicyKind::Opt {
                assert!(row.avg_stream_time_s.is_none());
            } else {
                assert!(row.avg_stream_time_s.unwrap() > 0.0);
            }
        }
        // Shape check: at the smallest pool, LRU does at least as much I/O as
        // PBM and CScans.
        let smallest = scale.buffer_fractions[0] * 100.0;
        let io_of = |policy: PolicyKind| {
            rows.iter()
                .find(|r| r.policy == policy && (r.x_value - smallest).abs() < 1e-9)
                .unwrap()
                .total_io_gb
        };
        assert!(io_of(PolicyKind::Lru) >= io_of(PolicyKind::Pbm) * 0.95);
        assert!(io_of(PolicyKind::Lru) >= io_of(PolicyKind::CScan) * 0.95);
    }

    #[test]
    fn fig12_io_volume_is_roughly_bandwidth_independent() {
        let scale = ExperimentScale::test();
        let rows = fig12_micro_bandwidth_sweep(&scale).unwrap();
        for (policy, tolerance) in [(PolicyKind::Lru, 1.25), (PolicyKind::Pbm, 1.25)] {
            let ios: Vec<f64> = rows
                .iter()
                .filter(|r| r.policy == policy)
                .map(|r| r.total_io_gb)
                .collect();
            let min = ios.iter().cloned().fold(f64::MAX, f64::min);
            let max = ios.iter().cloned().fold(0.0f64, f64::max);
            assert!(
                max <= min * tolerance + 1e-9,
                "{policy}: I/O volume should not depend on bandwidth ({min} vs {max})"
            );
        }
        // Stream times shrink (or stay equal) as bandwidth grows.
        let pbm_times: Vec<f64> = rows
            .iter()
            .filter(|r| r.policy == PolicyKind::Pbm)
            .map(|r| r.avg_stream_time_s.unwrap())
            .collect();
        assert!(pbm_times.first().unwrap() >= pbm_times.last().unwrap());
    }

    #[test]
    fn fig13_more_streams_increase_total_io() {
        let scale = ExperimentScale::test();
        let rows = fig13_micro_stream_sweep(&scale).unwrap();
        let lru: Vec<&ExperimentRow> = rows
            .iter()
            .filter(|r| r.policy == PolicyKind::Lru)
            .collect();
        assert!(lru.last().unwrap().total_io_gb >= lru.first().unwrap().total_io_gb);
    }

    #[test]
    fn fig17_microbenchmark_has_substantial_sharing_potential() {
        let scale = ExperimentScale::test();
        let micro = fig17_sharing_micro(&scale).unwrap();
        assert!(!micro.is_empty());
        assert!(
            micro.avg_shared_fraction() > 0.05,
            "microbenchmark should show reuse potential"
        );
    }

    #[test]
    fn fig18_tpch_shares_less_than_the_microbenchmark() {
        let scale = ExperimentScale::test();
        let micro = fig17_sharing_micro(&scale).unwrap();
        let tpch = fig18_sharing_tpch(&scale).unwrap();
        assert!(!tpch.is_empty());
        assert!(
            tpch.avg_shared_fraction() <= micro.avg_shared_fraction() + 0.05,
            "TPC-H ({}) should have less sharing potential than the microbenchmark ({})",
            tpch.avg_shared_fraction(),
            micro.avg_shared_fraction()
        );
    }
}
