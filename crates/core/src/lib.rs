//! Scan-aware buffer management — the primary contribution of the paper.
//!
//! This crate implements the four concurrent-scan buffer-management
//! approaches the paper evaluates:
//!
//! * [`lru`] — traditional buffer management: scans request pages in order
//!   and the pool evicts the least-recently-used page;
//! * [`pbm`] — **Predictive Buffer Management**: scans register their future
//!   page accesses and report their progress; the pool estimates for every
//!   page the time of its next consumption and evicts the page needed
//!   furthest in the future, using the O(1) bucket timeline of Figure 9/10;
//! * [`abm`] — **Cooperative Scans**: an Active Buffer Manager (ABM) takes
//!   over load / evict / dispatch decisions at chunk granularity, using the
//!   QueryRelevance / LoadRelevance / UseRelevance / KeepRelevance functions,
//!   and delivers chunks to CScan operators out of order. Decomposed into a
//!   sharded chunk directory, a pure relevance core and an asynchronous
//!   load scheduler (the monolithic original is kept as `abm::reference`);
//! * [`opt`] — Belady's OPT replayed over a recorded page-reference trace,
//!   the theoretical optimum for order-preserving policies.
//!
//! [`bufferpool::BufferPool`] is the shared page-level pool driven by a
//! pluggable [`policy::ReplacementPolicy`] (LRU or PBM); the ABM replaces the
//! pool wholesale for Cooperative Scans, as it does in the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod abm;
pub mod backend;
pub mod bufferpool;
pub mod clock;
pub mod lru;
pub mod metrics;
pub mod opportunistic;
pub mod opt;
pub mod pbm;
pub mod pbm_lru;
pub mod policy;
pub mod registry;
pub mod sharded;
pub mod sieve;
pub mod throttle;

pub use abm::{Abm, AbmAction, AbmConfig, CScanHandle, LoadScheduler, MonolithicAbm};
pub use backend::{CScanBackend, PooledBackend, ScanBackend, ScanRequest, ScanStep};
pub use bufferpool::{AccessOutcome, BufferPool, PrefetchPool};
pub use clock::ClockPolicy;
pub use lru::LruPolicy;
pub use metrics::BufferStats;
pub use opportunistic::OpportunisticPlanner;
pub use opt::{simulate_opt, OptResult};
pub use pbm::{PbmConfig, PbmPolicy};
pub use pbm_lru::{PbmLruConfig, PbmLruPolicy};
pub use policy::{ReplacementPolicy, ScanInfo};
pub use registry::{PolicyFactory, PolicyRegistry};
pub use sharded::ShardedPool;
pub use sieve::SievePolicy;
pub use throttle::{ScanProgress, ThrottleConfig, ThrottlePlanner};
