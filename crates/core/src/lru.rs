//! Traditional buffer management: least-recently-used replacement.
//!
//! This is the baseline every figure of the paper compares against. The
//! implementation keeps an explicit recency order with O(1) amortized
//! updates (a monotonically increasing access stamp per page plus a queue
//! with lazy deletion), and ignores all scan-level information.

use std::collections::{HashMap, HashSet, VecDeque};

use scanshare_common::{PageId, ScanId, VirtualInstant};
use scanshare_storage::layout::ScanPagePlan;

use crate::policy::{ReplacementPolicy, ScanInfo};

/// Least-recently-used replacement policy.
#[derive(Debug, Default)]
pub struct LruPolicy {
    /// Current stamp of each resident page.
    resident: HashMap<PageId, u64>,
    /// Recency queue, oldest first; entries whose stamp is stale are skipped.
    queue: VecDeque<(PageId, u64)>,
    next_stamp: u64,
}

impl LruPolicy {
    /// Creates an LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, page: PageId) {
        if !self.resident.contains_key(&page) {
            return;
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.resident.insert(page, stamp);
        self.queue.push_back((page, stamp));
        self.maybe_compact();
    }

    fn maybe_compact(&mut self) {
        // Keep the queue from growing unboundedly due to lazy deletion.
        if self.queue.len() > 4 * self.resident.len().max(16) {
            let resident = &self.resident;
            self.queue.retain(|(p, s)| resident.get(p) == Some(s));
        }
    }

    /// Number of resident pages the policy tracks.
    pub fn tracked_pages(&self) -> usize {
        self.resident.len()
    }

    /// The resident pages ordered from least to most recently used.
    /// (Primarily for tests and diagnostics; O(n log n).)
    pub fn recency_order(&self) -> Vec<PageId> {
        let mut pages: Vec<(u64, PageId)> = self.resident.iter().map(|(&p, &s)| (s, p)).collect();
        pages.sort_unstable();
        pages.into_iter().map(|(_, p)| p).collect()
    }
}

impl ReplacementPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn register_scan(&mut self, _info: &ScanInfo, _plan: &ScanPagePlan, _now: VirtualInstant) {}

    fn report_scan_position(&mut self, _scan: ScanId, _tuples: u64, _now: VirtualInstant) {}

    fn unregister_scan(&mut self, _scan: ScanId, _now: VirtualInstant) {}

    fn on_access(&mut self, page: PageId, _scan: Option<ScanId>, _now: VirtualInstant) {
        self.touch(page);
    }

    fn on_admit(&mut self, page: PageId, _now: VirtualInstant) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.resident.insert(page, stamp);
        self.queue.push_back((page, stamp));
        self.maybe_compact();
    }

    fn on_evict(&mut self, page: PageId) {
        self.resident.remove(&page);
    }

    fn choose_victims(
        &mut self,
        count: usize,
        exclude: &HashSet<PageId>,
        _now: VirtualInstant,
    ) -> Vec<PageId> {
        let mut victims = Vec::with_capacity(count);
        let mut skipped = Vec::new();
        while victims.len() < count {
            let Some((page, stamp)) = self.queue.pop_front() else {
                break;
            };
            if self.resident.get(&page) != Some(&stamp) {
                continue; // stale entry
            }
            if exclude.contains(&page) {
                skipped.push((page, stamp));
                continue;
            }
            victims.push(page);
        }
        // Entries we skipped (pinned pages) keep their recency position at
        // the front of the queue.
        for entry in skipped.into_iter().rev() {
            self.queue.push_front(entry);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn now() -> VirtualInstant {
        VirtualInstant::EPOCH
    }

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut lru = LruPolicy::new();
        for i in 0..4 {
            lru.on_admit(p(i), now());
        }
        lru.on_access(p(0), None, now()); // 0 becomes most recent
        let victims = lru.choose_victims(2, &HashSet::new(), now());
        assert_eq!(victims, vec![p(1), p(2)]);
        lru.on_evict(p(1));
        lru.on_evict(p(2));
        assert_eq!(lru.recency_order(), vec![p(3), p(0)]);
    }

    #[test]
    fn excluded_pages_are_skipped_but_keep_their_position() {
        let mut lru = LruPolicy::new();
        for i in 0..3 {
            lru.on_admit(p(i), now());
        }
        let mut exclude = HashSet::new();
        exclude.insert(p(0));
        assert_eq!(lru.choose_victims(1, &exclude, now()), vec![p(1)]);
        lru.on_evict(p(1));
        // Page 0 is still the oldest once unpinned.
        assert_eq!(lru.choose_victims(1, &HashSet::new(), now()), vec![p(0)]);
    }

    #[test]
    fn accessing_unknown_pages_is_a_no_op() {
        let mut lru = LruPolicy::new();
        lru.on_access(p(42), None, now());
        assert_eq!(lru.tracked_pages(), 0);
        assert!(lru.choose_victims(1, &HashSet::new(), now()).is_empty());
    }

    #[test]
    fn eviction_removes_tracking() {
        let mut lru = LruPolicy::new();
        lru.on_admit(p(1), now());
        lru.on_evict(p(1));
        assert_eq!(lru.tracked_pages(), 0);
        assert!(lru.choose_victims(4, &HashSet::new(), now()).is_empty());
    }

    #[test]
    fn repeated_touches_do_not_leak_queue_entries() {
        let mut lru = LruPolicy::new();
        for i in 0..8 {
            lru.on_admit(p(i), now());
        }
        for _ in 0..10_000 {
            lru.on_access(p(3), None, now());
        }
        assert!(lru.queue.len() <= 4 * lru.resident.len().max(16) + 8);
        // Behaviour is still correct: 3 is the most recent.
        let order = lru.recency_order();
        assert_eq!(*order.last().unwrap(), p(3));
    }

    #[test]
    fn scan_callbacks_are_ignored_gracefully() {
        let mut lru = LruPolicy::new();
        let info = ScanInfo {
            id: ScanId::new(1),
            total_tuples: 10,
            distinct_pages: 2,
        };
        let plan = ScanPagePlan {
            table: scanshare_common::TableId::new(0),
            total_tuples: 10,
            pages: vec![],
        };
        lru.register_scan(&info, &plan, now());
        lru.report_scan_position(ScanId::new(1), 5, now());
        lru.unregister_scan(ScanId::new(1), now());
        assert_eq!(lru.name(), "lru");
    }
}
